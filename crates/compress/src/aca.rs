//! Adaptive cross approximation (ACA).
//!
//! ACA builds `A ~= U V^*` one rank-1 cross at a time, touching only the
//! rows and columns it pivots on — `O((m + n) r)` kernel evaluations instead
//! of `O(mn)`.  Two pivot strategies are provided:
//!
//! * **partial pivoting** — the classical scheme: take the next unused row,
//!   pivot on the largest entry of its residual;
//! * **rook pivoting** — alternate row/column maximisation until the pivot
//!   is the largest entry of both its residual row *and* column.  This is
//!   the `LowRank::rookPiv()` strategy HODLRlib uses in the paper's
//!   Table III benchmark and is considerably more robust on kernels with
//!   strong diagonal decay.

use crate::lowrank::LowRank;
use crate::randomized::dense_bytes;
use crate::source::MatrixEntrySource;
use hodlr_la::{AllocMeter, DenseMatrix, RealScalar, Scalar};

/// Pivot selection strategy for [`aca_compress`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AcaPivoting {
    /// Classical partial (row-cycling) pivoting.
    Partial,
    /// Rook pivoting (row/column alternation until a local maximum).
    Rook,
}

/// Maximum number of row/column alternations in a rook-pivot search.
pub(crate) const ROOK_ITERATIONS: usize = 4;

/// Compress `source` with ACA to relative tolerance `tol`, with an optional
/// hard rank cap.
///
/// The returned factors satisfy `A ~= U V^*`.  The tolerance is relative to
/// a running estimate of `||A||_F` built from the crosses themselves, as is
/// standard for ACA.
pub fn aca_compress<T: Scalar, S: MatrixEntrySource<T> + ?Sized>(
    source: &S,
    tol: T::Real,
    max_rank: Option<usize>,
    pivoting: AcaPivoting,
) -> LowRank<T> {
    aca_compress_metered(source, tol, max_rank, pivoting, None)
}

/// [`aca_compress`] with live/peak scratch accounting on `meter`: one
/// `(m + n)`-sized buffer pair plus `(m + n)` entries per accepted cross.
pub fn aca_compress_metered<T: Scalar, S: MatrixEntrySource<T> + ?Sized>(
    source: &S,
    tol: T::Real,
    max_rank: Option<usize>,
    pivoting: AcaPivoting,
    meter: Option<&AllocMeter>,
) -> LowRank<T> {
    let m = source.nrows();
    let n = source.ncols();
    if m == 0 || n == 0 {
        return LowRank::zero(m, n);
    }
    let rank_cap = max_rank.unwrap_or(usize::MAX).min(m).min(n);
    if rank_cap == 0 {
        return LowRank::zero(m, n);
    }
    if let Some(meter) = meter {
        // row_buf + col_buf live for the whole compression.
        meter.record_alloc(dense_bytes::<T>(m + n, 1));
    }

    // Crosses accumulated so far: us[k] has length m, vs[k] has length n and
    // the approximation is sum_k us[k] * vs[k]^*.
    let mut us: Vec<Vec<T>> = Vec::new();
    let mut vs: Vec<Vec<T>> = Vec::new();
    let mut used_rows = vec![false; m];
    let mut used_cols = vec![false; n];
    // Running estimate of ||A||_F^2 (Frobenius norm of the approximation).
    let mut norm_sq = T::Real::zero();

    let mut row_buf = vec![T::zero(); n];
    let mut col_buf = vec![T::zero(); m];
    let mut next_row = 0usize;

    while us.len() < rank_cap {
        // --- choose a pivot (i, j) ----------------------------------------
        let mut i = match next_unused(&used_rows, next_row) {
            Some(i) => i,
            None => break,
        };
        residual_row(source, &us, &vs, i, &mut row_buf);
        let mut j = match argmax_abs(&row_buf, &used_cols) {
            Some(j) => j,
            None => break,
        };

        if pivoting == AcaPivoting::Rook {
            // Alternate row/column maximisation.
            for _ in 0..ROOK_ITERATIONS {
                residual_col(source, &us, &vs, j, &mut col_buf);
                let i_new = match argmax_abs(&col_buf, &used_rows) {
                    Some(i_new) => i_new,
                    None => break,
                };
                if i_new == i {
                    break;
                }
                i = i_new;
                residual_row(source, &us, &vs, i, &mut row_buf);
                let j_new = match argmax_abs(&row_buf, &used_cols) {
                    Some(j_new) => j_new,
                    None => break,
                };
                if j_new == j {
                    break;
                }
                j = j_new;
            }
            // Make sure row_buf corresponds to the final row i.
            residual_row(source, &us, &vs, i, &mut row_buf);
        }

        let delta = row_buf[j];
        if delta.abs() == T::Real::zero() {
            // The whole residual row is zero: retire it and try the next one.
            used_rows[i] = true;
            next_row = i + 1;
            if used_rows.iter().all(|&u| u) {
                break;
            }
            continue;
        }

        // --- build the rank-1 cross ----------------------------------------
        residual_col(source, &us, &vs, j, &mut col_buf);
        let u: Vec<T> = col_buf.clone();
        let inv_delta = delta.recip();
        let v: Vec<T> = row_buf.iter().map(|&r| (r * inv_delta).conj()).collect();

        // Norm bookkeeping: ||A_k||^2 = ||A_{k-1}||^2
        //   + 2 Re sum_l (u^* u_l)(v_l^* v) + ||u||^2 ||v||^2.
        let u_norm_sq: T::Real = u.iter().map(|x| x.abs_sqr()).sum();
        let v_norm_sq: T::Real = v.iter().map(|x| x.abs_sqr()).sum();
        let mut cross_terms = T::Real::zero();
        for l in 0..us.len() {
            let uu: T = us[l]
                .iter()
                .zip(u.iter())
                .map(|(&a, &b)| a.conj() * b)
                .sum();
            let vv: T = v
                .iter()
                .zip(vs[l].iter())
                .map(|(&a, &b)| a.conj() * b)
                .sum();
            cross_terms += (uu * vv).real();
        }
        norm_sq += T::Real::from_f64_real(2.0) * cross_terms + u_norm_sq * v_norm_sq;

        used_rows[i] = true;
        used_cols[j] = true;
        next_row = i + 1;
        if let Some(meter) = meter {
            meter.record_alloc(dense_bytes::<T>(m + n, 1));
        }
        us.push(u);
        vs.push(v);

        // --- convergence test ----------------------------------------------
        let cross_norm = (u_norm_sq * v_norm_sq).sqrt_real();
        let total_norm = norm_sq.max_real(T::Real::zero()).sqrt_real();
        if cross_norm <= tol * total_norm {
            break;
        }
    }

    let lr = factors_from_crosses(m, n, &us, &vs);
    if let Some(meter) = meter {
        // Copying the crosses into the returned factors briefly doubles
        // them, then every buffer this function owns retires.  Compression
        // is metered net-zero: the caller records the bytes of the factors
        // it decides to retain.
        meter.record_alloc(dense_bytes::<T>(m + n, us.len()));
        meter.record_free(dense_bytes::<T>(m + n, 2 * us.len() + 1));
    }
    lr
}

/// Residual row `i`: `A(i, :) - sum_k us[k][i] * vs[k]^*`.
fn residual_row<T: Scalar, S: MatrixEntrySource<T> + ?Sized>(
    source: &S,
    us: &[Vec<T>],
    vs: &[Vec<T>],
    i: usize,
    out: &mut [T],
) {
    source.row(i, out);
    for (u, v) in us.iter().zip(vs.iter()) {
        let ui = u[i];
        if ui == T::zero() {
            continue;
        }
        for (o, &vj) in out.iter_mut().zip(v.iter()) {
            *o -= ui * vj.conj();
        }
    }
}

/// Residual column `j`: `A(:, j) - sum_k us[k] * conj(vs[k][j])`.
fn residual_col<T: Scalar, S: MatrixEntrySource<T> + ?Sized>(
    source: &S,
    us: &[Vec<T>],
    vs: &[Vec<T>],
    j: usize,
    out: &mut [T],
) {
    source.col(j, out);
    for (u, v) in us.iter().zip(vs.iter()) {
        let vj = v[j].conj();
        if vj == T::zero() {
            continue;
        }
        for (o, &ui) in out.iter_mut().zip(u.iter()) {
            *o -= ui * vj;
        }
    }
}

fn next_unused(used: &[bool], start: usize) -> Option<usize> {
    (start..used.len()).chain(0..start).find(|&i| !used[i])
}

fn argmax_abs<T: Scalar>(values: &[T], excluded: &[bool]) -> Option<usize> {
    let mut best: Option<(usize, T::Real)> = None;
    for (j, &v) in values.iter().enumerate() {
        if excluded[j] {
            continue;
        }
        let a = v.abs();
        match best {
            Some((_, b)) if b >= a => {}
            _ => best = Some((j, a)),
        }
    }
    best.map(|(j, _)| j)
}

fn factors_from_crosses<T: Scalar>(m: usize, n: usize, us: &[Vec<T>], vs: &[Vec<T>]) -> LowRank<T> {
    let r = us.len();
    let mut u = DenseMatrix::zeros(m, r);
    let mut v = DenseMatrix::zeros(n, r);
    for k in 0..r {
        u.col_mut(k).copy_from_slice(&us[k]);
        v.col_mut(k).copy_from_slice(&vs[k]);
    }
    LowRank::new(u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{ClosureSource, DenseSource};
    use hodlr_la::random::random_low_rank;
    use hodlr_la::{Complex64, DenseMatrix};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_low_rank_is_recovered() {
        let mut rng = StdRng::seed_from_u64(11);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, 50, 35, 4);
        for piv in [AcaPivoting::Partial, AcaPivoting::Rook] {
            let lr = aca_compress(&DenseSource::new(&a), 1e-12, None, piv);
            assert!(
                lr.rank() >= 4 && lr.rank() <= 6,
                "{piv:?}: rank {}",
                lr.rank()
            );
            assert!(lr.reconstruction_error(&a) < 1e-10 * a.norm_fro());
        }
    }

    #[test]
    fn complex_low_rank_is_recovered() {
        let mut rng = StdRng::seed_from_u64(12);
        let a: DenseMatrix<Complex64> = random_low_rank(&mut rng, 30, 30, 5);
        let lr = aca_compress(&DenseSource::new(&a), 1e-12, None, AcaPivoting::Rook);
        assert!(lr.reconstruction_error(&a).to_f64() < 1e-9 * a.norm_fro().to_f64());
    }

    #[test]
    fn smooth_kernel_block_compresses_far_below_full_rank() {
        // 1D separated clusters interacting through 1/(1 + |x - y|): the
        // numerical rank at 1e-8 is far below min(m, n) = 60.
        let src = ClosureSource::new(60, 60, |i, j| {
            let x = i as f64 / 60.0;
            let y = 2.0 + j as f64 / 60.0;
            1.0 / (1.0 + (x - y).abs())
        });
        let dense = src.to_dense();
        let lr = aca_compress(&src, 1e-8, None, AcaPivoting::Rook);
        assert!(lr.rank() < 20, "rank {}", lr.rank());
        assert!(lr.reconstruction_error(&dense) < 1e-6 * dense.norm_fro());
    }

    #[test]
    fn zero_matrix_gives_rank_zero() {
        let a = DenseMatrix::<f64>::zeros(10, 8);
        let lr = aca_compress(&DenseSource::new(&a), 1e-10, None, AcaPivoting::Partial);
        assert_eq!(lr.rank(), 0);
    }

    #[test]
    fn rank_cap_is_respected() {
        let mut rng = StdRng::seed_from_u64(13);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, 30, 30, 10);
        let lr = aca_compress(&DenseSource::new(&a), 1e-14, Some(3), AcaPivoting::Rook);
        assert_eq!(lr.rank(), 3);
    }

    #[test]
    fn empty_block_is_handled() {
        let a = DenseMatrix::<f64>::zeros(0, 5);
        let lr = aca_compress(&DenseSource::new(&a), 1e-10, None, AcaPivoting::Partial);
        assert_eq!(lr.rank(), 0);
        assert_eq!(lr.nrows(), 0);
        assert_eq!(lr.ncols(), 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn aca_error_meets_tolerance_on_random_low_rank(
            m in 10usize..40,
            n in 10usize..40,
            r in 1usize..6,
            seed in 0u64..1000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a: DenseMatrix<f64> = random_low_rank(&mut rng, m, n, r.min(m).min(n));
            let lr = aca_compress(&DenseSource::new(&a), 1e-10, None, AcaPivoting::Rook);
            let err = lr.reconstruction_error(&a);
            prop_assert!(err < 1e-7 * a.norm_fro().max(1e-30));
        }
    }
}
