//! Lazy entry access to the block being compressed.

use hodlr_la::{DenseMatrix, MatMut, Scalar};

/// A matrix block whose entries can be evaluated on demand.
///
/// Kernel matrices and Nyström-discretized integral operators implement this
/// trait directly from their analytic kernel, so an `N x N` operator is never
/// formed densely — only the entries the compression algorithm actually
/// touches are evaluated.  Everything is `Sync` so blocks can be compressed
/// in parallel.
pub trait MatrixEntrySource<T: Scalar>: Sync {
    /// Number of rows of the block.
    fn nrows(&self) -> usize;
    /// Number of columns of the block.
    fn ncols(&self) -> usize;
    /// Entry `(i, j)` of the block.
    fn entry(&self, i: usize, j: usize) -> T;

    /// Evaluate row `i` into `out` (length `ncols`).
    fn row(&self, i: usize, out: &mut [T]) {
        debug_assert_eq!(out.len(), self.ncols());
        for (j, o) in out.iter_mut().enumerate() {
            *o = self.entry(i, j);
        }
    }

    /// Evaluate column `j` into `out` (length `nrows`).
    fn col(&self, j: usize, out: &mut [T]) {
        debug_assert_eq!(out.len(), self.nrows());
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.entry(i, j);
        }
    }

    /// Evaluate the tile `[row0 .. row0 + out.rows()) x [col0 .. col0 +
    /// out.cols())` into `out`.  This is the unit of access of the
    /// streaming compressors: they walk the block tile by tile with one
    /// bounded scratch buffer instead of materialising it densely.
    fn tile(&self, row0: usize, col0: usize, out: &mut MatMut<'_, T>) {
        debug_assert!(row0 + out.rows() <= self.nrows());
        debug_assert!(col0 + out.cols() <= self.ncols());
        for jj in 0..out.cols() {
            for ii in 0..out.rows() {
                out.set(ii, jj, self.entry(row0 + ii, col0 + jj));
            }
        }
    }

    /// Materialise the whole block densely.  The default implementation
    /// evaluates column by column; sources with cheaper bulk access may
    /// override it.
    fn to_dense(&self) -> DenseMatrix<T> {
        let mut a = DenseMatrix::zeros(self.nrows(), self.ncols());
        for j in 0..self.ncols() {
            let col = a.col_mut(j);
            self.col(j, col);
        }
        a
    }
}

/// A dense matrix (or sub-block of one) used as an entry source.
#[derive(Clone, Debug)]
pub struct DenseSource<'a, T: Scalar> {
    matrix: &'a DenseMatrix<T>,
    row_offset: usize,
    col_offset: usize,
    nrows: usize,
    ncols: usize,
}

impl<'a, T: Scalar> DenseSource<'a, T> {
    /// The whole matrix as a source.
    pub fn new(matrix: &'a DenseMatrix<T>) -> Self {
        DenseSource {
            matrix,
            row_offset: 0,
            col_offset: 0,
            nrows: matrix.rows(),
            ncols: matrix.cols(),
        }
    }

    /// A rectangular sub-block `matrix[row..row+nrows, col..col+ncols]`.
    pub fn block(
        matrix: &'a DenseMatrix<T>,
        row: usize,
        col: usize,
        nrows: usize,
        ncols: usize,
    ) -> Self {
        assert!(row + nrows <= matrix.rows() && col + ncols <= matrix.cols());
        DenseSource {
            matrix,
            row_offset: row,
            col_offset: col,
            nrows,
            ncols,
        }
    }
}

impl<T: Scalar> MatrixEntrySource<T> for DenseSource<'_, T> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn entry(&self, i: usize, j: usize) -> T {
        self.matrix[(self.row_offset + i, self.col_offset + j)]
    }

    fn col(&self, j: usize, out: &mut [T]) {
        let col = self.matrix.col(self.col_offset + j);
        out.copy_from_slice(&col[self.row_offset..self.row_offset + self.nrows]);
    }

    fn tile(&self, row0: usize, col0: usize, out: &mut MatMut<'_, T>) {
        let view = self.matrix.block(
            self.row_offset + row0,
            self.col_offset + col0,
            out.rows(),
            out.cols(),
        );
        out.copy_from(view);
    }
}

/// An entry source defined by a closure `(i, j) -> T`.
pub struct ClosureSource<T, F>
where
    F: Fn(usize, usize) -> T + Sync,
{
    nrows: usize,
    ncols: usize,
    f: F,
}

impl<T: Scalar, F: Fn(usize, usize) -> T + Sync> ClosureSource<T, F> {
    /// Wrap a closure as an `nrows x ncols` entry source.
    pub fn new(nrows: usize, ncols: usize, f: F) -> Self {
        ClosureSource { nrows, ncols, f }
    }
}

impl<T: Scalar, F: Fn(usize, usize) -> T + Sync> MatrixEntrySource<T> for ClosureSource<T, F> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn entry(&self, i: usize, j: usize) -> T {
        (self.f)(i, j)
    }
}

/// A diagonal-shift adapter: `entry(i, j) = inner(i, j) + shift * delta_ij`.
///
/// This is the "nugget" / regularisation term every kernel method adds to
/// its covariance or system matrix (`K + sigma_n^2 I`); wrapping the shift
/// around an arbitrary inner source keeps the inner kernel source pure and
/// reusable.  The adapter owns its inner source so composed sources can be
/// returned by value.
pub struct ShiftedSource<T: Scalar, S: MatrixEntrySource<T>> {
    inner: S,
    shift: T,
}

impl<T: Scalar, S: MatrixEntrySource<T>> ShiftedSource<T, S> {
    /// Shift the diagonal of `inner` by `shift`.
    ///
    /// # Panics
    /// Panics if `inner` is not square (a diagonal shift of a rectangular
    /// block is not defined).
    pub fn new(inner: S, shift: T) -> Self {
        assert_eq!(
            inner.nrows(),
            inner.ncols(),
            "ShiftedSource requires a square inner source"
        );
        ShiftedSource { inner, shift }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The diagonal shift.
    pub fn shift(&self) -> T {
        self.shift
    }
}

impl<T: Scalar, S: MatrixEntrySource<T>> MatrixEntrySource<T> for ShiftedSource<T, S> {
    fn nrows(&self) -> usize {
        self.inner.nrows()
    }

    fn ncols(&self) -> usize {
        self.inner.ncols()
    }

    fn entry(&self, i: usize, j: usize) -> T {
        let v = self.inner.entry(i, j);
        if i == j {
            v + self.shift
        } else {
            v
        }
    }

    fn col(&self, j: usize, out: &mut [T]) {
        self.inner.col(j, out);
        out[j] += self.shift;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifted_source_adds_to_the_diagonal_only() {
        let a = DenseMatrix::<f64>::from_fn(3, 3, |i, j| (i + 10 * j) as f64);
        let shifted = ShiftedSource::new(DenseSource::new(&a), 5.0);
        assert_eq!(shifted.nrows(), 3);
        assert_eq!(shifted.entry(1, 1), 16.0);
        assert_eq!(shifted.entry(1, 2), 21.0);
        let mut col = vec![0.0; 3];
        shifted.col(2, &mut col);
        assert_eq!(col, vec![20.0, 21.0, 27.0]);
        assert_eq!(shifted.shift(), 5.0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn shifted_source_rejects_rectangular_blocks() {
        let a = DenseMatrix::<f64>::zeros(3, 4);
        let _ = ShiftedSource::new(DenseSource::new(&a), 1.0);
    }

    #[test]
    fn dense_source_full_and_block() {
        let a = DenseMatrix::<f64>::from_fn(4, 5, |i, j| (10 * i + j) as f64);
        let full = DenseSource::new(&a);
        assert_eq!(full.nrows(), 4);
        assert_eq!(full.ncols(), 5);
        assert_eq!(full.entry(2, 3), 23.0);
        assert_eq!(full.to_dense(), a);

        let block = DenseSource::block(&a, 1, 2, 2, 3);
        assert_eq!(block.entry(0, 0), 12.0);
        assert_eq!(block.entry(1, 2), 24.0);
        let d = block.to_dense();
        assert_eq!(d.rows(), 2);
        assert_eq!(d.cols(), 3);
        assert_eq!(d[(1, 1)], 23.0);
    }

    #[test]
    fn closure_source_rows_and_cols() {
        let src = ClosureSource::new(3, 2, |i, j| (i + 10 * j) as f64);
        let mut row = vec![0.0; 2];
        src.row(1, &mut row);
        assert_eq!(row, vec![1.0, 11.0]);
        let mut col = vec![0.0; 3];
        src.col(1, &mut col);
        assert_eq!(col, vec![10.0, 11.0, 12.0]);
    }

    #[test]
    fn tile_matches_entries_for_default_and_dense_override() {
        let f = |i: usize, j: usize| (100 * i + j) as f64;
        let src = ClosureSource::new(7, 9, f);
        let mut got = DenseMatrix::<f64>::zeros(3, 4);
        let mut view = got.as_mut();
        src.tile(2, 5, &mut view);
        for jj in 0..4 {
            for ii in 0..3 {
                assert_eq!(got[(ii, jj)], f(ii + 2, jj + 5));
            }
        }
        let a = DenseMatrix::<f64>::from_fn(7, 9, f);
        let dense = DenseSource::new(&a);
        let mut got2 = DenseMatrix::<f64>::zeros(3, 4);
        let mut view2 = got2.as_mut();
        dense.tile(2, 5, &mut view2);
        assert_eq!(got, got2);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_block_panics() {
        let a = DenseMatrix::<f64>::zeros(3, 3);
        let _ = DenseSource::block(&a, 2, 2, 2, 2);
    }
}
