//! Randomized range finder with SVD recompression.
//!
//! The Gaussian range finder (Halko–Martinsson–Tropp) draws a random test
//! matrix, applies the block to it to capture its column space, and then
//! recompresses the small projected matrix with a dense SVD.  The adaptive
//! variant doubles the sample size until the projected tail passes the
//! requested tolerance — this is the style of construction the paper cites
//! for building HODLR/HSS approximations from matrix-vector products.

use crate::lowrank::LowRank;
use crate::source::MatrixEntrySource;
use hodlr_la::qr::orthonormalize;
use hodlr_la::svd::jacobi_svd;
use hodlr_la::{gemm, DenseMatrix, Op, RealScalar, Scalar};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Oversampling added on top of the target rank in each adaptive round.
const OVERSAMPLING: usize = 8;

/// Deterministic seed for the internal RNG: compression must be reproducible
/// run to run so that the benchmark tables are stable.
const SEED: u64 = 0x5eed_0bad_cafe;

/// Compress `source` with the randomized range finder at relative tolerance
/// `tol`, with an optional hard rank cap.
pub fn randomized_compress<T: Scalar, S: MatrixEntrySource<T> + ?Sized>(
    source: &S,
    tol: T::Real,
    max_rank: Option<usize>,
) -> LowRank<T> {
    let m = source.nrows();
    let n = source.ncols();
    if m == 0 || n == 0 {
        return LowRank::zero(m, n);
    }
    let cap = max_rank.unwrap_or(usize::MAX).min(m).min(n);
    if cap == 0 {
        return LowRank::zero(m, n);
    }

    // Materialise the block column by column once; the range finder then
    // works with dense GEMMs.  (For the block sizes HODLR compresses this is
    // the pragmatic choice; a fully matrix-free variant would only need
    // `A * Omega` and `A^* * Q` products.)
    let a = source.to_dense();
    let a_norm = a.norm_fro();
    if a_norm == T::Real::zero() {
        return LowRank::zero(m, n);
    }

    let mut rng = StdRng::seed_from_u64(SEED ^ ((m as u64) << 32 | n as u64));
    let mut samples = (OVERSAMPLING * 2).min(cap + OVERSAMPLING).min(n);

    loop {
        // Y = A * Omega, Q = orth(Y).
        let omega: DenseMatrix<T> = hodlr_la::random::gaussian_matrix(&mut rng, n, samples);
        let mut y = DenseMatrix::zeros(m, samples);
        gemm(
            T::one(),
            a.as_ref(),
            Op::None,
            omega.as_ref(),
            Op::None,
            T::zero(),
            y.as_mut(),
        );
        let q = orthonormalize(&y, T::Real::EPSILON);

        // B = Q^* A  (k x n), then SVD(B) gives the final factors.
        let k = q.cols();
        let mut b = DenseMatrix::zeros(k, n);
        if k > 0 {
            gemm(
                T::one(),
                q.as_ref(),
                Op::ConjTrans,
                a.as_ref(),
                Op::None,
                T::zero(),
                b.as_mut(),
            );
        }
        let svd = jacobi_svd(&b);

        // The sample size is sufficient once the projected block's spectrum
        // has visibly decayed below the tolerance before the last sample —
        // i.e. the numerical rank of B is strictly below the sample count —
        // which means adding more samples cannot reveal new directions above
        // the tolerance.
        let numerical_rank = svd.rank(tol);
        let projection_ok = numerical_rank < k;

        let exhausted = samples >= n.min(m) || samples >= cap + OVERSAMPLING;
        if projection_ok || exhausted {
            let keep = numerical_rank.min(cap);
            let (ub, v) = svd.truncate(keep);
            // U = Q * U_b.
            let mut u = DenseMatrix::zeros(m, keep);
            if keep > 0 {
                gemm(
                    T::one(),
                    q.as_ref(),
                    Op::None,
                    ub.as_ref(),
                    Op::None,
                    T::zero(),
                    u.as_mut(),
                );
            }
            return LowRank::new(u, v);
        }
        samples = (samples * 2).min(n.min(m)).min(cap + OVERSAMPLING);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{ClosureSource, DenseSource};
    use hodlr_la::random::random_low_rank;
    use hodlr_la::Complex64;
    use rand::rngs::StdRng;

    #[test]
    fn exact_low_rank_is_recovered() {
        let mut rng = StdRng::seed_from_u64(21);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, 60, 40, 5);
        let lr = randomized_compress(&DenseSource::new(&a), 1e-10, None);
        assert!(lr.rank() >= 5 && lr.rank() <= 8, "rank {}", lr.rank());
        assert!(lr.reconstruction_error(&a) < 1e-8 * a.norm_fro());
    }

    #[test]
    fn complex_block() {
        let mut rng = StdRng::seed_from_u64(22);
        let a: DenseMatrix<Complex64> = random_low_rank(&mut rng, 35, 30, 4);
        let lr = randomized_compress(&DenseSource::new(&a), 1e-10, None);
        assert!(lr.reconstruction_error(&a).to_f64() < 1e-8 * a.norm_fro().to_f64());
    }

    #[test]
    fn tolerance_controls_rank_on_decaying_spectrum() {
        // Kernel block with geometrically decaying singular values.
        let src = ClosureSource::new(50, 50, |i, j| {
            let x = i as f64 / 50.0;
            let y = 3.0 + j as f64 / 50.0;
            1.0 / (x - y).abs()
        });
        let dense = src.to_dense();
        let loose = randomized_compress(&src, 1e-4, None);
        let tight = randomized_compress(&src, 1e-10, None);
        assert!(loose.rank() < tight.rank());
        assert!(loose.reconstruction_error(&dense) < 1e-3 * dense.norm_fro());
        assert!(tight.reconstruction_error(&dense) < 1e-8 * dense.norm_fro());
    }

    #[test]
    fn rank_cap_is_respected() {
        let mut rng = StdRng::seed_from_u64(23);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, 30, 30, 12);
        let lr = randomized_compress(&DenseSource::new(&a), 1e-14, Some(4));
        assert!(lr.rank() <= 4);
    }

    #[test]
    fn zero_and_empty_blocks() {
        let zero = DenseMatrix::<f64>::zeros(12, 7);
        assert_eq!(
            randomized_compress(&DenseSource::new(&zero), 1e-10, None).rank(),
            0
        );
        let empty = DenseMatrix::<f64>::zeros(0, 7);
        assert_eq!(
            randomized_compress(&DenseSource::new(&empty), 1e-10, None).rank(),
            0
        );
    }

    #[test]
    fn compression_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(24);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, 25, 25, 3);
        let lr1 = randomized_compress(&DenseSource::new(&a), 1e-10, None);
        let lr2 = randomized_compress(&DenseSource::new(&a), 1e-10, None);
        assert_eq!(lr1.rank(), lr2.rank());
        assert!(lr1.to_dense().sub(&lr2.to_dense()).norm_max() < 1e-14);
    }
}
