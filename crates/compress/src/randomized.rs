//! Randomized range finder with SVD recompression.
//!
//! The Gaussian range finder (Halko–Martinsson–Tropp) draws a random test
//! matrix, applies the block to it to capture its column space, and then
//! recompresses the small projected matrix with a dense SVD.  The adaptive
//! variant doubles the sample size until the projected tail passes the
//! requested tolerance — this is the style of construction the paper cites
//! for building HODLR/HSS approximations from matrix-vector products.
//!
//! The block is never materialised densely: both products the range finder
//! needs (`Y = A Omega` and `B = Q^* A`) are accumulated tile by tile
//! through [`MatrixEntrySource::tile`] with a single bounded scratch buffer,
//! so the working set is `O((m + n) k + TILE^2)` even though every entry of
//! the block is evaluated.  Tiles are walked in a fixed sequential order, so
//! the result is bitwise identical run to run and independent of the thread
//! count of any surrounding rayon pool.

use crate::lowrank::LowRank;
use crate::source::MatrixEntrySource;
use hodlr_la::qr::orthonormalize;
use hodlr_la::svd::jacobi_svd;
use hodlr_la::{gemm, AllocMeter, DenseMatrix, Op, RealScalar, Scalar};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Oversampling added on top of the target rank in each adaptive round.
const OVERSAMPLING: usize = 8;

/// Deterministic seed for the internal RNG: compression must be reproducible
/// run to run so that the benchmark tables are stable.
const SEED: u64 = 0x5eed_0bad_cafe;

/// Edge length of the streaming scratch tile.  The only buffer whose size is
/// not `O((m + n) k)` is one `TILE x TILE` block of the source.
pub(crate) const TILE: usize = 128;

/// Bytes of a `rows x cols` dense matrix of `T`.
pub(crate) fn dense_bytes<T>(rows: usize, cols: usize) -> u64 {
    (rows * cols * std::mem::size_of::<T>()) as u64
}

/// Compress `source` with the randomized range finder at relative tolerance
/// `tol`, with an optional hard rank cap.
pub fn randomized_compress<T: Scalar, S: MatrixEntrySource<T> + ?Sized>(
    source: &S,
    tol: T::Real,
    max_rank: Option<usize>,
) -> LowRank<T> {
    randomized_compress_metered(source, tol, max_rank, None)
}

/// [`randomized_compress`] with live/peak scratch accounting on `meter`.
pub fn randomized_compress_metered<T: Scalar, S: MatrixEntrySource<T> + ?Sized>(
    source: &S,
    tol: T::Real,
    max_rank: Option<usize>,
    meter: Option<&AllocMeter>,
) -> LowRank<T> {
    let m = source.nrows();
    let n = source.ncols();
    if m == 0 || n == 0 {
        return LowRank::zero(m, n);
    }
    let cap = max_rank.unwrap_or(usize::MAX).min(m).min(n);
    if cap == 0 {
        return LowRank::zero(m, n);
    }

    // One scratch tile of the block, reused by every pass of every adaptive
    // round: the full block is streamed through it and never held at once.
    let tm = TILE.min(m);
    let tn = TILE.min(n);
    let mut tile = DenseMatrix::<T>::zeros(tm, tn);
    if let Some(meter) = meter {
        meter.record_alloc(dense_bytes::<T>(tm, tn));
    }

    let mut rng = StdRng::seed_from_u64(SEED ^ ((m as u64) << 32 | n as u64));
    let mut samples = (OVERSAMPLING * 2).min(cap + OVERSAMPLING).min(n);

    let result = loop {
        // Y = A * Omega, accumulated tile by tile, then Q = orth(Y).
        let omega: DenseMatrix<T> = hodlr_la::random::gaussian_matrix(&mut rng, n, samples);
        let mut y = DenseMatrix::zeros(m, samples);
        if let Some(meter) = meter {
            meter.record_alloc(dense_bytes::<T>(n + m, samples));
        }
        for r0 in (0..m).step_by(TILE) {
            let rb = TILE.min(m - r0);
            for c0 in (0..n).step_by(TILE) {
                let cb = TILE.min(n - c0);
                let mut t = tile.block_mut(0, 0, rb, cb);
                source.tile(r0, c0, &mut t);
                gemm(
                    T::one(),
                    t.as_ref(),
                    Op::None,
                    omega.block(c0, 0, cb, samples),
                    Op::None,
                    T::one(),
                    y.block_mut(r0, 0, rb, samples),
                );
            }
        }
        let q = orthonormalize(&y, T::Real::EPSILON);
        let k = q.cols();
        if k == 0 {
            // A Gaussian sketch of a non-zero block is non-zero almost
            // surely (and deterministically so for the fixed seed used
            // here), so an empty range means the block itself is zero.
            if let Some(meter) = meter {
                meter.record_free(dense_bytes::<T>(n + m, samples));
            }
            break LowRank::zero(m, n);
        }

        // B = Q^* A  (k x n), accumulated tile by tile, then SVD(B) gives
        // the final factors.
        let mut b = DenseMatrix::zeros(k, n);
        if let Some(meter) = meter {
            meter.record_alloc(dense_bytes::<T>(m, k) + dense_bytes::<T>(k, n));
        }
        for c0 in (0..n).step_by(TILE) {
            let cb = TILE.min(n - c0);
            for r0 in (0..m).step_by(TILE) {
                let rb = TILE.min(m - r0);
                let mut t = tile.block_mut(0, 0, rb, cb);
                source.tile(r0, c0, &mut t);
                gemm(
                    T::one(),
                    q.block(r0, 0, rb, k),
                    Op::ConjTrans,
                    t.as_ref(),
                    Op::None,
                    T::one(),
                    b.block_mut(0, c0, k, cb),
                );
            }
        }
        let svd = jacobi_svd(&b);

        // The sample size is sufficient once the projected block's spectrum
        // has visibly decayed below the tolerance before the last sample —
        // i.e. the numerical rank of B is strictly below the sample count —
        // which means adding more samples cannot reveal new directions above
        // the tolerance.
        let numerical_rank = svd.rank(tol);
        let projection_ok = numerical_rank < k;

        let exhausted = samples >= n.min(m) || samples >= cap + OVERSAMPLING;
        if projection_ok || exhausted {
            let keep = numerical_rank.min(cap);
            let (ub, v) = svd.truncate(keep);
            // U = Q * U_b.
            let mut u = DenseMatrix::zeros(m, keep);
            if keep > 0 {
                gemm(
                    T::one(),
                    q.as_ref(),
                    Op::None,
                    ub.as_ref(),
                    Op::None,
                    T::zero(),
                    u.as_mut(),
                );
            }
            if let Some(meter) = meter {
                // Round scratch retired; the returned factors stay live for
                // the caller to account for.
                meter.record_free(dense_bytes::<T>(n + m, samples));
                meter.record_free(dense_bytes::<T>(m, k) + dense_bytes::<T>(k, n));
            }
            break LowRank::new(u, v);
        }
        if let Some(meter) = meter {
            meter.record_free(dense_bytes::<T>(n + m, samples));
            meter.record_free(dense_bytes::<T>(m, k) + dense_bytes::<T>(k, n));
        }
        samples = (samples * 2).min(n.min(m)).min(cap + OVERSAMPLING);
    };
    if let Some(meter) = meter {
        meter.record_free(dense_bytes::<T>(tm, tn));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{ClosureSource, DenseSource};
    use hodlr_la::random::random_low_rank;
    use hodlr_la::Complex64;
    use rand::rngs::StdRng;

    #[test]
    fn exact_low_rank_is_recovered() {
        let mut rng = StdRng::seed_from_u64(21);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, 60, 40, 5);
        let lr = randomized_compress(&DenseSource::new(&a), 1e-10, None);
        assert!(lr.rank() >= 5 && lr.rank() <= 8, "rank {}", lr.rank());
        assert!(lr.reconstruction_error(&a) < 1e-8 * a.norm_fro());
    }

    #[test]
    fn complex_block() {
        let mut rng = StdRng::seed_from_u64(22);
        let a: DenseMatrix<Complex64> = random_low_rank(&mut rng, 35, 30, 4);
        let lr = randomized_compress(&DenseSource::new(&a), 1e-10, None);
        assert!(lr.reconstruction_error(&a).to_f64() < 1e-8 * a.norm_fro().to_f64());
    }

    #[test]
    fn tolerance_controls_rank_on_decaying_spectrum() {
        // Kernel block with geometrically decaying singular values.
        let src = ClosureSource::new(50, 50, |i, j| {
            let x = i as f64 / 50.0;
            let y = 3.0 + j as f64 / 50.0;
            1.0 / (x - y).abs()
        });
        let dense = src.to_dense();
        let loose = randomized_compress(&src, 1e-4, None);
        let tight = randomized_compress(&src, 1e-10, None);
        assert!(loose.rank() < tight.rank());
        assert!(loose.reconstruction_error(&dense) < 1e-3 * dense.norm_fro());
        assert!(tight.reconstruction_error(&dense) < 1e-8 * dense.norm_fro());
    }

    #[test]
    fn rank_cap_is_respected() {
        let mut rng = StdRng::seed_from_u64(23);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, 30, 30, 12);
        let lr = randomized_compress(&DenseSource::new(&a), 1e-14, Some(4));
        assert!(lr.rank() <= 4);
    }

    #[test]
    fn zero_and_empty_blocks() {
        let zero = DenseMatrix::<f64>::zeros(12, 7);
        assert_eq!(
            randomized_compress(&DenseSource::new(&zero), 1e-10, None).rank(),
            0
        );
        let empty = DenseMatrix::<f64>::zeros(0, 7);
        assert_eq!(
            randomized_compress(&DenseSource::new(&empty), 1e-10, None).rank(),
            0
        );
    }

    #[test]
    fn compression_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(24);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, 25, 25, 3);
        let lr1 = randomized_compress(&DenseSource::new(&a), 1e-10, None);
        let lr2 = randomized_compress(&DenseSource::new(&a), 1e-10, None);
        assert_eq!(lr1.rank(), lr2.rank());
        assert!(lr1.to_dense().sub(&lr2.to_dense()).norm_max() < 1e-14);
    }

    #[test]
    fn blocks_larger_than_one_tile_are_compressed_correctly() {
        // m and n both above TILE so the streamed accumulation crosses tile
        // boundaries in both directions.
        let mut rng = StdRng::seed_from_u64(25);
        let a: DenseMatrix<f64> = random_low_rank(&mut rng, TILE + 45, TILE + 17, 6);
        let lr = randomized_compress(&DenseSource::new(&a), 1e-10, None);
        assert!(lr.rank() >= 6 && lr.rank() <= 14, "rank {}", lr.rank());
        assert!(lr.reconstruction_error(&a) < 1e-8 * a.norm_fro());
    }
}
