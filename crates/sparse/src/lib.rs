//! # hodlr-sparse — the block-sparse (extended sparsification) comparator
//!
//! The paper compares its GPU HODLR solver against the block-sparse solver
//! of Ho & Greengard: the HODLR matrix is embedded into a larger *sparse*
//! block system by introducing one auxiliary variable per off-diagonal basis
//! (Section III-E b, Example 3), and that sparse system is handed to a
//! sparse direct solver with natural ordering.  The paper uses
//! UMFPACK / MKL PARDISO for that step; this crate provides the equivalent
//! substrate built from scratch:
//!
//! * [`ExtendedSystem`] — assembly of the extended block-sparse system from
//!   a [`HodlrMatrix`](hodlr_core::HodlrMatrix): leaf unknowns `x_lambda`
//!   plus, for every non-root
//!   node `alpha`, the auxiliary `w_alpha = V_sibling^* x_sibling`;
//! * [`BlockSparseLu`] — a block-sparse LU factorization with the natural
//!   elimination ordering (all leaf blocks first, then the auxiliary blocks
//!   deepest level first), which the paper observes needs no fill-reducing
//!   ordering for these systems.  The Schur-complement updates can run
//!   sequentially or data-parallel with rayon ("serial" vs "parallel"
//!   block-sparse solver in the tables).

pub mod blocklu;
pub mod extended;

pub use blocklu::{BlockSparseLu, BlockSparseSystem};
pub use extended::ExtendedSystem;
