//! Assembly of the extended (sparsified) block system of Section III-E (b).

use crate::blocklu::{BlockSparseLu, BlockSparseSystem};
use hodlr_core::HodlrMatrix;
use hodlr_la::lu::SingularError;
use hodlr_la::{DenseMatrix, Scalar};
use hodlr_tree::NodeId;

/// The extended block-sparse embedding of a HODLR matrix.
///
/// Unknown blocks, in this order:
///
/// 1. one block `x_lambda` per leaf (the original unknowns, leaf by leaf);
/// 2. one auxiliary block `w_alpha` per non-root tree node, where
///    `w_alpha = V_{sibling(alpha)}^* x_{sibling(alpha)}` — the quantity the
///    left basis `U_alpha` multiplies (Example 3 of the paper).
///
/// Block equations:
///
/// * rows of `x_lambda`:
///   `D_lambda x_lambda + sum_{alpha : I_lambda in I_alpha} U_alpha(I_lambda, :) w_alpha = b_lambda`;
/// * rows of `w_alpha`:
///   `V_{sib}^* x_{sib} - w_alpha = 0`, expanded leaf by leaf of `sib`.
///
/// The natural elimination order — leaves first, then the auxiliaries from
/// the deepest level up — is what the paper reports works well without any
/// fill-reducing analysis.
pub struct ExtendedSystem<T: Scalar> {
    system: BlockSparseSystem<T>,
    order: Vec<usize>,
    n: usize,
    num_leaves: usize,
    leaf_offsets: Vec<usize>,
    leaf_sizes: Vec<usize>,
}

impl<T: Scalar> ExtendedSystem<T> {
    /// Assemble the extended system from a HODLR matrix.
    pub fn new(matrix: &HodlrMatrix<T>) -> Self {
        let tree = matrix.tree();
        let layout = matrix.layout();
        let n = matrix.n();
        let num_leaves = tree.num_leaves();
        let num_nodes = tree.num_nodes();

        // Block index map: leaves 0..num_leaves, then non-root nodes in id
        // order (ids 2..=num_nodes map to num_leaves + id - 2).
        let aux_index = |node: NodeId| num_leaves + node - 2;
        let first_leaf = 1usize << tree.levels();

        let mut sizes = Vec::with_capacity(num_leaves + num_nodes - 1);
        let mut leaf_offsets = Vec::with_capacity(num_leaves);
        let mut leaf_sizes = Vec::with_capacity(num_leaves);
        for leaf in tree.leaves() {
            leaf_offsets.push(tree.range(leaf).start);
            leaf_sizes.push(tree.node_size(leaf));
            sizes.push(tree.node_size(leaf));
        }
        for node in 2..=num_nodes {
            let level = tree.level_of(node);
            sizes.push(layout.width(level));
        }

        let mut system = BlockSparseSystem::new(sizes);

        // Leaf rows: diagonal blocks and the U couplings to every non-root
        // ancestor (including the leaf itself).
        for (leaf_idx, leaf) in tree.leaves().enumerate() {
            system.add_block(leaf_idx, leaf_idx, matrix.diag_block(leaf_idx).clone());
            let leaf_range = tree.range(leaf);
            let mut node = leaf;
            while node >= 2 {
                let level = tree.level_of(node);
                let w = layout.width(level);
                if w > 0 {
                    // U_node restricted to the rows of this leaf.
                    let u = matrix.u_block(node);
                    let node_start = tree.range(node).start;
                    let local = leaf_range.start - node_start;
                    let mut block = DenseMatrix::zeros(leaf_range.len(), w);
                    for j in 0..w {
                        for i in 0..leaf_range.len() {
                            block[(i, j)] = u.get(local + i, j);
                        }
                    }
                    system.add_block(leaf_idx, aux_index(node), block);
                }
                node /= 2;
            }
        }

        // Auxiliary rows: V_{sib}^* x_{sib} - w_alpha = 0.
        for node in 2..=num_nodes {
            let level = tree.level_of(node);
            let w = layout.width(level);
            let row = aux_index(node);
            // -I on the diagonal of the auxiliary block.
            let mut neg_identity = DenseMatrix::zeros(w, w);
            for i in 0..w {
                neg_identity[(i, i)] = -T::one();
            }
            system.add_block(row, row, neg_identity);

            let sib = node ^ 1;
            let sib_range = tree.range(sib);
            let v = matrix.v_block(sib);
            // Split V_{sib}^* over the leaves underneath the sibling.
            for (leaf_idx, leaf) in tree.leaves().enumerate() {
                let leaf_range = tree.range(leaf);
                if leaf_range.start < sib_range.start || leaf_range.end > sib_range.end {
                    continue;
                }
                let local = leaf_range.start - sib_range.start;
                let mut block = DenseMatrix::zeros(w, leaf_range.len());
                for j in 0..leaf_range.len() {
                    for i in 0..w {
                        block[(i, j)] = v.get(local + j, i).conj();
                    }
                }
                system.add_block(row, leaf_idx, block);
            }
        }

        // Natural ordering: leaves, then auxiliaries deepest level first.
        let mut order: Vec<usize> = (0..num_leaves).collect();
        for level in (1..=tree.levels()).rev() {
            for node in tree.level_nodes(level) {
                order.push(aux_index(node));
            }
        }

        // Sanity: the order must mention every block exactly once.
        debug_assert_eq!(order.len(), system.num_blocks());
        let _ = first_leaf;

        ExtendedSystem {
            system,
            order,
            n,
            num_leaves,
            leaf_offsets,
            leaf_sizes,
        }
    }

    /// The underlying block-sparse system.
    pub fn system(&self) -> &BlockSparseSystem<T> {
        &self.system
    }

    /// The natural elimination order used by [`ExtendedSystem::factorize`].
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Total number of scalar unknowns in the extended system (original `N`
    /// plus all auxiliaries).
    pub fn extended_dim(&self) -> usize {
        self.system.dim()
    }

    /// Size `N` of the original system.
    pub fn original_dim(&self) -> usize {
        self.n
    }

    /// Factorize with the natural ordering.
    ///
    /// # Errors
    /// Returns an error if a pivot block is singular.
    pub fn factorize(&self, parallel: bool) -> Result<ExtendedFactorization<T>, SingularError> {
        let lu = self.system.factorize(&self.order, parallel)?;
        Ok(ExtendedFactorization {
            lu,
            n: self.n,
            num_leaves: self.num_leaves,
            leaf_offsets: self.leaf_offsets.clone(),
            leaf_sizes: self.leaf_sizes.clone(),
        })
    }
}

/// A factorized extended system, ready to solve the original `A x = b`.
pub struct ExtendedFactorization<T: Scalar> {
    lu: BlockSparseLu<T>,
    n: usize,
    num_leaves: usize,
    leaf_offsets: Vec<usize>,
    leaf_sizes: Vec<usize>,
}

impl<T: Scalar> ExtendedFactorization<T> {
    /// Solve `A x = b` for the original unknowns: the right-hand side is
    /// padded with zeros on the auxiliary rows, the extended system is
    /// solved, and the leaf unknowns are gathered back into the original
    /// ordering.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        assert_eq!(b.len(), self.n, "right-hand side has the wrong length");
        let mut extended_b = vec![T::zero(); self.lu.dim()];
        // Leaf blocks come first and are laid out in leaf order, which is
        // also the original index order.
        extended_b[..self.n].copy_from_slice(b);
        let extended_x = self.lu.solve(&extended_b);
        let mut x = vec![T::zero(); self.n];
        let mut cursor = 0;
        for leaf_idx in 0..self.num_leaves {
            let len = self.leaf_sizes[leaf_idx];
            let start = self.leaf_offsets[leaf_idx];
            x[start..start + len].copy_from_slice(&extended_x[cursor..cursor + len]);
            cursor += len;
        }
        x
    }

    /// Stored entries of the factorization.
    pub fn storage_entries(&self) -> usize {
        self.lu.storage_entries()
    }

    /// Storage in GiB.
    pub fn memory_gib(&self) -> f64 {
        self.lu.memory_gib()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr_core::matrix::random_hodlr;
    use hodlr_la::lu::solve_dense;
    use hodlr_la::{Complex64, RealScalar};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check<T: Scalar>(n: usize, levels: usize, rank: usize, seed: u64, parallel: bool, tol: f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m: HodlrMatrix<T> = random_hodlr(&mut rng, n, levels, rank);
        let ext = ExtendedSystem::new(&m);
        assert_eq!(ext.original_dim(), n);
        assert!(ext.extended_dim() > n);
        let fact = ext.factorize(parallel).expect("invertible");
        let b: Vec<T> = hodlr_la::random::random_vector(&mut rng, n);
        let x = fact.solve(&b);
        // Compare against the serial HODLR factorization and the dense solve.
        let x_dense = solve_dense(&m.to_dense(), &b).unwrap();
        for (a, r) in x.iter().zip(x_dense.iter()) {
            assert!((*a - *r).abs().to_f64() < tol, "{a:?} vs {r:?}");
        }
    }

    #[test]
    fn extended_solve_matches_dense_real() {
        check::<f64>(64, 3, 3, 11, false, 1e-8);
        check::<f64>(80, 2, 4, 12, true, 1e-8);
    }

    #[test]
    fn extended_solve_matches_dense_complex() {
        check::<Complex64>(48, 2, 2, 13, false, 1e-8);
    }

    #[test]
    fn extended_solve_non_power_of_two() {
        check::<f64>(70, 3, 2, 14, false, 1e-8);
    }

    #[test]
    fn extended_dimension_matches_the_formula() {
        // N plus one auxiliary of the level width per non-root node.
        let mut rng = StdRng::seed_from_u64(15);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 64, 3, 2);
        let ext = ExtendedSystem::new(&m);
        let aux: usize = (1..=3).map(|l| (1usize << l) * 2).sum();
        assert_eq!(ext.extended_dim(), 64 + aux);
        assert_eq!(ext.order().len(), ext.system().num_blocks());
    }

    #[test]
    fn storage_grows_with_the_extended_system() {
        let mut rng = StdRng::seed_from_u64(16);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 128, 3, 3);
        let ext = ExtendedSystem::new(&m);
        let fact = ext.factorize(false).unwrap();
        assert!(fact.storage_entries() > m.storage_entries());
        assert!(fact.memory_gib() > 0.0);
    }
}
