//! A block-sparse matrix and its block LU factorization.

use hodlr_la::lu::SingularError;
use hodlr_la::{gemm, DenseMatrix, LuFactor, Op, Scalar};
use rayon::prelude::*;
use std::collections::HashMap;

/// A square matrix partitioned into blocks, of which only a sparse subset is
/// nonzero.
#[derive(Clone, Debug)]
pub struct BlockSparseSystem<T: Scalar> {
    sizes: Vec<usize>,
    offsets: Vec<usize>,
    blocks: HashMap<(usize, usize), DenseMatrix<T>>,
}

impl<T: Scalar> BlockSparseSystem<T> {
    /// An empty system with the given block sizes.
    pub fn new(sizes: Vec<usize>) -> Self {
        let mut offsets = Vec::with_capacity(sizes.len() + 1);
        offsets.push(0);
        let mut acc = 0;
        for &s in &sizes {
            acc += s;
            offsets.push(acc);
        }
        BlockSparseSystem {
            sizes,
            offsets,
            blocks: HashMap::new(),
        }
    }

    /// Number of block rows/columns.
    pub fn num_blocks(&self) -> usize {
        self.sizes.len()
    }

    /// Total number of scalar unknowns.
    pub fn dim(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Size of block `i`.
    pub fn block_size(&self, i: usize) -> usize {
        self.sizes[i]
    }

    /// Scalar offset of block `i`.
    pub fn block_offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Insert (or accumulate into) the block at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the block shape does not match the row/column sizes.
    pub fn add_block(&mut self, row: usize, col: usize, block: DenseMatrix<T>) {
        assert_eq!(block.rows(), self.sizes[row], "block row size mismatch");
        assert_eq!(block.cols(), self.sizes[col], "block column size mismatch");
        match self.blocks.get_mut(&(row, col)) {
            Some(existing) => existing.axpy(T::one(), &block),
            None => {
                self.blocks.insert((row, col), block);
            }
        }
    }

    /// Number of stored (nonzero) blocks.
    pub fn num_stored_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of stored scalar entries.
    pub fn storage_entries(&self) -> usize {
        self.blocks.values().map(|b| b.rows() * b.cols()).sum()
    }

    /// Materialise the full matrix densely (tests only).
    pub fn to_dense(&self) -> DenseMatrix<T> {
        let n = self.dim();
        let mut a = DenseMatrix::zeros(n, n);
        for (&(i, j), block) in &self.blocks {
            a.set_block(self.offsets[i], self.offsets[j], block);
        }
        a
    }

    /// Factorize with the given elimination order.
    ///
    /// With `parallel`, the Schur-complement updates of each pivot step run
    /// as independent tasks on the rayon work-stealing pool (the "Parallel
    /// Block-Sparse Solver" rows of the bench tables); the updates are
    /// *applied* in a fixed order afterwards, so parallel and sequential
    /// factorizations agree bitwise.
    ///
    /// # Errors
    /// Returns an error if a pivot block becomes singular.
    pub fn factorize(
        &self,
        order: &[usize],
        parallel: bool,
    ) -> Result<BlockSparseLu<T>, SingularError> {
        assert_eq!(
            order.len(),
            self.num_blocks(),
            "order must list every block"
        );
        let mut work = self.blocks.clone();
        let mut position = vec![0usize; order.len()];
        for (pos, &p) in order.iter().enumerate() {
            position[p] = pos;
        }

        let mut pivot_lu: Vec<Option<LuFactor<T>>> = (0..self.num_blocks()).map(|_| None).collect();
        let mut lower: HashMap<(usize, usize), DenseMatrix<T>> = HashMap::new();
        let mut upper: HashMap<(usize, usize), DenseMatrix<T>> = HashMap::new();

        for &p in order {
            let app = work
                .remove(&(p, p))
                .unwrap_or_else(|| DenseMatrix::zeros(self.sizes[p], self.sizes[p]));
            let lu = LuFactor::from_matrix(app)?;

            // Rows below and columns right of the pivot (in elimination
            // order) that currently hold a block coupled to `p`.
            // Sorted so the elimination structure (and with it every
            // floating-point accumulation order downstream) is independent
            // of HashMap iteration order — a run-to-run determinism
            // requirement, orthogonal to the thread count.
            let mut rows: Vec<usize> = work
                .keys()
                .filter(|&&(i, j)| j == p && position[i] > position[p])
                .map(|&(i, _)| i)
                .collect();
            rows.sort_unstable();
            let mut cols: Vec<usize> = work
                .keys()
                .filter(|&&(i, j)| i == p && position[j] > position[p])
                .map(|&(_, j)| j)
                .collect();
            cols.sort_unstable();

            // U_pj: the pivot row blocks as they are now.
            // L_ip: A_ip App^{-1}; also keep App^{-1} A_pj for the updates.
            let mut inv_apj: HashMap<usize, DenseMatrix<T>> = HashMap::new();
            for &j in &cols {
                let apj = work.get(&(p, j)).expect("column block exists").clone();
                let solved = lu.solve_matrix(&apj);
                upper.insert((p, j), apj);
                inv_apj.insert(j, solved);
            }
            for &i in &rows {
                let aip = work.remove(&(i, p)).expect("row block exists");
                lower.insert((i, p), aip);
            }

            // Schur updates A_ij -= A_ip App^{-1} A_pj for every (i, j) pair.
            let pairs: Vec<(usize, usize)> = rows
                .iter()
                .flat_map(|&i| cols.iter().map(move |&j| (i, j)))
                .collect();
            let compute = |&(i, j): &(usize, usize)| -> ((usize, usize), DenseMatrix<T>) {
                let aip = &lower[&(i, p)];
                let spj = &inv_apj[&j];
                let mut update = DenseMatrix::zeros(self.sizes[i], self.sizes[j]);
                gemm(
                    T::one(),
                    aip.as_ref(),
                    Op::None,
                    spj.as_ref(),
                    Op::None,
                    T::zero(),
                    update.as_mut(),
                );
                ((i, j), update)
            };
            let updates: Vec<((usize, usize), DenseMatrix<T>)> = if parallel && pairs.len() > 1 {
                pairs.par_iter().map(compute).collect()
            } else {
                pairs.iter().map(compute).collect()
            };
            for ((i, j), update) in updates {
                match work.get_mut(&(i, j)) {
                    Some(existing) => existing.axpy(-T::one(), &update),
                    None => {
                        let mut fill = DenseMatrix::zeros(self.sizes[i], self.sizes[j]);
                        fill.axpy(-T::one(), &update);
                        work.insert((i, j), fill);
                    }
                }
            }
            // Remove the pivot row blocks from the active set.
            for &j in &cols {
                work.remove(&(p, j));
            }
            pivot_lu[p] = Some(lu);
        }

        Ok(BlockSparseLu {
            sizes: self.sizes.clone(),
            offsets: self.offsets.clone(),
            order: order.to_vec(),
            pivot_lu: pivot_lu
                .into_iter()
                .map(|p| p.expect("pivot factored"))
                .collect(),
            lower,
            upper,
        })
    }
}

/// The block LU factorization produced by [`BlockSparseSystem::factorize`].
#[derive(Clone, Debug)]
pub struct BlockSparseLu<T: Scalar> {
    sizes: Vec<usize>,
    offsets: Vec<usize>,
    order: Vec<usize>,
    pivot_lu: Vec<LuFactor<T>>,
    lower: HashMap<(usize, usize), DenseMatrix<T>>,
    upper: HashMap<(usize, usize), DenseMatrix<T>>,
}

impl<T: Scalar> BlockSparseLu<T> {
    /// Total number of scalar unknowns.
    pub fn dim(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Stored entries of the factorization (pivot factors + L and U blocks).
    pub fn storage_entries(&self) -> usize {
        let pivots: usize = self.pivot_lu.iter().map(|f| f.order() * f.order()).sum();
        let l: usize = self.lower.values().map(|b| b.rows() * b.cols()).sum();
        let u: usize = self.upper.values().map(|b| b.rows() * b.cols()).sum();
        pivots + l + u
    }

    /// Storage in GiB.
    pub fn memory_gib(&self) -> f64 {
        (self.storage_entries() * std::mem::size_of::<T>()) as f64 / (1u64 << 30) as f64
    }

    /// Solve the factored system for a (block-partitioned) right-hand side
    /// of `nrhs` columns, given as a dense `dim x nrhs` matrix.
    pub fn solve_matrix(&self, b: &DenseMatrix<T>) -> DenseMatrix<T> {
        assert_eq!(
            b.rows(),
            self.dim(),
            "right-hand side has the wrong row count"
        );
        let nrhs = b.cols();
        let mut x = b.clone();

        // Index the L blocks by pivot column and the U blocks by pivot row
        // once, so the substitution sweeps touch only the blocks they need.
        let mut lower_by_col: HashMap<usize, Vec<(usize, &DenseMatrix<T>)>> = HashMap::new();
        for (&(i, q), block) in &self.lower {
            lower_by_col.entry(q).or_default().push((i, block));
        }
        let mut upper_by_row: HashMap<usize, Vec<(usize, &DenseMatrix<T>)>> = HashMap::new();
        for (&(r, j), block) in &self.upper {
            upper_by_row.entry(r).or_default().push((j, block));
        }
        // The backward sweep accumulates several U_pj x_j terms into one
        // row block; sort so the summation order does not depend on
        // HashMap iteration order.
        for list in lower_by_col.values_mut() {
            list.sort_unstable_by_key(|&(i, _)| i);
        }
        for list in upper_by_row.values_mut() {
            list.sort_unstable_by_key(|&(j, _)| j);
        }

        // Forward: for every pivot in elimination order, once its rows are
        // final, subtract L_ip (App^{-1} y_p) from every later row i.
        for &p in &self.order {
            let yp = x.sub_matrix(self.offsets[p], 0, self.sizes[p], nrhs);
            let zp = self.pivot_lu[p].solve_matrix(&yp);
            if let Some(rows) = lower_by_col.get(&p) {
                for &(i, lip) in rows {
                    let mut xi = x.block_mut(self.offsets[i], 0, self.sizes[i], nrhs);
                    gemm(
                        -T::one(),
                        lip.as_ref(),
                        Op::None,
                        zp.as_ref(),
                        Op::None,
                        T::one(),
                        xi.reborrow(),
                    );
                }
            }
        }

        // Backward: in reverse elimination order, x_p = App^{-1} (y_p -
        // sum_{q later} U_pq x_q).
        for &p in self.order.iter().rev() {
            let mut rhs = x.sub_matrix(self.offsets[p], 0, self.sizes[p], nrhs);
            if let Some(cols) = upper_by_row.get(&p) {
                for &(j, upj) in cols {
                    let xj = x.sub_matrix(self.offsets[j], 0, self.sizes[j], nrhs);
                    let mut tmp = DenseMatrix::zeros(self.sizes[p], nrhs);
                    gemm(
                        T::one(),
                        upj.as_ref(),
                        Op::None,
                        xj.as_ref(),
                        Op::None,
                        T::zero(),
                        tmp.as_mut(),
                    );
                    rhs.axpy(-T::one(), &tmp);
                }
            }
            let solved = self.pivot_lu[p].solve_matrix(&rhs);
            x.set_block(self.offsets[p], 0, &solved);
        }
        x
    }

    /// Solve for a single right-hand side vector.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let b_mat = DenseMatrix::from_col_major(b.len(), 1, b.to_vec());
        self.solve_matrix(&b_mat).into_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr_la::lu::solve_dense;
    use hodlr_la::random::{random_diag_dominant, random_matrix, random_vector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_block_system(seed: u64, sizes: Vec<usize>, density: f64) -> BlockSparseSystem<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sys = BlockSparseSystem::new(sizes.clone());
        for i in 0..sizes.len() {
            // Strong diagonal blocks keep every Schur complement invertible.
            let mut d: DenseMatrix<f64> = random_diag_dominant(&mut rng, sizes[i]);
            d.scale_in_place(4.0);
            sys.add_block(i, i, d);
            for j in 0..sizes.len() {
                if i != j && rand::Rng::gen_bool(&mut rng, density) {
                    sys.add_block(i, j, random_matrix(&mut rng, sizes[i], sizes[j]));
                }
            }
        }
        sys
    }

    #[test]
    fn block_lu_matches_dense_solve() {
        let sys = random_block_system(1, vec![4, 6, 3, 5, 2], 0.4);
        let dense = sys.to_dense();
        let order: Vec<usize> = (0..sys.num_blocks()).collect();
        let lu = sys.factorize(&order, false).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let b: Vec<f64> = random_vector(&mut rng, sys.dim());
        let x = lu.solve(&b);
        let x_ref = solve_dense(&dense, &b).unwrap();
        for (a, r) in x.iter().zip(x_ref.iter()) {
            assert!((a - r).abs() < 1e-8, "{a} vs {r}");
        }
    }

    #[test]
    fn parallel_and_sequential_factorizations_agree() {
        let sys = random_block_system(3, vec![5; 8], 0.3);
        let order: Vec<usize> = (0..8).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let b: Vec<f64> = random_vector(&mut rng, sys.dim());
        let x_seq = sys.factorize(&order, false).unwrap().solve(&b);
        let x_par = sys.factorize(&order, true).unwrap().solve(&b);
        for (a, r) in x_seq.iter().zip(x_par.iter()) {
            assert!((a - r).abs() < 1e-11);
        }
    }

    #[test]
    fn elimination_order_does_not_change_the_answer() {
        let sys = random_block_system(5, vec![3, 4, 5, 2, 6], 0.5);
        let mut rng = StdRng::seed_from_u64(6);
        let b: Vec<f64> = random_vector(&mut rng, sys.dim());
        let natural: Vec<usize> = (0..5).collect();
        let reversed: Vec<usize> = (0..5).rev().collect();
        let x1 = sys.factorize(&natural, false).unwrap().solve(&b);
        let x2 = sys.factorize(&reversed, false).unwrap().solve(&b);
        for (a, r) in x1.iter().zip(x2.iter()) {
            assert!((a - r).abs() < 1e-8);
        }
    }

    #[test]
    fn multiple_right_hand_sides() {
        let sys = random_block_system(7, vec![4, 4, 4], 0.8);
        let dense = sys.to_dense();
        let order = vec![0, 1, 2];
        let lu = sys.factorize(&order, false).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let b: DenseMatrix<f64> = random_matrix(&mut rng, sys.dim(), 3);
        let x = lu.solve_matrix(&b);
        let residual = dense.matmul(&x).sub(&b).norm_max();
        assert!(residual < 1e-8, "residual {residual}");
    }

    #[test]
    fn singular_pivot_is_reported() {
        let mut sys = BlockSparseSystem::<f64>::new(vec![3, 3]);
        sys.add_block(0, 0, DenseMatrix::identity(3));
        sys.add_block(1, 1, DenseMatrix::zeros(3, 3));
        assert!(sys.factorize(&[0, 1], false).is_err());
    }

    #[test]
    fn storage_accounting_counts_blocks() {
        let sys = random_block_system(9, vec![4, 4], 1.0);
        assert_eq!(sys.num_stored_blocks(), 4);
        assert_eq!(sys.storage_entries(), 4 * 16);
        let lu = sys.factorize(&[0, 1], false).unwrap();
        assert!(lu.storage_entries() >= 3 * 16);
        assert!(lu.memory_gib() > 0.0);
    }
}
