//! # hodlr-kernels — kernel functions and kernel-matrix sources
//!
//! The paper's first benchmark family (Section IV-A, Table III) solves dense
//! linear systems whose coefficient matrix is a *kernel matrix*
//! `K_{ij} = K(y_i, y_j)` over a point cloud.  This crate provides:
//!
//! * the Rotne–Prager–Yamakawa (RPY) tensor kernel of Eq. (18), used in the
//!   paper's comparison against HODLRlib, plus the standard scalar kernels
//!   of the machine-learning applications the introduction cites (Gaussian,
//!   Matérn, exponential) — see [`kernels`];
//! * adapters that turn a kernel plus a point cloud into a
//!   [`MatrixEntrySource`](hodlr_compress::MatrixEntrySource) so the HODLR
//!   builder can compress blocks without materialising the matrix — see
//!   [`source`];
//! * Bessel and Hankel functions (`J0`, `J1`, `Y0`, `Y1`, `H0^(1)`,
//!   `H1^(1)`) needed by the Helmholtz boundary integral equation of
//!   Section IV-C — see [`hankel`].

pub mod hankel;
pub mod kernels;
pub mod source;

pub use kernels::{ExponentialKernel, GaussianKernel, MaternKernel, RpyKernel, ScalarKernel};
pub use source::{RpyMatrixSource, ScalarKernelSource};
