//! Entry sources that expose kernel matrices to the HODLR builder.

use crate::kernels::{RpyKernel, ScalarKernel};
use hodlr_compress::MatrixEntrySource;
use hodlr_tree::PointCloud;

/// The `n x n` kernel matrix `K_{ij} = K(y_i, y_j) + shift * delta_{ij}`
/// over a point cloud, evaluated lazily.
///
/// The optional diagonal shift (a "nugget" or regularisation term) is what
/// kernel methods add in practice and also keeps the benchmark systems well
/// conditioned.
pub struct ScalarKernelSource<'a, K: ScalarKernel> {
    kernel: K,
    points: &'a PointCloud,
    shift: f64,
}

impl<'a, K: ScalarKernel> ScalarKernelSource<'a, K> {
    /// A kernel matrix without diagonal shift.
    pub fn new(kernel: K, points: &'a PointCloud) -> Self {
        Self::with_shift(kernel, points, 0.0)
    }

    /// A kernel matrix with diagonal shift `shift`.
    pub fn with_shift(kernel: K, points: &'a PointCloud, shift: f64) -> Self {
        ScalarKernelSource {
            kernel,
            points,
            shift,
        }
    }
}

impl<K: ScalarKernel> MatrixEntrySource<f64> for ScalarKernelSource<'_, K> {
    fn nrows(&self) -> usize {
        self.points.len()
    }

    fn ncols(&self) -> usize {
        self.points.len()
    }

    fn entry(&self, i: usize, j: usize) -> f64 {
        let v = self.kernel.eval(self.points.point(i), self.points.point(j));
        if i == j {
            v + self.shift
        } else {
            v
        }
    }
}

/// The `3n x 3n` RPY kernel matrix over `n` particles in 3-D
/// (Section IV-A / Table III of the paper): row `3i + a` and column `3j + b`
/// address component `(a, b)` of the mobility block for the particle pair
/// `(i, j)`.
pub struct RpyMatrixSource<'a> {
    kernel: RpyKernel,
    points: &'a PointCloud,
}

impl<'a> RpyMatrixSource<'a> {
    /// Wrap an RPY kernel and a 3-D point cloud.
    ///
    /// # Panics
    /// Panics if the cloud is not 3-dimensional.
    pub fn new(kernel: RpyKernel, points: &'a PointCloud) -> Self {
        assert_eq!(points.dim(), 3, "the RPY kernel is defined over 3-D points");
        RpyMatrixSource { kernel, points }
    }

    /// Number of particles (the matrix size is three times this).
    pub fn num_particles(&self) -> usize {
        self.points.len()
    }
}

impl MatrixEntrySource<f64> for RpyMatrixSource<'_> {
    fn nrows(&self) -> usize {
        3 * self.points.len()
    }

    fn ncols(&self) -> usize {
        3 * self.points.len()
    }

    fn entry(&self, row: usize, col: usize) -> f64 {
        let (i, a) = (row / 3, row % 3);
        let (j, b) = (col / 3, col % 3);
        self.kernel
            .entry(self.points.point(i), self.points.point(j), a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::GaussianKernel;
    use hodlr_tree::{partition_points, uniform_cube_points};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scalar_kernel_source_is_symmetric_with_shift_on_diagonal() {
        let mut rng = StdRng::seed_from_u64(3);
        let cloud = uniform_cube_points(&mut rng, 30, 2);
        let src = ScalarKernelSource::with_shift(GaussianKernel { length_scale: 0.5 }, &cloud, 2.0);
        assert_eq!(src.nrows(), 30);
        for i in 0..5 {
            for j in 0..5 {
                assert!((src.entry(i, j) - src.entry(j, i)).abs() < 1e-15);
            }
            assert!(src.entry(i, i) >= 2.0);
        }
    }

    #[test]
    fn rpy_source_shape_and_symmetry() {
        let mut rng = StdRng::seed_from_u64(4);
        let cloud = uniform_cube_points(&mut rng, 10, 3);
        let kernel = RpyKernel::paper_benchmark(cloud.min_distance());
        let src = RpyMatrixSource::new(kernel, &cloud);
        assert_eq!(src.nrows(), 30);
        assert_eq!(src.ncols(), 30);
        assert_eq!(src.num_particles(), 10);
        for r in 0..12 {
            for c in 0..12 {
                assert!((src.entry(r, c) - src.entry(c, r)).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn kernel_matrix_blocks_are_compressible_after_spatial_ordering() {
        // The whole point of the HODLR approach: off-diagonal blocks of a
        // kernel matrix over spatially ordered points have low numerical
        // rank.
        let mut rng = StdRng::seed_from_u64(5);
        let cloud = uniform_cube_points(&mut rng, 256, 3);
        let part = partition_points(&cloud, 32).unwrap();
        let src =
            ScalarKernelSource::with_shift(GaussianKernel { length_scale: 3.0 }, &part.points, 1.0);
        // Compress the level-1 off-diagonal block (first half vs second half).
        let half = part.tree.range(2).len();
        let rest = 256 - half;
        let block = hodlr_compress::ClosureSource::new(half, rest, |i, j| src.entry(i, half + j));
        let lr =
            hodlr_compress::aca_compress(&block, 1e-6, None, hodlr_compress::AcaPivoting::Rook);
        assert!(lr.rank() < 64, "rank {} is not low", lr.rank());
    }

    #[test]
    #[should_panic(expected = "3-D")]
    fn rpy_source_requires_3d_points() {
        let mut rng = StdRng::seed_from_u64(6);
        let cloud = uniform_cube_points(&mut rng, 5, 2);
        let _ = RpyMatrixSource::new(RpyKernel::paper_benchmark(0.1), &cloud);
    }
}
