//! Bessel functions of the first and second kind and Hankel functions of
//! the first kind, for real positive arguments.
//!
//! The Helmholtz fundamental solution in 2-D is
//! `phi_kappa(x) = (i/4) H0^(1)(kappa |x|)` (Section IV-C), and the
//! double-layer kernel needs `H1^(1)` as well.  Below the branch point the
//! ascending power series are used (machine precision); above it the
//! classical Hankel asymptotic expansions (Abramowitz & Stegun 9.2) with
//! absolute error around `1e-8`.  The achievable boundary-integral-equation
//! residual is therefore capped near `1e-8`, which is noted in
//! EXPERIMENTS.md.

use hodlr_la::Complex64;

const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
/// Number of terms of the ascending series used below the branch point;
/// the series has converged to machine precision well before this for
/// arguments up to 8.
const SERIES_TERMS: usize = 40;

/// Ascending power series for `J_0`, used for `|x| < 8` (absolute error
/// below `1e-14` on that range).
fn j0_series(x: f64) -> f64 {
    let q = x * x / 4.0;
    let mut term = 1.0;
    let mut sum = 1.0;
    for k in 1..SERIES_TERMS {
        term *= -q / ((k * k) as f64);
        sum += term;
    }
    sum
}

fn j1_series(x: f64) -> f64 {
    let q = x * x / 4.0;
    let mut term = x / 2.0;
    let mut sum = term;
    for k in 1..SERIES_TERMS {
        term *= -q / ((k * (k + 1)) as f64);
        sum += term;
    }
    sum
}

fn y0_series(x: f64) -> f64 {
    let q = x * x / 4.0;
    let mut term = 1.0;
    let mut harmonic = 0.0;
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..SERIES_TERMS {
        term *= q / ((k * k) as f64);
        harmonic += 1.0 / k as f64;
        sum += sign * harmonic * term;
        sign = -sign;
    }
    let two_over_pi = 2.0 / std::f64::consts::PI;
    two_over_pi * (((x / 2.0).ln() + EULER_GAMMA) * j0_series(x) + sum)
}

fn y1_series(x: f64) -> f64 {
    let pi = std::f64::consts::PI;
    let q = x * x / 4.0;
    let mut term = 1.0; // (-q)^k / (k! (k+1)!) at k = 0
    let mut psi1 = -EULER_GAMMA; // psi(k + 1)
    let mut psi2 = -EULER_GAMMA + 1.0; // psi(k + 2)
    let mut sum = 0.0;
    for k in 0..SERIES_TERMS {
        sum += (psi1 + psi2) * term;
        term *= -q / (((k + 1) * (k + 2)) as f64);
        psi1 += 1.0 / (k + 1) as f64;
        psi2 += 1.0 / (k + 2) as f64;
    }
    2.0 / pi * (x / 2.0).ln() * j1_series(x) - 2.0 / (pi * x) - x / (2.0 * pi) * sum
}

/// Bessel function of the first kind, order zero, `J_0(x)`.
pub fn bessel_j0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 8.0 {
        j0_series(ax)
    } else {
        let z = 8.0 / ax;
        let y = z * z;
        let xx = ax - 0.785398164;
        let p1 = 1.0
            + y * (-0.1098628627e-2
                + y * (0.2734510407e-4 + y * (-0.2073370639e-5 + y * 0.2093887211e-6)));
        let p2 = -0.1562499995e-1
            + y * (0.1430488765e-3
                + y * (-0.6911147651e-5 + y * (0.7621095161e-6 + y * (-0.934935152e-7))));
        (std::f64::consts::FRAC_2_PI / ax).sqrt() * (xx.cos() * p1 - z * xx.sin() * p2)
    }
}

/// Bessel function of the first kind, order one, `J_1(x)`.
pub fn bessel_j1(x: f64) -> f64 {
    let ax = x.abs();
    let ans = if ax < 8.0 {
        j1_series(ax)
    } else {
        let z = 8.0 / ax;
        let y = z * z;
        let xx = ax - 2.356194491;
        let p1 = 1.0
            + y * (0.183105e-2
                + y * (-0.3516396496e-4 + y * (0.2457520174e-5 + y * (-0.240337019e-6))));
        let p2 = 0.04687499995
            + y * (-0.2002690873e-3
                + y * (0.8449199096e-5 + y * (-0.88228987e-6 + y * 0.105787412e-6)));
        (std::f64::consts::FRAC_2_PI / ax).sqrt() * (xx.cos() * p1 - z * xx.sin() * p2)
    };
    if x < 0.0 {
        -ans
    } else {
        ans
    }
}

/// Bessel function of the second kind, order zero, `Y_0(x)` for `x > 0`.
pub fn bessel_y0(x: f64) -> f64 {
    assert!(x > 0.0, "Y_0 is only defined for positive arguments");
    if x < 8.0 {
        y0_series(x)
    } else {
        let z = 8.0 / x;
        let y = z * z;
        let xx = x - 0.785398164;
        let p1 = 1.0
            + y * (-0.1098628627e-2
                + y * (0.2734510407e-4 + y * (-0.2073370639e-5 + y * 0.2093887211e-6)));
        let p2 = -0.1562499995e-1
            + y * (0.1430488765e-3
                + y * (-0.6911147651e-5 + y * (0.7621095161e-6 + y * (-0.934935152e-7))));
        (std::f64::consts::FRAC_2_PI / x).sqrt() * (xx.sin() * p1 + z * xx.cos() * p2)
    }
}

/// Bessel function of the second kind, order one, `Y_1(x)` for `x > 0`.
pub fn bessel_y1(x: f64) -> f64 {
    assert!(x > 0.0, "Y_1 is only defined for positive arguments");
    if x < 8.0 {
        y1_series(x)
    } else {
        let z = 8.0 / x;
        let y = z * z;
        let xx = x - 2.356194491;
        let p1 = 1.0
            + y * (0.183105e-2
                + y * (-0.3516396496e-4 + y * (0.2457520174e-5 + y * (-0.240337019e-6))));
        let p2 = 0.04687499995
            + y * (-0.2002690873e-3
                + y * (0.8449199096e-5 + y * (-0.88228987e-6 + y * 0.105787412e-6)));
        (std::f64::consts::FRAC_2_PI / x).sqrt() * (xx.sin() * p1 + z * xx.cos() * p2)
    }
}

/// Hankel function of the first kind, order zero:
/// `H_0^(1)(x) = J_0(x) + i Y_0(x)`.
pub fn hankel1_0(x: f64) -> Complex64 {
    Complex64::new(bessel_j0(x), bessel_y0(x))
}

/// Hankel function of the first kind, order one:
/// `H_1^(1)(x) = J_1(x) + i Y_1(x)`.
pub fn hankel1_1(x: f64) -> Complex64 {
    Complex64::new(bessel_j1(x), bessel_y1(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from Abramowitz & Stegun tables.
    #[test]
    fn matches_tabulated_values() {
        let cases = [
            (bessel_j0(1.0), 0.765197686557967),
            (bessel_j0(5.0), -0.177596771314338),
            (bessel_j0(10.0), -0.245935764451348),
            (bessel_j1(1.0), 0.440050585744934),
            (bessel_j1(5.0), -0.327579137591465),
            (bessel_y0(1.0), 0.088256964215677),
            (bessel_y0(10.0), 0.055671167283599),
            (bessel_y1(1.0), -0.781212821300289),
            (bessel_y1(5.0), 0.147863143391227),
        ];
        for (got, expect) in cases {
            assert!((got - expect).abs() < 1e-7, "got {got}, expected {expect}");
        }
    }

    #[test]
    fn hankel_combines_real_and_imaginary_parts() {
        let h0 = hankel1_0(2.5);
        assert!((h0.re - bessel_j0(2.5)).abs() < 1e-15);
        assert!((h0.im - bessel_y0(2.5)).abs() < 1e-15);
        let h1 = hankel1_1(0.3);
        assert!((h1.re - bessel_j1(0.3)).abs() < 1e-15);
        assert!((h1.im - bessel_y1(0.3)).abs() < 1e-15);
    }

    #[test]
    fn small_argument_limits() {
        // J0 -> 1, J1 -> x/2, Y0 -> (2/pi)(ln(x/2) + gamma) as x -> 0.
        assert!((bessel_j0(1e-6) - 1.0).abs() < 1e-12);
        assert!((bessel_j1(1e-6) - 5e-7).abs() < 1e-15);
        let x = 1e-4_f64;
        let euler_gamma = 0.5772156649015329;
        let y0_limit = 2.0 / std::f64::consts::PI * ((x / 2.0).ln() + euler_gamma);
        assert!((bessel_y0(x) - y0_limit).abs() < 1e-7);
    }

    /// The Wronskian identity J1(x) Y0(x) - J0(x) Y1(x) = 2 / (pi x)
    /// ties all four functions together; swept over a dense grid of the
    /// argument range instead of proptest's random sampling (no crates.io
    /// access in the build container).
    #[test]
    fn wronskian_identity() {
        for k in 0..1200 {
            let x = 0.05 + (60.0 - 0.05) * k as f64 / 1199.0;
            let lhs = bessel_j1(x) * bessel_y0(x) - bessel_j0(x) * bessel_y1(x);
            let rhs = 2.0 / (std::f64::consts::PI * x);
            assert!(
                (lhs - rhs).abs() < 1e-6 * (1.0 + rhs.abs()),
                "x = {x}: {lhs} vs {rhs}"
            );
        }
    }

    /// |H0^(1)| decays roughly like sqrt(2/(pi x)) for large arguments.
    #[test]
    fn hankel_magnitude_decays() {
        for k in 0..400 {
            let x = 10.0 + (200.0 - 10.0) * k as f64 / 399.0;
            let h = hankel1_0(x);
            let expected = (2.0 / (std::f64::consts::PI * x)).sqrt();
            assert!(
                (h.modulus() - expected).abs() < 0.05 * expected,
                "x = {x}: |H0| = {}, expected about {expected}",
                h.modulus()
            );
        }
    }
}
