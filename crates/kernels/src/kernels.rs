//! Kernel functions: the RPY tensor (Eq. 18) and standard scalar kernels.

/// A translation-invariant scalar kernel `K(x, y)` over points in `R^d`.
pub trait ScalarKernel: Sync {
    /// Evaluate the kernel at a pair of points.
    fn eval(&self, x: &[f64], y: &[f64]) -> f64;

    /// Value on the diagonal (`x == y`); defaults to `eval(x, x)`.
    fn diagonal(&self, x: &[f64]) -> f64 {
        self.eval(x, x)
    }
}

fn dist(x: &[f64], y: &[f64]) -> f64 {
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// The Gaussian (squared-exponential) kernel
/// `K(x, y) = exp(-|x - y|^2 / (2 l^2))`, ubiquitous in kernel methods.
#[derive(Copy, Clone, Debug)]
pub struct GaussianKernel {
    /// Length scale `l`.
    pub length_scale: f64,
}

impl ScalarKernel for GaussianKernel {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        let r = dist(x, y);
        (-0.5 * (r / self.length_scale).powi(2)).exp()
    }
}

/// The exponential kernel `K(x, y) = exp(-|x - y| / l)` (Matérn-1/2).
#[derive(Copy, Clone, Debug)]
pub struct ExponentialKernel {
    /// Length scale `l`.
    pub length_scale: f64,
}

impl ScalarKernel for ExponentialKernel {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        (-dist(x, y) / self.length_scale).exp()
    }
}

/// The Matérn-3/2 kernel
/// `K(x, y) = (1 + sqrt(3) r / l) exp(-sqrt(3) r / l)`, the covariance model
/// of the data-assimilation applications cited in the introduction.
#[derive(Copy, Clone, Debug)]
pub struct MaternKernel {
    /// Length scale `l`.
    pub length_scale: f64,
}

impl ScalarKernel for MaternKernel {
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        let s = 3.0_f64.sqrt() * dist(x, y) / self.length_scale;
        (1.0 + s) * (-s).exp()
    }
}

/// The Rotne–Prager–Yamakawa tensor kernel of Eq. (18), which models
/// hydrodynamic interactions between spherical particles of radius `a` in
/// Brownian-dynamics simulations.
///
/// For two particles at `y_i`, `y_j` with `r = y_i - y_j` the kernel value
/// is a `3 x 3` matrix; [`RpyKernel::block`] evaluates it and
/// [`RpyKernel::entry`] addresses a single component, so the full kernel
/// matrix over `n` particles has size `3n x 3n`.
#[derive(Copy, Clone, Debug)]
pub struct RpyKernel {
    /// Boltzmann constant times temperature (`kT`; 1 in the benchmark).
    pub kt: f64,
    /// Fluid viscosity (`eta`; 1 in the benchmark).
    pub eta: f64,
    /// Particle radius (`a`; half the minimum pairwise distance in the
    /// benchmark, so the `r < 2a` branch is exercised only on the diagonal).
    pub radius: f64,
}

impl RpyKernel {
    /// The benchmark configuration of Section IV-A: `k = T = eta = 1` and
    /// `a = r_min / 2`.
    pub fn paper_benchmark(min_distance: f64) -> Self {
        RpyKernel {
            kt: 1.0,
            eta: 1.0,
            radius: min_distance / 2.0,
        }
    }

    /// Evaluate the `3 x 3` block for a pair of 3-D points (Eq. 18).
    pub fn block(&self, yi: &[f64], yj: &[f64]) -> [[f64; 3]; 3] {
        let pi = std::f64::consts::PI;
        let a = self.radius;
        let r_vec = [yi[0] - yj[0], yi[1] - yj[1], yi[2] - yj[2]];
        let r = (r_vec[0] * r_vec[0] + r_vec[1] * r_vec[1] + r_vec[2] * r_vec[2]).sqrt();
        let mut out = [[0.0; 3]; 3];
        if r >= 2.0 * a {
            let c = self.kt / (8.0 * pi * self.eta * r);
            let r2 = r * r;
            for (i, row) in out.iter_mut().enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    let delta = if i == j { 1.0 } else { 0.0 };
                    let rr = r_vec[i] * r_vec[j] / r2;
                    *v = c * (delta + rr + 2.0 * a * a / (3.0 * r2) * (delta - 3.0 * rr));
                }
            }
        } else {
            let c = self.kt / (6.0 * pi * self.eta * a);
            if r == 0.0 {
                for (i, row) in out.iter_mut().enumerate() {
                    row[i] = c;
                }
            } else {
                for (i, row) in out.iter_mut().enumerate() {
                    for (j, v) in row.iter_mut().enumerate() {
                        let delta = if i == j { 1.0 } else { 0.0 };
                        let rr = r_vec[i] * r_vec[j] / r;
                        *v = c * ((1.0 - 9.0 / 32.0 * r / a) * delta + 3.0 / (32.0 * a) * rr);
                    }
                }
            }
        }
        out
    }

    /// Entry `(row, col)` of the `3n x 3n` kernel matrix: `row = 3 i + a`,
    /// `col = 3 j + b` addresses component `(a, b)` of the block for the
    /// particle pair `(i, j)`.
    pub fn entry(&self, yi: &[f64], yj: &[f64], comp_row: usize, comp_col: usize) -> f64 {
        self.block(yi, yj)[comp_row][comp_col]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_and_exponential_basics() {
        let g = GaussianKernel { length_scale: 2.0 };
        assert!((g.eval(&[0.0, 0.0], &[0.0, 0.0]) - 1.0).abs() < 1e-15);
        assert!((g.eval(&[0.0], &[2.0]) - (-0.5_f64).exp()).abs() < 1e-15);

        let e = ExponentialKernel { length_scale: 1.0 };
        assert!((e.eval(&[1.0, 0.0], &[0.0, 0.0]) - (-1.0_f64).exp()).abs() < 1e-15);
        assert!(e.eval(&[0.0], &[5.0]) < e.eval(&[0.0], &[1.0]));
    }

    #[test]
    fn matern_decreases_with_distance_and_is_one_at_zero() {
        let m = MaternKernel { length_scale: 1.5 };
        assert!((m.diagonal(&[0.3, 0.7]) - 1.0).abs() < 1e-15);
        let v1 = m.eval(&[0.0], &[0.5]);
        let v2 = m.eval(&[0.0], &[1.5]);
        assert!(v1 > v2 && v2 > 0.0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn rpy_block_is_symmetric_and_positive_on_diagonal() {
        let k = RpyKernel {
            kt: 1.0,
            eta: 1.0,
            radius: 0.01,
        };
        let yi = [0.1, 0.2, 0.3];
        let yj = [0.4, -0.1, 0.2];
        let b = k.block(&yi, &yj);
        // Symmetry of each off-diagonal block: B(y_i, y_j) = B(y_j, y_i)^T,
        // and each block is itself symmetric because it is built from
        // delta_ij and r_i r_j.
        let b_t = k.block(&yj, &yi);
        for i in 0..3 {
            for j in 0..3 {
                assert!((b[i][j] - b[j][i]).abs() < 1e-15);
                assert!((b[i][j] - b_t[j][i]).abs() < 1e-15);
            }
        }
        // Self block is a positive multiple of the identity.
        let s = k.block(&yi, &yi);
        for i in 0..3 {
            for j in 0..3 {
                if i == j {
                    assert!(s[i][j] > 0.0);
                } else {
                    assert_eq!(s[i][j], 0.0);
                }
            }
        }
    }

    #[test]
    fn rpy_far_field_decays_like_one_over_r() {
        let k = RpyKernel {
            kt: 1.0,
            eta: 1.0,
            radius: 0.001,
        };
        let near = k.block(&[0.0, 0.0, 0.0], &[1.0, 0.0, 0.0])[1][1];
        let far = k.block(&[0.0, 0.0, 0.0], &[10.0, 0.0, 0.0])[1][1];
        assert!((near / far - 10.0).abs() < 0.2, "ratio {}", near / far);
    }

    #[test]
    fn rpy_near_field_branch_is_continuous_at_r_equals_2a() {
        let a = 0.1;
        let k = RpyKernel {
            kt: 1.0,
            eta: 1.0,
            radius: a,
        };
        let just_inside = k.block(&[0.0, 0.0, 0.0], &[2.0 * a - 1e-9, 0.0, 0.0]);
        let just_outside = k.block(&[0.0, 0.0, 0.0], &[2.0 * a + 1e-9, 0.0, 0.0]);
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (just_inside[i][j] - just_outside[i][j]).abs() < 1e-6,
                    "discontinuity at component ({i},{j})"
                );
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn rpy_entry_addresses_block_components() {
        let k = RpyKernel {
            kt: 1.0,
            eta: 1.0,
            radius: 0.05,
        };
        let yi = [0.0, 0.1, 0.2];
        let yj = [0.5, 0.4, 0.3];
        let block = k.block(&yi, &yj);
        for a in 0..3 {
            for b in 0..3 {
                assert_eq!(k.entry(&yi, &yj, a, b), block[a][b]);
            }
        }
    }
}
