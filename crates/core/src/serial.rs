//! The non-recursive, level-by-level factorization and solve
//! (Algorithms 1 and 2 of the paper) — the "Serial HODLR Solver" column of
//! the evaluation tables.
//!
//! The factorization walks the tree bottom-up.  At the leaf level every
//! diagonal block is LU-factorized in place and applied to its rows of
//! `Ybig` (which starts as a copy of `Ubig`).  At every internal level the
//! small coupling matrices `K_gamma` (Eq. 11) are formed from the already
//! computed `Y` bases, factorized, and used to update the columns of `Ybig`
//! belonging to shallower levels (Eqs. 13–14).  The solve stage replays the
//! same sweep on a right-hand side (Eqs. 15–16).

use crate::layout::LevelLayout;
use crate::matrix::HodlrMatrix;
use hodlr_la::{gemm, DenseMatrix, HodlrError, LuFactor, MatRef, Op, Scalar};
use hodlr_tree::ClusterTree;

/// The output of Algorithm 1: the transformed bases `Ybig`, the (copied)
/// right bases `Vbig`, and the stored LU factorizations of every leaf
/// diagonal block and every coupling matrix `K_gamma`.
#[derive(Clone, Debug)]
pub struct SerialFactorization<T: Scalar> {
    tree: ClusterTree,
    layout: LevelLayout,
    ybig: DenseMatrix<T>,
    vbig: DenseMatrix<T>,
    diag_lu: Vec<LuFactor<T>>,
    /// `k_lu[l]` holds, for every node at level `l` (in node order), the LU
    /// factorization of its coupling matrix `K` (levels `0..L`).
    k_lu: Vec<Vec<LuFactor<T>>>,
}

impl<T: Scalar> HodlrMatrix<T> {
    /// Factorize the matrix with Algorithm 1 (sequential).
    ///
    /// # Errors
    /// Returns [`HodlrError::SingularPivot`] naming the leaf diagonal block
    /// or coupling matrix that is numerically singular (the invertibility
    /// assumptions of Theorem 1).
    pub fn factorize_serial(&self) -> Result<SerialFactorization<T>, HodlrError> {
        let tree = self.tree().clone();
        let layout = self.layout().clone();
        let n = self.n();
        let total_cols = layout.total_cols();
        let levels = tree.levels();

        // Ybig starts as a copy of Ubig (the paper overwrites Ubig in place;
        // we keep the original matrix intact so residuals can be computed).
        let mut ybig = self.ubig().clone();
        let vbig = self.vbig().clone();

        // --- leaf level: factorize D_alpha and solve its rows of Ybig ------
        let mut diag_lu = Vec::with_capacity(tree.num_leaves());
        for (leaf_idx, leaf) in tree.leaves().enumerate() {
            let range = tree.range(leaf);
            let lu = LuFactor::new(self.diag_block(leaf_idx))
                .map_err(|e| e.into_hodlr(format!("diagonal block of leaf {leaf_idx}")))?;
            if total_cols > 0 {
                let block = ybig.block_mut(range.start, 0, range.len(), total_cols);
                lu.solve_in_place(block);
            }
            diag_lu.push(lu);
        }

        // --- internal levels, deepest first -------------------------------
        let mut k_lu: Vec<Vec<LuFactor<T>>> = vec![Vec::new(); levels];
        for level in (0..levels).rev() {
            let child_level = level + 1;
            let w = layout.width(child_level);
            let prefix = layout.prefix_cols(level);
            let child_cols = layout.col_range(child_level);
            let mut level_factors = Vec::with_capacity(1 << level);

            for gamma in tree.level_nodes(level) {
                let (alpha, beta) = tree.children(gamma).expect("internal node");
                let ra = tree.range(alpha);
                let rb = tree.range(beta);

                if w == 0 {
                    // Zero-rank level: the coupling matrix is empty and the
                    // update is a no-op; store a trivial factorization.
                    let empty = LuFactor::new(&DenseMatrix::identity(0))
                        .expect("empty factorization cannot fail");
                    level_factors.push(empty);
                    continue;
                }

                // T_alpha = V_alpha^* Y_alpha and T_beta = V_beta^* Y_beta.
                let v_a = self.vbig().block(ra.start, child_cols.start, ra.len(), w);
                let v_b = self.vbig().block(rb.start, child_cols.start, rb.len(), w);
                let y_a = ybig
                    .block(ra.start, child_cols.start, ra.len(), w)
                    .to_owned();
                let y_b = ybig
                    .block(rb.start, child_cols.start, rb.len(), w)
                    .to_owned();

                let k = build_coupling_matrix(&v_a, &v_b, &y_a, &y_b);
                let k_fact = LuFactor::from_matrix(k)
                    .map_err(|e| e.into_hodlr(format!("coupling matrix of node {gamma}")))?;

                if prefix > 0 {
                    // Right-hand sides (13): stack V_alpha^* Ybig(I_alpha, 1:prefix)
                    // over V_beta^* Ybig(I_beta, 1:prefix).
                    let mut rhs = DenseMatrix::<T>::zeros(2 * w, prefix);
                    {
                        let yb_a = ybig.block(ra.start, 0, ra.len(), prefix);
                        let mut top = rhs.block_mut(0, 0, w, prefix);
                        gemm(
                            T::one(),
                            v_a,
                            Op::ConjTrans,
                            yb_a,
                            Op::None,
                            T::zero(),
                            top.reborrow(),
                        );
                    }
                    {
                        let yb_b = ybig.block(rb.start, 0, rb.len(), prefix);
                        let mut bottom = rhs.block_mut(w, 0, w, prefix);
                        gemm(
                            T::one(),
                            v_b,
                            Op::ConjTrans,
                            yb_b,
                            Op::None,
                            T::zero(),
                            bottom.reborrow(),
                        );
                    }
                    k_fact.solve_in_place(rhs.as_mut());

                    // Update (14): Ybig(I_gamma, 1:prefix) -= [Y_a W_a; Y_b W_b].
                    let w_a = rhs.block(0, 0, w, prefix);
                    let w_b = rhs.block(w, 0, w, prefix);
                    let mut upd_a = ybig.block_mut(ra.start, 0, ra.len(), prefix);
                    gemm(
                        -T::one(),
                        y_a.as_ref(),
                        Op::None,
                        w_a,
                        Op::None,
                        T::one(),
                        upd_a.reborrow(),
                    );
                    let mut upd_b = ybig.block_mut(rb.start, 0, rb.len(), prefix);
                    gemm(
                        -T::one(),
                        y_b.as_ref(),
                        Op::None,
                        w_b,
                        Op::None,
                        T::one(),
                        upd_b.reborrow(),
                    );
                }

                level_factors.push(k_fact);
            }
            k_lu[level] = level_factors;
        }

        debug_assert_eq!(ybig.rows(), n);
        Ok(SerialFactorization {
            tree,
            layout,
            ybig,
            vbig,
            diag_lu,
            k_lu,
        })
    }
}

/// Assemble `K = [[V_a^* Y_a, I], [I, V_b^* Y_b]]` (Eq. 11).
///
/// Shared with the symmetric path ([`crate::symmetric`]): when the matrix is
/// Hermitian with shared bases, `K` itself is Hermitian and is handed to the
/// symmetric kernels instead of LU.
pub(crate) fn build_coupling_matrix<T: Scalar>(
    v_a: &MatRef<'_, T>,
    v_b: &MatRef<'_, T>,
    y_a: &DenseMatrix<T>,
    y_b: &DenseMatrix<T>,
) -> DenseMatrix<T> {
    let w = y_a.cols();
    let mut k = DenseMatrix::<T>::zeros(2 * w, 2 * w);
    {
        let mut top_left = k.block_mut(0, 0, w, w);
        gemm(
            T::one(),
            *v_a,
            Op::ConjTrans,
            y_a.as_ref(),
            Op::None,
            T::zero(),
            top_left.reborrow(),
        );
    }
    {
        let mut bottom_right = k.block_mut(w, w, w, w);
        gemm(
            T::one(),
            *v_b,
            Op::ConjTrans,
            y_b.as_ref(),
            Op::None,
            T::zero(),
            bottom_right.reborrow(),
        );
    }
    for i in 0..w {
        k[(i, w + i)] = T::one();
        k[(w + i, i)] = T::one();
    }
    k
}

impl<T: Scalar> SerialFactorization<T> {
    /// The transformed bases `Ybig` (Algorithm 1's main output).
    pub fn ybig(&self) -> &DenseMatrix<T> {
        &self.ybig
    }

    /// The cluster tree the factorization was computed over.
    pub fn tree(&self) -> &ClusterTree {
        &self.tree
    }

    /// The column layout shared with the original matrix.
    pub fn layout(&self) -> &LevelLayout {
        &self.layout
    }

    /// Solve `A x = b` for a single right-hand side (Algorithm 2).
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let b_mat = DenseMatrix::from_col_major(b.len(), 1, b.to_vec());
        self.solve_matrix(&b_mat).into_data()
    }

    /// Blocked multi-RHS solve: pack `rhs` into one `N x k` matrix and run
    /// a single Algorithm-2 sweep, so every level processes all right-hand
    /// sides in one gemm per node instead of one sweep per RHS.
    ///
    /// # Panics
    /// Panics if any right-hand side has the wrong length.
    pub fn solve_block(&self, rhs: &[impl AsRef<[T]>]) -> Vec<Vec<T>> {
        let n = self.tree.n();
        let k = rhs.len();
        let mut b = DenseMatrix::<T>::zeros(n, k);
        for (j, col) in rhs.iter().enumerate() {
            let col = col.as_ref();
            assert_eq!(col.len(), n, "right-hand side {j} has the wrong length");
            b.col_mut(j).copy_from_slice(col);
        }
        let x = self.solve_matrix(&b);
        (0..k).map(|j| x.col(j).to_vec()).collect()
    }

    /// Solve `A X = B` for multiple right-hand sides (Algorithm 2).
    ///
    /// # Panics
    /// Panics if `b` has the wrong number of rows.
    pub fn solve_matrix(&self, b: &DenseMatrix<T>) -> DenseMatrix<T> {
        assert_eq!(
            b.rows(),
            self.tree.n(),
            "right-hand side has the wrong row count"
        );
        let nrhs = b.cols();
        let mut x = b.clone();
        let levels = self.tree.levels();

        // Leaf sweep (line 3 of Algorithm 2).
        for (leaf_idx, leaf) in self.tree.leaves().enumerate() {
            let range = self.tree.range(leaf);
            let block = x.block_mut(range.start, 0, range.len(), nrhs);
            self.diag_lu[leaf_idx].solve_in_place(block);
        }

        // Level sweep, deepest first (lines 5–10).
        for level in (0..levels).rev() {
            let child_level = level + 1;
            let w = self.layout.width(child_level);
            if w == 0 {
                continue;
            }
            let child_cols = self.layout.col_range(child_level);
            for (node_idx, gamma) in self.tree.level_nodes(level).enumerate() {
                let (alpha, beta) = self.tree.children(gamma).expect("internal node");
                let ra = self.tree.range(alpha);
                let rb = self.tree.range(beta);

                // w_rhs = [V_a^* x_a; V_b^* x_b] (Eq. 15).
                let v_a = self.vbig.block(ra.start, child_cols.start, ra.len(), w);
                let v_b = self.vbig.block(rb.start, child_cols.start, rb.len(), w);
                let mut rhs = DenseMatrix::<T>::zeros(2 * w, nrhs);
                {
                    let x_a = x.block(ra.start, 0, ra.len(), nrhs);
                    let mut top = rhs.block_mut(0, 0, w, nrhs);
                    gemm(
                        T::one(),
                        v_a,
                        Op::ConjTrans,
                        x_a,
                        Op::None,
                        T::zero(),
                        top.reborrow(),
                    );
                }
                {
                    let x_b = x.block(rb.start, 0, rb.len(), nrhs);
                    let mut bottom = rhs.block_mut(w, 0, w, nrhs);
                    gemm(
                        T::one(),
                        v_b,
                        Op::ConjTrans,
                        x_b,
                        Op::None,
                        T::zero(),
                        bottom.reborrow(),
                    );
                }
                self.k_lu[level][node_idx].solve_in_place(rhs.as_mut());

                // x(I_gamma) -= [Y_a w_a; Y_b w_b] (Eq. 16).
                let y_a = self.ybig.block(ra.start, child_cols.start, ra.len(), w);
                let y_b = self.ybig.block(rb.start, child_cols.start, rb.len(), w);
                let w_a = rhs.block(0, 0, w, nrhs).to_owned();
                let w_b = rhs.block(w, 0, w, nrhs).to_owned();
                let mut x_a = x.block_mut(ra.start, 0, ra.len(), nrhs);
                gemm(
                    -T::one(),
                    y_a,
                    Op::None,
                    w_a.as_ref(),
                    Op::None,
                    T::one(),
                    x_a.reborrow(),
                );
                let mut x_b = x.block_mut(rb.start, 0, rb.len(), nrhs);
                gemm(
                    -T::one(),
                    y_b,
                    Op::None,
                    w_b.as_ref(),
                    Op::None,
                    T::one(),
                    x_b.reborrow(),
                );
            }
        }
        x
    }

    /// Log-determinant of the factorized matrix via the product form of
    /// Section III-E (a): `A = A^(L+1) ... A^(1)`, where the determinant of
    /// every leaf block comes from its LU factors and the determinant of
    /// every 2x2 coupling block equals `(-1)^w det(K_gamma)` (Sylvester /
    /// Schur-complement identity).
    ///
    /// Returns `(log|det(A)|, sign)` where `sign` is a unit-modulus scalar.
    /// The per-factor accumulation is the shared
    /// [`log_det_from_parts`](hodlr_la::log_det_from_parts), and the factor
    /// order here (leaves first, then coupling levels from the top split
    /// down) is mirrored exactly by
    /// [`GpuSolver::log_det`](crate::GpuSolver::log_det) — the two backends
    /// agree bitwise.
    pub fn log_det(&self) -> (T::Real, T) {
        let mut log_abs = T::Real::zero();
        let mut sign = T::one();
        for lu in &self.diag_lu {
            let (la, s) = lu.log_det();
            log_abs += la;
            sign *= s;
        }
        for (level, factors) in self.k_lu.iter().enumerate() {
            let w = if level < self.layout.levels() {
                self.layout.width(level + 1)
            } else {
                0
            };
            for lu in factors {
                if lu.order() == 0 {
                    continue;
                }
                let (la, s) = lu.log_det();
                log_abs += la;
                sign *= s;
                if w % 2 == 1 {
                    sign = -sign;
                }
            }
        }
        (log_abs, sign)
    }

    /// Storage used by the factorization in scalar entries (the `mem`
    /// column): the transformed bases, the right bases, the leaf LU factors
    /// and the coupling-matrix LU factors.
    pub fn storage_entries(&self) -> usize {
        let bases = 2 * self.ybig.rows() * self.ybig.cols();
        let diags: usize = self.diag_lu.iter().map(|f| f.order() * f.order()).sum();
        let ks: usize = self
            .k_lu
            .iter()
            .flat_map(|level| level.iter().map(|f| f.order() * f.order()))
            .sum();
        bases + diags + ks
    }

    /// Storage in GiB.
    pub fn memory_gib(&self) -> f64 {
        (self.storage_entries() * std::mem::size_of::<T>()) as f64 / (1u64 << 30) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::random_hodlr;
    use crate::recursive::solve_recursive_vec;
    use hodlr_la::lu::solve_dense;
    use hodlr_la::{Complex64, RealScalar};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check<T: Scalar>(n: usize, levels: usize, rank: usize, seed: u64, tol: f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m: HodlrMatrix<T> = random_hodlr(&mut rng, n, levels, rank);
        let f = m.factorize_serial().expect("invertible");
        let b: Vec<T> = hodlr_la::random::random_vector(&mut rng, n);
        let x = f.solve(&b);
        assert!(
            m.relative_residual(&x, &b).to_f64() < tol,
            "residual too large"
        );
        // Agreement with the recursive oracle.
        let x_rec = solve_recursive_vec(&m, &b).unwrap();
        for (a, r) in x.iter().zip(x_rec.iter()) {
            assert!((*a - *r).abs().to_f64() < tol);
        }
    }

    #[test]
    fn solves_match_recursive_and_have_small_residuals() {
        check::<f64>(64, 3, 3, 51, 1e-10);
        check::<f64>(80, 2, 4, 52, 1e-10);
        check::<Complex64>(48, 2, 2, 53, 1e-10);
    }

    #[test]
    fn non_power_of_two_and_deep_trees() {
        check::<f64>(101, 3, 2, 54, 1e-10);
        check::<f64>(256, 5, 1, 55, 1e-9);
    }

    #[test]
    fn multiple_right_hand_sides_match_dense() {
        let mut rng = StdRng::seed_from_u64(56);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 48, 2, 3);
        let dense = m.to_dense();
        let f = m.factorize_serial().unwrap();
        let b: DenseMatrix<f64> = hodlr_la::random::random_matrix(&mut rng, 48, 5);
        let x = f.solve_matrix(&b);
        for j in 0..5 {
            let xj_ref = solve_dense(&dense, b.col(j)).unwrap();
            for i in 0..48 {
                assert!((x[(i, j)] - xj_ref[i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn zero_level_matrix_is_a_dense_solve() {
        let mut rng = StdRng::seed_from_u64(57);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 20, 0, 0);
        let f = m.factorize_serial().unwrap();
        let b: Vec<f64> = hodlr_la::random::random_vector(&mut rng, 20);
        let x = f.solve(&b);
        assert!(m.relative_residual(&x, &b) < 1e-12);
    }

    #[test]
    fn log_det_matches_dense_determinant() {
        let mut rng = StdRng::seed_from_u64(58);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 32, 2, 2);
        let dense = m.to_dense();
        let f = m.factorize_serial().unwrap();
        let (log_abs, sign) = f.log_det();
        let dense_lu = LuFactor::new(&dense).unwrap();
        let (ref_log, ref_sign) = dense_lu.log_det();
        assert!((log_abs - ref_log).abs() < 1e-8, "{log_abs} vs {ref_log}");
        assert!((sign - ref_sign).abs() < 1e-8);
    }

    #[test]
    fn log_det_complex() {
        let mut rng = StdRng::seed_from_u64(59);
        let m: HodlrMatrix<Complex64> = random_hodlr(&mut rng, 32, 2, 2);
        let dense = m.to_dense();
        let f = m.factorize_serial().unwrap();
        let (log_abs, sign) = f.log_det();
        let dense_lu = LuFactor::new(&dense).unwrap();
        let (ref_log, ref_sign) = dense_lu.log_det();
        assert!((log_abs - ref_log).abs() < 1e-8);
        assert!((sign - ref_sign).abs().to_f64() < 1e-8);
    }

    #[test]
    fn singular_diagonal_block_is_reported() {
        let mut rng = StdRng::seed_from_u64(60);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 16, 1, 1);
        let diag = vec![DenseMatrix::zeros(8, 8), m.diag_block(1).clone()];
        let singular = HodlrMatrix::from_parts(
            m.tree().clone(),
            m.layout().clone(),
            (0..=m.tree().num_nodes()).map(|_| 1).collect(),
            m.ubig().clone(),
            m.vbig().clone(),
            diag,
        )
        .unwrap();
        let err = singular.factorize_serial().unwrap_err();
        assert!(
            err.to_string().contains("diagonal block of leaf 0"),
            "{err}"
        );
    }

    #[test]
    fn factorization_storage_is_close_to_matrix_storage() {
        let mut rng = StdRng::seed_from_u64(61);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 256, 4, 3);
        let f = m.factorize_serial().unwrap();
        // In-place factorization adds only the K factors, which are small.
        let extra = f.storage_entries() as f64 / m.storage_entries() as f64;
        assert!(
            extra < 1.2,
            "factorization uses {extra}x the matrix storage"
        );
    }
}
