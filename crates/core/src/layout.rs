//! Column layout of the flattened `Ubig` / `Vbig` / `Ybig` matrices.
//!
//! Following Fig. 3 of the paper, the low-rank bases of all tree nodes at
//! level `l` occupy one contiguous block of columns; the blocks are ordered
//! by level, `l = 1, ..., L`, left to right.  Algorithm 3's notation
//! `Ybig(:, 1:r*l)` ("all columns belonging to levels 1..l") becomes
//! [`LevelLayout::prefix_cols`]`(l)` columns here.
//!
//! When the off-diagonal ranks differ between nodes of one level, the level
//! block is as wide as the largest rank at that level and narrower bases are
//! zero-padded on the right.  Padding keeps `U V^*` products exact (the
//! padded columns multiply zero rows) and keeps every level block
//! rectangular, which is what enables the strided batched fast path; the
//! per-node true ranks are still tracked for rank-profile reporting.

use std::ops::Range;

/// Per-level column widths and offsets of the flattened basis matrices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelLayout {
    /// `widths[l - 1]` is the column width of level `l` (`l = 1..=L`).
    widths: Vec<usize>,
    /// `offsets[l]` is the total width of levels `1..=l`; `offsets[0] = 0`.
    offsets: Vec<usize>,
}

impl LevelLayout {
    /// Build a layout from per-level widths (`widths[l - 1]` = width of
    /// level `l`).
    pub fn new(widths: Vec<usize>) -> Self {
        let mut offsets = Vec::with_capacity(widths.len() + 1);
        offsets.push(0);
        let mut acc = 0;
        for &w in &widths {
            acc += w;
            offsets.push(acc);
        }
        LevelLayout { widths, offsets }
    }

    /// A layout with the same width `r` at every level (the constant-rank
    /// setting of the paper's complexity analysis).
    pub fn uniform(levels: usize, rank: usize) -> Self {
        Self::new(vec![rank; levels])
    }

    /// Number of levels `L` covered by the layout (levels are `1..=L`).
    pub fn levels(&self) -> usize {
        self.widths.len()
    }

    /// Column width of level `l` (`1 <= l <= L`).
    pub fn width(&self, level: usize) -> usize {
        assert!(
            level >= 1 && level <= self.levels(),
            "level {level} out of range"
        );
        self.widths[level - 1]
    }

    /// Column range of level `l`'s block in `Ubig` / `Vbig` / `Ybig`.
    pub fn col_range(&self, level: usize) -> Range<usize> {
        assert!(
            level >= 1 && level <= self.levels(),
            "level {level} out of range"
        );
        self.offsets[level - 1]..self.offsets[level]
    }

    /// Total number of columns of levels `1..=level` — the paper's
    /// `Ybig(:, 1:r*l)` prefix.  `prefix_cols(0) == 0`.
    pub fn prefix_cols(&self, level: usize) -> usize {
        assert!(level <= self.levels(), "level {level} out of range");
        self.offsets[level]
    }

    /// Total number of columns of the flattened basis matrices.
    pub fn total_cols(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// All per-level widths, shallowest level first.
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_layout_matches_paper_dimensions() {
        // Constant rank r over L levels: Ubig has r*L columns.
        let layout = LevelLayout::uniform(15, 56);
        assert_eq!(layout.levels(), 15);
        assert_eq!(layout.total_cols(), 15 * 56);
        assert_eq!(layout.col_range(1), 0..56);
        assert_eq!(layout.col_range(15), 14 * 56..15 * 56);
        assert_eq!(layout.prefix_cols(0), 0);
        assert_eq!(layout.prefix_cols(3), 3 * 56);
    }

    #[test]
    fn varying_widths() {
        let layout = LevelLayout::new(vec![10, 7, 3]);
        assert_eq!(layout.width(1), 10);
        assert_eq!(layout.width(2), 7);
        assert_eq!(layout.width(3), 3);
        assert_eq!(layout.col_range(2), 10..17);
        assert_eq!(layout.prefix_cols(2), 17);
        assert_eq!(layout.total_cols(), 20);
        assert_eq!(layout.widths(), &[10, 7, 3]);
    }

    #[test]
    fn zero_level_layout() {
        let layout = LevelLayout::new(vec![]);
        assert_eq!(layout.levels(), 0);
        assert_eq!(layout.total_cols(), 0);
        assert_eq!(layout.prefix_cols(0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn width_of_level_zero_panics() {
        let layout = LevelLayout::uniform(3, 2);
        let _ = layout.width(0);
    }
}
