//! # hodlr-core — HODLR matrices and their factorization
//!
//! This crate implements the primary contribution of Chen & Martinsson,
//! *"Solving Linear Systems on a GPU with Hierarchically Off-Diagonal
//! Low-Rank Approximations"* (SC 2022):
//!
//! * the **flattened data structure** for HODLR matrices where all left and
//!   right low-rank bases are concatenated into two big matrices
//!   `Ubig` / `Vbig`, all leaf diagonal blocks into `Dbig`, and all
//!   Schur-complement coefficient matrices into per-level `Kbig` blocks
//!   (Figs. 3–4 of the paper) — see [`HodlrMatrix`] and [`LevelLayout`];
//! * the **recursive solver** of Section III-A (Theorem 1), used as the
//!   correctness oracle — see [`recursive`];
//! * the **non-recursive level-by-level factorization and solve**
//!   (Algorithms 1–2), the "serial HODLR solver" of the evaluation — see
//!   [`SerialFactorization`];
//! * the **batched factorization and solve** (Algorithms 3–4) running on the
//!   virtual batched-BLAS device of `hodlr-batch`, the "GPU HODLR solver" of
//!   the evaluation — see [`GpuSolver`];
//! * the **complexity model** of Theorems 2–4 (storage, factorization cost,
//!   solve cost) used to cross-check the metered flop counters — see
//!   [`report`].
//!
//! Construction of the HODLR approximation itself (compressing every sibling
//! off-diagonal block) lives in [`builder`], on top of `hodlr-compress`.
//!
//! # Where this crate parallelizes
//!
//! [`builder`] compresses the two off-diagonal blocks of every sibling pair
//! and densifies every leaf diagonal block as independent tasks on the
//! rayon work-stealing pool (`HODLR_NUM_THREADS` participants).  The
//! batched solver ([`GpuSolver`]) inherits parallelism from `hodlr-batch`,
//! whose kernels shard their batch entries across the same pool, and its
//! blocked multi-RHS entry point [`GpuSolver::solve_block`] scatters and
//! gathers the right-hand-side columns in parallel too.
//! [`SerialFactorization`] is serial *by design* — it is the single-core
//! baseline of the paper's evaluation.  Every parallel path writes each
//! task's output to a task-private slot and runs each task's arithmetic
//! sequentially inside, so factorizations and solves are bitwise
//! reproducible at any thread count.

pub mod builder;
pub mod gpu;
pub mod gpu_symmetric;
pub mod layout;
pub mod matrix;
pub mod recursive;
pub mod report;
pub mod serial;
pub mod symmetric;

pub use builder::{
    build_from_dense, build_from_dense_symmetric, build_from_source, build_from_source_symmetric,
    build_from_source_symmetric_with, build_from_source_with, BlockSource, BuildOptions,
    DemotedSource,
};
pub use gpu::GpuSolver;
pub use gpu_symmetric::GpuSymmetricSolver;
pub use layout::LevelLayout;
pub use matrix::HodlrMatrix;
pub use recursive::solve_recursive;
pub use report::{ComplexityReport, CostModel};
pub use serial::SerialFactorization;
pub use symmetric::{SerialSymmetricFactorization, Symmetry};
