//! The batched *symmetric* factorization and solve — the Hermitian fast
//! path of Algorithms 3–4 on the virtual batched-BLAS device.
//!
//! The kernel sequence is that of [`GpuSolver`](crate::GpuSolver) with every
//! batched LU replaced by its symmetric counterpart: `potrf_batched_varied`
//! factorizes the leaf diagonal blocks (strictly, for
//! [`Symmetry::PositiveDefinite`]) and the Hermitian-indefinite coupling
//! matrices (always through the fallback ladder), and
//! `potrs_batched_varied` replays the stored factors on right-hand sides.
//! Each batch entry runs the *same* host-side kernels as
//! [`SerialSymmetricFactorization`](crate::SerialSymmetricFactorization) —
//! `factorize_symmetric_in_place` / `solve_symmetric_in_place` — so the two
//! backends produce bitwise-identical factors, solutions, and
//! log-determinants.  The per-entry ladder outcome ([`SymmetricKind`]) stays
//! host-side, exactly as LU pivots do.

use crate::layout::LevelLayout;
use crate::matrix::HodlrMatrix;
use crate::symmetric::Symmetry;
use hodlr_batch::{
    extract_tridiagonals_batched, gemm_batched_aliased, gemm_batched_varied, potrf_batched_varied,
    potrs_batched_varied, Device, DeviceBuffer, GemmDesc, Stream, StreamPool, SymDesc,
    SymSolveDesc,
};
use hodlr_la::{
    sym_log_det_from_parts, DenseMatrix, HodlrError, Op, Scalar, SymmetricKind, SymmetricPolicy,
};
use hodlr_tree::ClusterTree;
use rayon::prelude::*;
use std::ops::Range;

/// Below this many nodes in a level, independent kernels are cycled over a
/// stream pool instead of one big batch (Section III-C).
const STREAM_THRESHOLD: usize = 4;

/// The GPU-style symmetric HODLR solver: device-resident data plus the
/// stored symmetric factorization state.
pub struct GpuSymmetricSolver<'d, T: Scalar> {
    device: &'d Device,
    tree: ClusterTree,
    layout: LevelLayout,
    symmetry: Symmetry,
    /// Row range of every leaf, in leaf order.
    leaf_ranges: Vec<Range<usize>>,
    /// Element offset of every leaf block inside `dbig`.
    diag_offsets: Vec<usize>,
    /// Leaf diagonal blocks, factorized in place by
    /// [`GpuSymmetricSolver::factorize`].
    dbig: DeviceBuffer<'d, T>,
    /// The flattened shared bases; overwritten with `Ybig` by the
    /// factorization.
    ybig: DeviceBuffer<'d, T>,
    /// The original bases, playing the `Vbig` role of the sweep.
    vbig: DeviceBuffer<'d, T>,
    /// Ladder outcome of every leaf diagonal block (host-side, like pivots).
    diag_kinds: Vec<SymmetricKind>,
    /// Per level: the coupling matrices `Kbig` (factorized in place).
    k_bufs: Vec<DeviceBuffer<'d, T>>,
    /// Per level: ladder outcome of every coupling matrix.
    k_kinds: Vec<Vec<SymmetricKind>>,
    factored: bool,
    streams: StreamPool,
}

impl<'d, T: Scalar> GpuSymmetricSolver<'d, T> {
    /// Upload a Hermitian HODLR matrix to the device.
    ///
    /// The caller asserts the matrix is Hermitian-valued (matrices from
    /// [`build_from_source_symmetric`](crate::builder::build_from_source_symmetric)
    /// or
    /// [`from_parts_symmetric`](crate::matrix::HodlrMatrix::from_parts_symmetric)
    /// are, by construction).
    ///
    /// # Errors
    /// [`HodlrError::InvalidConfig`] if `symmetry` is [`Symmetry::General`]
    /// — use [`GpuSolver`](crate::GpuSolver) for unsymmetric matrices.
    pub fn new(
        device: &'d Device,
        matrix: &HodlrMatrix<T>,
        symmetry: Symmetry,
    ) -> Result<Self, HodlrError> {
        if !symmetry.is_symmetric() {
            return Err(HodlrError::config(
                "GpuSymmetricSolver requires Symmetry::PositiveDefinite or Symmetry::Hermitian; \
                 use GpuSolver for Symmetry::General",
            ));
        }
        let tree = matrix.tree().clone();
        let layout = matrix.layout().clone();
        let n = matrix.n();
        let total_cols = layout.total_cols();

        let leaf_ranges: Vec<Range<usize>> = tree.leaves().map(|leaf| tree.range(leaf)).collect();
        let mut diag_offsets = Vec::with_capacity(leaf_ranges.len());
        let mut dbig_host: Vec<T> = Vec::new();
        for (leaf_idx, range) in leaf_ranges.iter().enumerate() {
            diag_offsets.push(dbig_host.len());
            debug_assert_eq!(matrix.diag_block(leaf_idx).rows(), range.len());
            dbig_host.extend_from_slice(matrix.diag_block(leaf_idx).data());
        }

        let dbig = DeviceBuffer::from_host(device, &dbig_host);
        // Ybig is overwritten by the factorization while Vbig must stay
        // pristine for the solve sweep, so the shared bases are uploaded
        // twice even though the host matrix stores them once.
        let ybig = DeviceBuffer::from_host(device, matrix.ubig().data());
        let vbig = DeviceBuffer::from_host(device, matrix.vbig().data());
        debug_assert_eq!(ybig.len(), n * total_cols);

        Ok(GpuSymmetricSolver {
            device,
            tree,
            layout,
            symmetry,
            leaf_ranges,
            diag_offsets,
            dbig,
            ybig,
            vbig,
            diag_kinds: Vec::new(),
            k_bufs: Vec::new(),
            k_kinds: Vec::new(),
            factored: false,
            streams: StreamPool::new(4),
        })
    }

    /// The device this solver runs on.
    pub fn device(&self) -> &'d Device {
        self.device
    }

    /// The [`Symmetry`] the solver was created with.
    pub fn symmetry(&self) -> Symmetry {
        self.symmetry
    }

    /// `true` once [`GpuSymmetricSolver::factorize`] has completed
    /// successfully.
    pub fn is_factored(&self) -> bool {
        self.factored
    }

    /// Matrix size `N`.
    pub fn n(&self) -> usize {
        self.tree.n()
    }

    /// Which factorization rung each leaf diagonal block landed on, in leaf
    /// order (empty before [`GpuSymmetricSolver::factorize`]).
    pub fn leaf_kinds(&self) -> &[SymmetricKind] {
        &self.diag_kinds
    }

    /// Scalar entries resident in device buffers; mirrors
    /// [`GpuSolver::storage_entries`](crate::GpuSolver::storage_entries).
    pub fn storage_entries(&self) -> usize {
        self.dbig.len()
            + self.ybig.len()
            + self.vbig.len()
            + self.k_bufs.iter().map(|b| b.len()).sum::<usize>()
    }

    fn n_rows(&self) -> usize {
        self.tree.n()
    }

    /// Stream to issue a launch of `batch` problems on: the default stream
    /// for large batches, a pooled stream for the tiny top-level batches.
    fn stream_for(&self, batch: usize) -> Stream {
        if batch < STREAM_THRESHOLD {
            self.streams.next_stream()
        } else {
            Stream::default_stream()
        }
    }

    /// The symmetric Algorithm-3 sweep: batched factorization.
    ///
    /// # Errors
    /// [`HodlrError::NotPositiveDefinite`] if the symmetry is
    /// [`Symmetry::PositiveDefinite`] and a leaf Cholesky pivot fails
    /// (naming the batch entry and pivot), or
    /// [`HodlrError::SingularPivot`] if the fallback ladder bottoms out.
    pub fn factorize(&mut self) -> Result<(), HodlrError> {
        let n = self.n_rows();
        let levels = self.tree.levels();
        let total_cols = self.layout.total_cols();
        let leaf_policy = self.symmetry.leaf_policy();

        // --- leaf level ----------------------------------------------------
        let leaf_descs: Vec<SymDesc> = self
            .leaf_ranges
            .iter()
            .zip(self.diag_offsets.iter())
            .map(|(range, &offset)| SymDesc {
                n: range.len(),
                offset,
                ld: range.len(),
            })
            .collect();
        let stream = self.stream_for(leaf_descs.len());
        self.diag_kinds = potrf_batched_varied(
            self.device,
            stream,
            &leaf_descs,
            leaf_policy,
            &mut self.dbig,
        )
        .map_err(|e| e.into_hodlr("leaf diagonal block"))?;

        if total_cols > 0 {
            let solve_descs: Vec<SymSolveDesc> = self
                .leaf_ranges
                .iter()
                .zip(self.diag_offsets.iter())
                .map(|(range, &offset)| SymSolveDesc {
                    n: range.len(),
                    nrhs: total_cols,
                    a_offset: offset,
                    lda: range.len(),
                    b_offset: range.start,
                    ldb: n,
                })
                .collect();
            let stream = self.stream_for(solve_descs.len());
            potrs_batched_varied(
                self.device,
                stream,
                &solve_descs,
                &self.dbig,
                &self.diag_kinds,
                &mut self.ybig,
            );
        }

        // --- internal levels, deepest first --------------------------------
        self.k_bufs = Vec::with_capacity(levels);
        self.k_kinds = Vec::with_capacity(levels);
        let mut k_bufs_rev: Vec<DeviceBuffer<'d, T>> = Vec::with_capacity(levels);
        let mut k_kinds_rev: Vec<Vec<SymmetricKind>> = Vec::with_capacity(levels);

        for level in (0..levels).rev() {
            let child_level = level + 1;
            let w = self.layout.width(child_level);
            let prefix = self.layout.prefix_cols(level);
            let child_col_start = self.layout.col_range(child_level).start;
            let parents: Vec<usize> = self.tree.level_nodes(level).collect();
            let batch = parents.len();

            if w == 0 {
                k_bufs_rev.push(DeviceBuffer::zeros(self.device, 0));
                k_kinds_rev.push(Vec::new());
                continue;
            }

            // Coupling-matrix buffer: one (2w x 2w) block per parent, with
            // the identity blocks written by a small device-side kernel.
            let k_stride = 4 * w * w;
            let mut k_buf = DeviceBuffer::<T>::zeros(self.device, batch * k_stride);
            write_coupling_identities(self.device, &mut k_buf, batch, w);

            // T = U^* ⊙ Y for every child, written straight into the
            // diagonal blocks of K.
            let mut t_descs = Vec::with_capacity(2 * batch);
            for (p, &gamma) in parents.iter().enumerate() {
                let (alpha, beta) = self.tree.children(gamma).expect("internal node");
                for (child_idx, child) in [alpha, beta].into_iter().enumerate() {
                    let range = self.tree.range(child);
                    let c_offset = p * k_stride + child_idx * (w * 2 * w + w);
                    t_descs.push(GemmDesc {
                        m: w,
                        n: w,
                        k: range.len(),
                        alpha: T::one(),
                        beta: T::zero(),
                        op_a: Op::ConjTrans,
                        op_b: Op::None,
                        a_offset: child_col_start * n + range.start,
                        lda: n,
                        b_offset: child_col_start * n + range.start,
                        ldb: n,
                        c_offset,
                        ldc: 2 * w,
                    });
                }
            }
            let stream = self.stream_for(batch);
            gemm_batched_varied(
                self.device,
                stream,
                &t_descs,
                &self.vbig,
                &self.ybig,
                &mut k_buf,
            );

            // W = U^* ⊙ Ybig(:, 1:prefix), stacked child-over-child per
            // parent so each parent's right-hand side is contiguous.
            let mut w_buf = DeviceBuffer::<T>::zeros(self.device, batch * 2 * w * prefix);
            if prefix > 0 {
                let mut w_descs = Vec::with_capacity(2 * batch);
                for (p, &gamma) in parents.iter().enumerate() {
                    let (alpha, beta) = self.tree.children(gamma).expect("internal node");
                    for (child_idx, child) in [alpha, beta].into_iter().enumerate() {
                        let range = self.tree.range(child);
                        w_descs.push(GemmDesc {
                            m: w,
                            n: prefix,
                            k: range.len(),
                            alpha: T::one(),
                            beta: T::zero(),
                            op_a: Op::ConjTrans,
                            op_b: Op::None,
                            a_offset: child_col_start * n + range.start,
                            lda: n,
                            b_offset: range.start,
                            ldb: n,
                            c_offset: p * 2 * w * prefix + child_idx * w,
                            ldc: 2 * w,
                        });
                    }
                }
                let stream = self.stream_for(batch);
                gemm_batched_varied(
                    self.device,
                    stream,
                    &w_descs,
                    &self.vbig,
                    &self.ybig,
                    &mut w_buf,
                );
            }

            // Batched symmetric factorization of the coupling matrices.
            // K is Hermitian indefinite by construction: always the ladder.
            let k_descs: Vec<SymDesc> = (0..batch)
                .map(|p| SymDesc {
                    n: 2 * w,
                    offset: p * k_stride,
                    ld: 2 * w,
                })
                .collect();
            let stream = self.stream_for(batch);
            let kinds = potrf_batched_varied(
                self.device,
                stream,
                &k_descs,
                SymmetricPolicy::Fallback,
                &mut k_buf,
            )
            .map_err(|e| e.into_hodlr(format!("coupling matrix at level {level}")))?;

            if prefix > 0 {
                // W <- K^{-1} ⊙ W.
                let solve_descs: Vec<SymSolveDesc> = (0..batch)
                    .map(|p| SymSolveDesc {
                        n: 2 * w,
                        nrhs: prefix,
                        a_offset: p * k_stride,
                        lda: 2 * w,
                        b_offset: p * 2 * w * prefix,
                        ldb: 2 * w,
                    })
                    .collect();
                let stream = self.stream_for(batch);
                potrs_batched_varied(
                    self.device,
                    stream,
                    &solve_descs,
                    &k_buf,
                    &kinds,
                    &mut w_buf,
                );

                // Ybig(:, 1:prefix) -= Y^{l+1} ⊙ W (A and C alias Ybig).
                let mut update_descs = Vec::with_capacity(2 * batch);
                for (p, &gamma) in parents.iter().enumerate() {
                    let (alpha, beta) = self.tree.children(gamma).expect("internal node");
                    for (child_idx, child) in [alpha, beta].into_iter().enumerate() {
                        let range = self.tree.range(child);
                        update_descs.push(GemmDesc {
                            m: range.len(),
                            n: prefix,
                            k: w,
                            alpha: -T::one(),
                            beta: T::one(),
                            op_a: Op::None,
                            op_b: Op::None,
                            a_offset: child_col_start * n + range.start,
                            lda: n,
                            b_offset: p * 2 * w * prefix + child_idx * w,
                            ldb: 2 * w,
                            c_offset: range.start,
                            ldc: n,
                        });
                    }
                }
                let stream = self.stream_for(batch);
                gemm_batched_aliased(self.device, stream, &update_descs, &mut self.ybig, &w_buf);
            }

            k_bufs_rev.push(k_buf);
            k_kinds_rev.push(kinds);
        }

        // Stored deepest-level first in the loop above; store per level index.
        k_bufs_rev.reverse();
        k_kinds_rev.reverse();
        self.k_bufs = k_bufs_rev;
        self.k_kinds = k_kinds_rev;
        self.factored = true;
        Ok(())
    }

    /// Log-determinant from the batched symmetric factors: the factor
    /// (tri)diagonals are gathered with one `extract_tridiagonals_batched`
    /// launch per buffer, then folded with the *same* per-factor
    /// accumulation
    /// ([`sym_log_det_from_parts`]) in the
    /// *same* order (leaves first, then coupling levels from the top split
    /// down, `(-1)^w` Sylvester correction) as
    /// [`SerialSymmetricFactorization::log_det`](crate::SerialSymmetricFactorization::log_det)
    /// — the two backends agree **bitwise**.
    ///
    /// Returns `(log|det(A)|, sign)`; for a positive-definite matrix the
    /// sign is `1`.
    ///
    /// # Errors
    /// [`HodlrError::NotFactorized`] when
    /// [`GpuSymmetricSolver::factorize`] has not completed yet.
    pub fn log_det(&self) -> Result<(T::Real, T), HodlrError> {
        if !self.factored {
            return Err(HodlrError::NotFactorized);
        }
        let mut log_abs = <T::Real as Scalar>::zero();
        let mut sign = T::one();

        // Leaf diagonal blocks, in leaf order.
        let leaf_descs: Vec<SymDesc> = self
            .leaf_ranges
            .iter()
            .zip(self.diag_offsets.iter())
            .map(|(range, &offset)| SymDesc {
                n: range.len(),
                offset,
                ld: range.len(),
            })
            .collect();
        let stream = self.stream_for(leaf_descs.len());
        let leaf_parts = extract_tridiagonals_batched(self.device, stream, &leaf_descs, &self.dbig);
        for ((diag, sub), kind) in leaf_parts.iter().zip(&self.diag_kinds) {
            let (la, s) = sym_log_det_from_parts(kind, diag, sub);
            log_abs += la;
            sign *= s;
        }

        // Coupling matrices, level 0 (top split) downwards, node order
        // within a level — the iteration order of the serial sweep.
        for level in 0..self.tree.levels() {
            let w = self.layout.width(level + 1);
            if w == 0 {
                continue;
            }
            let batch = self.k_kinds[level].len();
            let k_stride = 4 * w * w;
            let descs: Vec<SymDesc> = (0..batch)
                .map(|p| SymDesc {
                    n: 2 * w,
                    offset: p * k_stride,
                    ld: 2 * w,
                })
                .collect();
            let stream = self.stream_for(batch);
            let parts =
                extract_tridiagonals_batched(self.device, stream, &descs, &self.k_bufs[level]);
            for ((diag, sub), kind) in parts.iter().zip(&self.k_kinds[level]) {
                let (la, s) = sym_log_det_from_parts(kind, diag, sub);
                log_abs += la;
                sign *= s;
                // det([[A, I], [I, B]]) = (-1)^w det(K), as in the LU path.
                if w % 2 == 1 {
                    sign = -sign;
                }
            }
        }
        Ok((log_abs, sign))
    }

    /// Batched solve of `A x = b` for one right-hand side.
    ///
    /// # Errors
    /// [`HodlrError::NotFactorized`] before
    /// [`GpuSymmetricSolver::factorize`], and
    /// [`HodlrError::DimensionMismatch`] when `b` has length `!= n`.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, HodlrError> {
        if !self.factored {
            return Err(HodlrError::NotFactorized);
        }
        HodlrError::check_dims("right-hand side", self.n_rows(), b.len())?;
        Ok(self.solve_matrix_host(b, 1))
    }

    /// Batched solve with multiple right-hand sides given as an `N x k`
    /// matrix.
    ///
    /// # Errors
    /// [`HodlrError::NotFactorized`] before
    /// [`GpuSymmetricSolver::factorize`], and
    /// [`HodlrError::DimensionMismatch`] when `b` has `!= n` rows.
    pub fn solve_matrix(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>, HodlrError> {
        if !self.factored {
            return Err(HodlrError::NotFactorized);
        }
        HodlrError::check_dims("right-hand side block rows", self.n_rows(), b.rows())?;
        let data = self.solve_matrix_host(b.data(), b.cols());
        Ok(DenseMatrix::from_col_major(b.rows(), b.cols(), data))
    }

    /// Blocked multi-RHS solve; see
    /// [`GpuSolver::solve_block`](crate::GpuSolver::solve_block).
    ///
    /// # Errors
    /// [`HodlrError::NotFactorized`] before
    /// [`GpuSymmetricSolver::factorize`], and
    /// [`HodlrError::DimensionMismatch`] naming the first right-hand side
    /// whose length is `!= n`.
    pub fn solve_block(&self, rhs: &[impl AsRef<[T]> + Sync]) -> Result<Vec<Vec<T>>, HodlrError> {
        if !self.factored {
            return Err(HodlrError::NotFactorized);
        }
        let n = self.n_rows();
        let k = rhs.len();
        for (j, col) in rhs.iter().enumerate() {
            HodlrError::check_dims(format!("right-hand side {j}"), n, col.as_ref().len())?;
        }
        let mut packed = vec![T::zero(); n * k];
        packed
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(j, col)| col.copy_from_slice(rhs[j].as_ref()));
        let x = self.solve_matrix_host(&packed, k);
        let mut out = vec![Vec::new(); k];
        out.par_iter_mut()
            .enumerate()
            .for_each(|(j, col)| *col = x[j * n..(j + 1) * n].to_vec());
        Ok(out)
    }

    /// The shared solve sweep; the public entry points have already
    /// validated the factorization state and the right-hand-side shape.
    fn solve_matrix_host(&self, b: &[T], nrhs: usize) -> Vec<T> {
        debug_assert!(self.factored);
        let n = self.n_rows();
        debug_assert_eq!(b.len(), n * nrhs);
        let levels = self.tree.levels();

        // Upload the right-hand side (metered H2D transfer).
        let mut x_buf = DeviceBuffer::from_host(self.device, b);

        // Leaf sweep.
        let solve_descs: Vec<SymSolveDesc> = self
            .leaf_ranges
            .iter()
            .zip(self.diag_offsets.iter())
            .map(|(range, &offset)| SymSolveDesc {
                n: range.len(),
                nrhs,
                a_offset: offset,
                lda: range.len(),
                b_offset: range.start,
                ldb: n,
            })
            .collect();
        let stream = self.stream_for(solve_descs.len());
        potrs_batched_varied(
            self.device,
            stream,
            &solve_descs,
            &self.dbig,
            &self.diag_kinds,
            &mut x_buf,
        );

        // Level sweep, deepest first.
        for level in (0..levels).rev() {
            let child_level = level + 1;
            let w = self.layout.width(child_level);
            if w == 0 {
                continue;
            }
            let child_col_start = self.layout.col_range(child_level).start;
            let parents: Vec<usize> = self.tree.level_nodes(level).collect();
            let batch = parents.len();

            // w = U^* ⊙ x, stacked per parent.
            let mut w_buf = DeviceBuffer::<T>::zeros(self.device, batch * 2 * w * nrhs);
            let mut w_descs = Vec::with_capacity(2 * batch);
            for (p, &gamma) in parents.iter().enumerate() {
                let (alpha, beta) = self.tree.children(gamma).expect("internal node");
                for (child_idx, child) in [alpha, beta].into_iter().enumerate() {
                    let range = self.tree.range(child);
                    w_descs.push(GemmDesc {
                        m: w,
                        n: nrhs,
                        k: range.len(),
                        alpha: T::one(),
                        beta: T::zero(),
                        op_a: Op::ConjTrans,
                        op_b: Op::None,
                        a_offset: child_col_start * n + range.start,
                        lda: n,
                        b_offset: range.start,
                        ldb: n,
                        c_offset: p * 2 * w * nrhs + child_idx * w,
                        ldc: 2 * w,
                    });
                }
            }
            let stream = self.stream_for(batch);
            gemm_batched_varied(
                self.device,
                stream,
                &w_descs,
                &self.vbig,
                &x_buf,
                &mut w_buf,
            );

            // w <- K^{-1} ⊙ w.
            let k_stride = 4 * w * w;
            let solve_descs: Vec<SymSolveDesc> = (0..batch)
                .map(|p| SymSolveDesc {
                    n: 2 * w,
                    nrhs,
                    a_offset: p * k_stride,
                    lda: 2 * w,
                    b_offset: p * 2 * w * nrhs,
                    ldb: 2 * w,
                })
                .collect();
            let stream = self.stream_for(batch);
            potrs_batched_varied(
                self.device,
                stream,
                &solve_descs,
                &self.k_bufs[level],
                &self.k_kinds[level],
                &mut w_buf,
            );

            // x <- x - Y ⊙ w.
            let mut update_descs = Vec::with_capacity(2 * batch);
            for (p, &gamma) in parents.iter().enumerate() {
                let (alpha, beta) = self.tree.children(gamma).expect("internal node");
                for (child_idx, child) in [alpha, beta].into_iter().enumerate() {
                    let range = self.tree.range(child);
                    update_descs.push(GemmDesc {
                        m: range.len(),
                        n: nrhs,
                        k: w,
                        alpha: -T::one(),
                        beta: T::one(),
                        op_a: Op::None,
                        op_b: Op::None,
                        a_offset: child_col_start * n + range.start,
                        lda: n,
                        b_offset: p * 2 * w * nrhs + child_idx * w,
                        ldb: 2 * w,
                        c_offset: range.start,
                        ldc: n,
                    });
                }
            }
            let stream = self.stream_for(batch);
            gemm_batched_varied(
                self.device,
                stream,
                &update_descs,
                &self.ybig,
                &w_buf,
                &mut x_buf,
            );
        }

        // Download the solution (metered D2H transfer).
        x_buf.download()
    }
}

/// Write the two identity blocks of every coupling matrix (shared with the
/// LU path's kernel; metered as one launch with no flops).
fn write_coupling_identities<T: Scalar>(
    device: &Device,
    k_buf: &mut DeviceBuffer<'_, T>,
    batch: usize,
    w: usize,
) {
    device.record_launch("assemble_coupling_identity", batch, 0, 0);
    let k_stride = 4 * w * w;
    let data = k_buf.data_mut();
    for p in 0..batch {
        let base = p * k_stride;
        for i in 0..w {
            data[base + (w + i) * 2 * w + i] = T::one();
            data[base + i * 2 * w + w + i] = T::one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::random_hodlr_spd;
    use hodlr_la::{Complex64, RealScalar};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_gpu_symmetric<T: Scalar>(n: usize, levels: usize, rank: usize, seed: u64, tol: f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m: HodlrMatrix<T> = random_hodlr_spd(&mut rng, n, levels, rank);
        let device = Device::new();
        let mut gpu = GpuSymmetricSolver::new(&device, &m, Symmetry::PositiveDefinite).unwrap();
        gpu.factorize().expect("SPD HODLR is invertible");
        assert!(gpu.leaf_kinds().iter().all(|k| *k == SymmetricKind::Llt));
        let b: Vec<T> = hodlr_la::random::random_vector(&mut rng, n);
        let x = gpu.solve(&b).unwrap();
        assert!(
            m.relative_residual(&x, &b).to_f64() < tol,
            "residual {}",
            m.relative_residual(&x, &b).to_f64()
        );
        // Bitwise agreement with the serial symmetric factorization.
        let serial = m.factorize_symmetric(Symmetry::PositiveDefinite).unwrap();
        let x_serial = serial.solve(&b);
        for (a, s) in x.iter().zip(x_serial.iter()) {
            assert_eq!(a.real().to_f64().to_bits(), s.real().to_f64().to_bits());
            assert_eq!(a.imag().to_f64().to_bits(), s.imag().to_f64().to_bits());
        }
    }

    #[test]
    fn gpu_symmetric_matches_serial_bitwise_real() {
        check_gpu_symmetric::<f64>(64, 3, 3, 91, 1e-9);
        check_gpu_symmetric::<f64>(101, 3, 2, 92, 1e-9);
    }

    #[test]
    fn gpu_symmetric_matches_serial_bitwise_complex() {
        check_gpu_symmetric::<Complex64>(48, 2, 2, 93, 1e-9);
    }

    #[test]
    fn log_det_matches_serial_symmetric_bitwise() {
        fn check<T: Scalar>(n: usize, levels: usize, rank: usize, seed: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m: HodlrMatrix<T> = random_hodlr_spd(&mut rng, n, levels, rank);
            let serial = m.factorize_symmetric(Symmetry::PositiveDefinite).unwrap();
            let (log_serial, sign_serial) = serial.log_det();
            let device = Device::new();
            let mut gpu = GpuSymmetricSolver::new(&device, &m, Symmetry::PositiveDefinite).unwrap();
            gpu.factorize().unwrap();
            let (log_gpu, sign_gpu) = gpu.log_det().unwrap();
            assert_eq!(
                log_serial.to_f64().to_bits(),
                log_gpu.to_f64().to_bits(),
                "{log_serial:?} vs {log_gpu:?}"
            );
            assert_eq!(sign_serial, sign_gpu);
        }
        check::<f64>(64, 3, 3, 94);
        check::<f64>(101, 3, 2, 95);
        check::<Complex64>(48, 2, 2, 96);
    }

    #[test]
    fn general_symmetry_is_rejected_at_construction() {
        let mut rng = StdRng::seed_from_u64(97);
        let m: HodlrMatrix<f64> = random_hodlr_spd(&mut rng, 16, 1, 1);
        let device = Device::new();
        let err = match GpuSymmetricSolver::new(&device, &m, Symmetry::General) {
            Ok(_) => panic!("General symmetry must be rejected"),
            Err(e) => e,
        };
        assert!(matches!(err, HodlrError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn solving_before_factorizing_is_a_typed_error() {
        let mut rng = StdRng::seed_from_u64(98);
        let m: HodlrMatrix<f64> = random_hodlr_spd(&mut rng, 32, 2, 1);
        let device = Device::new();
        let gpu = GpuSymmetricSolver::new(&device, &m, Symmetry::PositiveDefinite).unwrap();
        assert_eq!(
            gpu.solve(&vec![1.0; 32]).unwrap_err(),
            HodlrError::NotFactorized
        );
        assert_eq!(
            gpu.solve_matrix(&DenseMatrix::zeros(32, 2)).unwrap_err(),
            HodlrError::NotFactorized
        );
        assert_eq!(
            gpu.solve_block(&[vec![1.0; 32]]).unwrap_err(),
            HodlrError::NotFactorized
        );
        assert_eq!(gpu.log_det().unwrap_err(), HodlrError::NotFactorized);
    }

    #[test]
    fn indefinite_leaf_reports_not_positive_definite_with_batch_entry() {
        let mut rng = StdRng::seed_from_u64(99);
        let m: HodlrMatrix<f64> = random_hodlr_spd(&mut rng, 32, 1, 1);
        let mut diag: Vec<_> = m.diag_blocks().to_vec();
        let sz = diag[1].rows();
        diag[1][(sz / 2, sz / 2)] = -1e6;
        let indef = HodlrMatrix::from_parts_symmetric(
            m.tree().clone(),
            m.layout().clone(),
            (0..=m.tree().num_nodes()).map(|_| 1).collect(),
            m.ubig().clone(),
            diag,
        )
        .unwrap();
        let device = Device::new();
        let mut gpu = GpuSymmetricSolver::new(&device, &indef, Symmetry::PositiveDefinite).unwrap();
        let err = gpu.factorize().expect_err("second leaf is indefinite");
        match &err {
            HodlrError::NotPositiveDefinite { context } => {
                assert!(context.contains("batch entry 1"), "{context}");
            }
            other => panic!("unexpected error {other}"),
        }

        // The Hermitian symmetry falls back and solves.
        let mut gpu = GpuSymmetricSolver::new(&device, &indef, Symmetry::Hermitian).unwrap();
        gpu.factorize().unwrap();
        let b: Vec<f64> = hodlr_la::random::random_vector(&mut rng, 32);
        let x = gpu.solve(&b).unwrap();
        assert!(indef.relative_residual(&x, &b) < 1e-8);
    }

    #[test]
    fn counters_record_cholesky_flops_below_lu() {
        use crate::gpu::GpuSolver;
        let mut rng = StdRng::seed_from_u64(100);
        let m: HodlrMatrix<f64> = random_hodlr_spd(&mut rng, 64, 2, 2);
        let dev_sym = Device::new();
        let mut sym = GpuSymmetricSolver::new(&dev_sym, &m, Symmetry::PositiveDefinite).unwrap();
        let before = dev_sym.counters();
        sym.factorize().unwrap();
        let sym_counters = dev_sym.counters().since(&before);

        let dev_lu = Device::new();
        let mut lu = GpuSolver::new(&dev_lu, &m);
        let before = dev_lu.counters();
        lu.factorize().unwrap();
        let lu_counters = dev_lu.counters().since(&before);

        assert!(sym_counters.flops > 0);
        assert!(
            sym_counters.flops < lu_counters.flops,
            "symmetric {} vs LU {}",
            sym_counters.flops,
            lu_counters.flops
        );
        // No host/device traffic during the factorization itself.
        assert_eq!(sym_counters.h2d_bytes, 0);
    }
}
