//! The [`HodlrMatrix`] storage type: flattened bases plus leaf diagonal
//! blocks (Figs. 3–4 of the paper).

use crate::layout::LevelLayout;
use hodlr_la::{gemm, norms, DenseMatrix, HodlrError, MatRef, Op, RealScalar, Scalar};
use hodlr_tree::{ClusterTree, NodeId};

/// A HODLR matrix stored in the paper's flattened format.
///
/// * `ubig` / `vbig` are `N x W` matrices (`W =` [`LevelLayout::total_cols`])
///   holding, for every non-root node `alpha`, its left basis `U_alpha` (rows
///   `I_alpha`, columns of `alpha`'s level) and right basis `V_alpha`;
/// * `diag` holds the dense leaf diagonal blocks `D_alpha` in leaf order;
/// * every sibling off-diagonal block is `A(I_alpha, I_beta) = U_alpha
///   V_beta^*` (Eq. 5).
///
/// Bases narrower than their level block are zero-padded on the right; the
/// true per-node ranks are kept in `node_ranks` for reporting (the appendix
/// rank tables).
#[derive(Clone, Debug)]
pub struct HodlrMatrix<T: Scalar> {
    tree: ClusterTree,
    layout: LevelLayout,
    node_ranks: Vec<usize>,
    ubig: DenseMatrix<T>,
    /// `None` for Hermitian matrices, whose right bases are shared with
    /// `ubig` (`V_alpha = U_alpha`), halving the basis storage.
    vbig: Option<DenseMatrix<T>>,
    diag: Vec<DenseMatrix<T>>,
}

impl<T: Scalar> HodlrMatrix<T> {
    /// Assemble a HODLR matrix from its parts.  Intended for the builder and
    /// for tests that construct exactly-representable matrices; most users
    /// should go through [`crate::build_from_source`] or the `hodlr` façade.
    ///
    /// # Errors
    /// Returns [`HodlrError::DimensionMismatch`] naming the offending part
    /// (big basis, per-leaf diagonal block, or rank table entry) when the
    /// shapes are inconsistent with the tree and layout.
    pub fn from_parts(
        tree: ClusterTree,
        layout: LevelLayout,
        node_ranks: Vec<usize>,
        ubig: DenseMatrix<T>,
        vbig: DenseMatrix<T>,
        diag: Vec<DenseMatrix<T>>,
    ) -> Result<Self, HodlrError> {
        let n = tree.n();
        HodlrError::check_dims("layout levels", tree.levels(), layout.levels())?;
        HodlrError::check_dims("Ubig rows", n, ubig.rows())?;
        HodlrError::check_dims("Vbig rows", n, vbig.rows())?;
        HodlrError::check_dims("Ubig columns", layout.total_cols(), ubig.cols())?;
        HodlrError::check_dims("Vbig columns", layout.total_cols(), vbig.cols())?;
        HodlrError::check_dims(
            "node rank table (one entry per node id)",
            tree.num_nodes() + 1,
            node_ranks.len(),
        )?;
        HodlrError::check_dims(
            "diagonal blocks (one per leaf)",
            tree.num_leaves(),
            diag.len(),
        )?;
        for (leaf_idx, leaf) in tree.leaves().enumerate() {
            let size = tree.node_size(leaf);
            HodlrError::check_dims(
                format!("rows of diagonal block of leaf {leaf_idx} (node {leaf})"),
                size,
                diag[leaf_idx].rows(),
            )?;
            HodlrError::check_dims(
                format!("columns of diagonal block of leaf {leaf_idx} (node {leaf})"),
                size,
                diag[leaf_idx].cols(),
            )?;
        }
        for level in 1..=tree.levels() {
            for node in tree.level_nodes(level) {
                if node_ranks[node] > layout.width(level) {
                    return Err(HodlrError::dims(
                        format!("rank of node {node} vs its level-{level} width"),
                        layout.width(level),
                        node_ranks[node],
                    ));
                }
            }
        }
        Ok(HodlrMatrix {
            tree,
            layout,
            node_ranks,
            ubig,
            vbig: Some(vbig),
            diag,
        })
    }

    /// Assemble a Hermitian HODLR matrix whose right bases are shared with
    /// the left ones (`V_alpha = U_alpha` for every node), so every sibling
    /// off-diagonal block is `A(I_alpha, I_beta) = U_alpha U_beta^*` and the
    /// matrix satisfies `A = A^H` whenever the diagonal blocks do.  Stores
    /// half the basis entries of the general format.
    ///
    /// # Errors
    /// As [`HodlrMatrix::from_parts`], minus the `Vbig` checks.
    pub fn from_parts_symmetric(
        tree: ClusterTree,
        layout: LevelLayout,
        node_ranks: Vec<usize>,
        ubig: DenseMatrix<T>,
        diag: Vec<DenseMatrix<T>>,
    ) -> Result<Self, HodlrError> {
        let n = tree.n();
        HodlrError::check_dims("layout levels", tree.levels(), layout.levels())?;
        HodlrError::check_dims("Ubig rows", n, ubig.rows())?;
        HodlrError::check_dims("Ubig columns", layout.total_cols(), ubig.cols())?;
        HodlrError::check_dims(
            "node rank table (one entry per node id)",
            tree.num_nodes() + 1,
            node_ranks.len(),
        )?;
        HodlrError::check_dims(
            "diagonal blocks (one per leaf)",
            tree.num_leaves(),
            diag.len(),
        )?;
        for (leaf_idx, leaf) in tree.leaves().enumerate() {
            let size = tree.node_size(leaf);
            HodlrError::check_dims(
                format!("rows of diagonal block of leaf {leaf_idx} (node {leaf})"),
                size,
                diag[leaf_idx].rows(),
            )?;
            HodlrError::check_dims(
                format!("columns of diagonal block of leaf {leaf_idx} (node {leaf})"),
                size,
                diag[leaf_idx].cols(),
            )?;
        }
        for level in 1..=tree.levels() {
            for node in tree.level_nodes(level) {
                if node_ranks[node] > layout.width(level) {
                    return Err(HodlrError::dims(
                        format!("rank of node {node} vs its level-{level} width"),
                        layout.width(level),
                        node_ranks[node],
                    ));
                }
            }
        }
        Ok(HodlrMatrix {
            tree,
            layout,
            node_ranks,
            ubig,
            vbig: None,
            diag,
        })
    }

    /// Matrix size `N`.
    pub fn n(&self) -> usize {
        self.tree.n()
    }

    /// The underlying cluster tree.
    pub fn tree(&self) -> &ClusterTree {
        &self.tree
    }

    /// The column layout of the flattened bases.
    pub fn layout(&self) -> &LevelLayout {
        &self.layout
    }

    /// Number of tree levels `L`.
    pub fn levels(&self) -> usize {
        self.tree.levels()
    }

    /// The flattened left bases (`Ubig` in the paper).
    pub fn ubig(&self) -> &DenseMatrix<T> {
        &self.ubig
    }

    /// The flattened right bases (`Vbig` in the paper).  For Hermitian
    /// matrices built with [`HodlrMatrix::from_parts_symmetric`] this is the
    /// same storage as [`HodlrMatrix::ubig`].
    pub fn vbig(&self) -> &DenseMatrix<T> {
        self.vbig.as_ref().unwrap_or(&self.ubig)
    }

    /// `true` when the right bases are shared with the left ones (the
    /// matrix was assembled as Hermitian and stores half the basis data).
    pub fn shares_bases(&self) -> bool {
        self.vbig.is_none()
    }

    /// The true (unpadded) rank of a node's low-rank basis.
    pub fn node_rank(&self, node: NodeId) -> usize {
        self.node_ranks[node]
    }

    /// Leaf diagonal blocks, in leaf order.
    pub fn diag_blocks(&self) -> &[DenseMatrix<T>] {
        &self.diag
    }

    /// The dense diagonal block of the `idx`-th leaf.
    pub fn diag_block(&self, idx: usize) -> &DenseMatrix<T> {
        &self.diag[idx]
    }

    /// Add `shift` to every entry of the main diagonal, in place.
    ///
    /// The main diagonal lives entirely inside the leaf diagonal blocks,
    /// so the off-diagonal low-rank factors are untouched — callers that
    /// sweep a diagonal regularisation (a GP noise nugget, a Tikhonov
    /// term) can reuse one compression across candidates instead of
    /// recompressing per shift.
    pub fn shift_diagonal(&mut self, shift: T) {
        for block in &mut self.diag {
            let n = block.rows();
            for i in 0..n {
                block[(i, i)] += shift;
            }
        }
    }

    /// View of `U_alpha` (padded to the level width) inside `Ubig`.
    pub fn u_block(&self, node: NodeId) -> MatRef<'_, T> {
        self.basis_block(&self.ubig, node)
    }

    /// View of `V_alpha` (padded to the level width) inside `Vbig`.
    pub fn v_block(&self, node: NodeId) -> MatRef<'_, T> {
        self.basis_block(self.vbig(), node)
    }

    fn basis_block<'a>(&'a self, big: &'a DenseMatrix<T>, node: NodeId) -> MatRef<'a, T> {
        let level = self.tree.level_of(node);
        assert!(level >= 1, "the root has no off-diagonal basis");
        let rows = self.tree.range(node);
        let cols = self.layout.col_range(level);
        if cols.is_empty() {
            // A zero-rank level: hand back an empty view of the right height.
            return MatRef::from_parts(&[], rows.len(), 0, rows.len().max(1));
        }
        big.block(rows.start, cols.start, rows.len(), cols.len())
    }

    /// Maximum off-diagonal rank over all nodes (the paper's "rank of the
    /// HODLR matrix", Definition 2).
    pub fn max_rank(&self) -> usize {
        self.node_ranks.iter().copied().max().unwrap_or(0)
    }

    /// Per-level maximum off-diagonal rank, shallowest level (level 1)
    /// first — the format of the appendix rank tables.
    pub fn rank_profile(&self) -> Vec<usize> {
        (1..=self.levels())
            .map(|l| {
                self.tree
                    .level_nodes(l)
                    .map(|node| self.node_ranks[node])
                    .max()
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Number of scalar entries stored (diagonal blocks + padded bases;
    /// shared-basis Hermitian matrices count `Ubig` once).
    pub fn storage_entries(&self) -> usize {
        let diag: usize = self.diag.iter().map(|d| d.rows() * d.cols()).sum();
        let vbig: usize = self.vbig.as_ref().map_or(0, |v| v.rows() * v.cols());
        diag + self.ubig.rows() * self.ubig.cols() + vbig
    }

    /// Storage in bytes.
    pub fn storage_bytes(&self) -> u64 {
        (self.storage_entries() * std::mem::size_of::<T>()) as u64
    }

    /// Storage in GiB (the `mem` column of the paper's tables).
    pub fn memory_gib(&self) -> f64 {
        self.storage_bytes() as f64 / (1u64 << 30) as f64
    }

    /// Matrix-vector product `y = A x` using the HODLR structure
    /// (`O(N log N)` work).
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::zero(); self.n()];
        self.matvec_into(x, &mut y);
        y
    }

    /// In-place matrix-vector product `y = A x`, for callers (e.g. Krylov
    /// hot loops) that reuse the output buffer.
    pub fn matvec_into(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.n(), "matvec: x has the wrong length");
        assert_eq!(y.len(), self.n(), "matvec: y has the wrong length");
        y.fill(T::zero());
        // Leaf diagonal blocks.
        for (leaf_idx, leaf) in self.tree.leaves().enumerate() {
            let range = self.tree.range(leaf);
            let d = &self.diag[leaf_idx];
            hodlr_la::gemv(
                T::one(),
                d.as_ref(),
                Op::None,
                &x[range.clone()],
                T::one(),
                &mut y[range],
            );
        }
        // Off-diagonal low-rank blocks, one sibling pair per internal node.
        for gamma in self.tree.internal_nodes() {
            let (alpha, beta) = self.tree.children(gamma).expect("internal node");
            self.apply_off_diag(alpha, beta, x, y);
            self.apply_off_diag(beta, alpha, x, y);
        }
    }

    /// `y[I_row] += U_row (V_col^* x[I_col])`.
    fn apply_off_diag(&self, row_node: NodeId, col_node: NodeId, x: &[T], y: &mut [T]) {
        let row_range = self.tree.range(row_node);
        let col_range = self.tree.range(col_node);
        let u = self.u_block(row_node);
        let v = self.v_block(col_node);
        let width = u.cols();
        let mut tmp = vec![T::zero(); width];
        hodlr_la::gemv(
            T::one(),
            v,
            Op::ConjTrans,
            &x[col_range],
            T::zero(),
            &mut tmp,
        );
        hodlr_la::gemv(T::one(), u, Op::None, &tmp, T::one(), &mut y[row_range]);
    }

    /// Adjoint matrix-vector product `y = A^H x`, also `O(N log N)`: the
    /// leaf blocks apply conjugate-transposed and each low-rank block
    /// `U_row V_col^H` contributes `V_col (U_row^H x)` to the mirrored
    /// index range.  The condition estimator drives this as the
    /// `apply_adjoint` side of Hager/Higham.
    pub fn matvec_adjoint(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::zero(); self.n()];
        self.matvec_adjoint_into(x, &mut y);
        y
    }

    /// In-place adjoint matrix-vector product `y = A^H x`.
    pub fn matvec_adjoint_into(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.n(), "matvec_adjoint: x has the wrong length");
        assert_eq!(y.len(), self.n(), "matvec_adjoint: y has the wrong length");
        y.fill(T::zero());
        for (leaf_idx, leaf) in self.tree.leaves().enumerate() {
            let range = self.tree.range(leaf);
            let d = &self.diag[leaf_idx];
            hodlr_la::gemv(
                T::one(),
                d.as_ref(),
                Op::ConjTrans,
                &x[range.clone()],
                T::one(),
                &mut y[range],
            );
        }
        for gamma in self.tree.internal_nodes() {
            let (alpha, beta) = self.tree.children(gamma).expect("internal node");
            self.apply_off_diag_adjoint(alpha, beta, x, y);
            self.apply_off_diag_adjoint(beta, alpha, x, y);
        }
    }

    /// Adjoint of the `(row_node, col_node)` low-rank block:
    /// `y[I_col] += V_col (U_row^H x[I_row])`.
    fn apply_off_diag_adjoint(&self, row_node: NodeId, col_node: NodeId, x: &[T], y: &mut [T]) {
        let row_range = self.tree.range(row_node);
        let col_range = self.tree.range(col_node);
        let u = self.u_block(row_node);
        let v = self.v_block(col_node);
        let width = u.cols();
        let mut tmp = vec![T::zero(); width];
        hodlr_la::gemv(
            T::one(),
            u,
            Op::ConjTrans,
            &x[row_range],
            T::zero(),
            &mut tmp,
        );
        hodlr_la::gemv(T::one(), v, Op::None, &tmp, T::one(), &mut y[col_range]);
    }

    /// Hager/Higham estimate of `‖A‖₁` from a handful of matvec /
    /// adjoint-matvec pairs (`O(N log N)` each) — the `‖A‖` of the
    /// verification layer's scaled residual, without densifying.
    pub fn norm1_est(&self) -> f64 {
        let mut apply = |x: &mut [T]| -> Result<(), std::convert::Infallible> {
            let y = self.matvec(x);
            x.copy_from_slice(&y);
            Ok(())
        };
        let mut apply_adjoint = |x: &mut [T]| -> Result<(), std::convert::Infallible> {
            let y = self.matvec_adjoint(x);
            x.copy_from_slice(&y);
            Ok(())
        };
        let Ok(est) = hodlr_la::one_norm_est(self.n(), &mut apply, &mut apply_adjoint);
        est
    }

    /// Matrix-matrix product `Y = A X` column by column.
    pub fn matmat(&self, x: &DenseMatrix<T>) -> DenseMatrix<T> {
        assert_eq!(x.rows(), self.n());
        let mut y = DenseMatrix::zeros(self.n(), x.cols());
        for j in 0..x.cols() {
            let yj = self.matvec(x.col(j));
            y.col_mut(j).copy_from_slice(&yj);
        }
        y
    }

    /// Materialise the matrix densely (tests and small problems only).
    pub fn to_dense(&self) -> DenseMatrix<T> {
        let n = self.n();
        let mut a = DenseMatrix::zeros(n, n);
        for (leaf_idx, leaf) in self.tree.leaves().enumerate() {
            let range = self.tree.range(leaf);
            a.set_block(range.start, range.start, &self.diag[leaf_idx]);
        }
        for gamma in self.tree.internal_nodes() {
            let (alpha, beta) = self.tree.children(gamma).expect("internal node");
            self.write_off_diag(&mut a, alpha, beta);
            self.write_off_diag(&mut a, beta, alpha);
        }
        a
    }

    fn write_off_diag(&self, a: &mut DenseMatrix<T>, row_node: NodeId, col_node: NodeId) {
        let row_range = self.tree.range(row_node);
        let col_range = self.tree.range(col_node);
        let u = self.u_block(row_node);
        let v = self.v_block(col_node);
        let mut block = DenseMatrix::zeros(row_range.len(), col_range.len());
        gemm(
            T::one(),
            u,
            Op::None,
            v,
            Op::ConjTrans,
            T::zero(),
            block.as_mut(),
        );
        a.set_block(row_range.start, col_range.start, &block);
    }

    /// Relative residual `||b - A x|| / ||b||` of a candidate solution
    /// (the `relres` column of the paper's tables).
    pub fn relative_residual(&self, x: &[T], b: &[T]) -> T::Real {
        let ax = self.matvec(x);
        let mut diff = T::Real::zero();
        let mut bnorm = T::Real::zero();
        for i in 0..b.len() {
            diff += (b[i] - ax[i]).abs_sqr();
            bnorm += b[i].abs_sqr();
        }
        norms::relative_residual(diff.sqrt_real(), bnorm.sqrt_real())
    }
}

/// Build a random, exactly-representable, strictly diagonally dominant HODLR
/// matrix — the workhorse of the solver correctness tests (an exact HODLR
/// matrix means the solvers must reproduce the dense solution to machine
/// precision, Theorem 1).
pub fn random_hodlr<T: Scalar, R: rand::Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    levels: usize,
    rank: usize,
) -> HodlrMatrix<T> {
    let tree = ClusterTree::uniform(n, levels);
    let layout = LevelLayout::uniform(levels, rank);
    let w = layout.total_cols();
    let mut ubig: DenseMatrix<T> = DenseMatrix::zeros(n, w);
    let mut vbig: DenseMatrix<T> = DenseMatrix::zeros(n, w);
    let mut node_ranks = vec![0usize; tree.num_nodes() + 1];

    for level in 1..=levels {
        let cols = layout.col_range(level);
        for node in tree.level_nodes(level) {
            node_ranks[node] = rank;
            let rows = tree.range(node);
            for j in cols.clone() {
                for i in rows.clone() {
                    ubig[(i, j)] = hodlr_la::random::random_scalar(rng);
                    vbig[(i, j)] = hodlr_la::random::random_scalar(rng);
                }
            }
        }
    }

    // Diagonal blocks shifted to make the whole matrix strictly diagonally
    // dominant: off-diagonal row sums are bounded by L * rank * max|U||V|
    // * N, so a shift proportional to that is comfortably sufficient.
    let shift = T::from_f64((levels.max(1) * rank.max(1)) as f64 * n as f64);
    let diag: Vec<DenseMatrix<T>> = tree
        .leaves()
        .map(|leaf| {
            let size = tree.node_size(leaf);
            let mut d: DenseMatrix<T> = hodlr_la::random::random_matrix(rng, size, size);
            for i in 0..size {
                d[(i, i)] += shift;
            }
            d
        })
        .collect();

    HodlrMatrix::from_parts(tree, layout, node_ranks, ubig, vbig, diag)
        .expect("random_hodlr assembles consistent parts")
}

/// Build a random, exactly-representable Hermitian positive-definite HODLR
/// matrix with shared bases (`V_alpha = U_alpha`) — the workhorse of the
/// symmetric-solver tests.
///
/// Hermitian symmetry comes from the shared bases plus Hermitian leaf
/// blocks; positive definiteness from a diagonal shift that makes the whole
/// matrix strictly diagonally dominant with a positive real diagonal
/// (Gershgorin).
pub fn random_hodlr_spd<T: Scalar, R: rand::Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    levels: usize,
    rank: usize,
) -> HodlrMatrix<T> {
    let tree = ClusterTree::uniform(n, levels);
    let layout = LevelLayout::uniform(levels, rank);
    let w = layout.total_cols();
    let mut ubig: DenseMatrix<T> = DenseMatrix::zeros(n, w);
    let mut node_ranks = vec![0usize; tree.num_nodes() + 1];

    for level in 1..=levels {
        let cols = layout.col_range(level);
        for node in tree.level_nodes(level) {
            node_ranks[node] = rank;
            let rows = tree.range(node);
            for j in cols.clone() {
                for i in rows.clone() {
                    ubig[(i, j)] = hodlr_la::random::random_scalar(rng);
                }
            }
        }
    }

    let shift = T::from_f64((levels.max(1) * rank.max(1)) as f64 * n as f64);
    let diag: Vec<DenseMatrix<T>> = tree
        .leaves()
        .map(|leaf| {
            let size = tree.node_size(leaf);
            let g: DenseMatrix<T> = hodlr_la::random::random_matrix(rng, size, size);
            let gh = g.conj_transpose();
            let mut d = g;
            d.axpy(T::one(), &gh);
            d.scale_in_place(T::from_f64(0.5));
            for i in 0..size {
                d[(i, i)] += shift;
            }
            d
        })
        .collect();

    HodlrMatrix::from_parts_symmetric(tree, layout, node_ranks, ubig, diag)
        .expect("random_hodlr_spd assembles consistent parts")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr_la::Complex64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_hodlr_shapes_and_profile() {
        let mut rng = StdRng::seed_from_u64(1);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 64, 3, 4);
        assert_eq!(m.n(), 64);
        assert_eq!(m.levels(), 3);
        assert_eq!(m.max_rank(), 4);
        assert_eq!(m.rank_profile(), vec![4, 4, 4]);
        assert_eq!(m.ubig().cols(), 12);
        assert_eq!(m.diag_blocks().len(), 8);
        assert_eq!(m.node_rank(5), 4);
        // Storage: 8 leaf blocks of 8x8 plus two 64x12 bases.
        assert_eq!(m.storage_entries(), 8 * 64 + 2 * 64 * 12);
        assert!(m.memory_gib() > 0.0);
    }

    #[test]
    fn symmetric_storage_shares_bases_and_is_hermitian() {
        let mut rng = StdRng::seed_from_u64(11);
        let m: HodlrMatrix<Complex64> = random_hodlr_spd(&mut rng, 64, 3, 4);
        assert!(m.shares_bases());
        // Half the basis entries of the general format.
        assert_eq!(m.storage_entries(), 8 * 64 + 64 * 12);
        let dense = m.to_dense();
        let diff = dense.sub(&dense.conj_transpose()).norm_max();
        assert!(diff < 1e-14, "not Hermitian: {diff}");
        // matvec still agrees with dense through the shared-basis views.
        let x: Vec<Complex64> = (0..64)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let y = m.matvec(&x);
        let y_ref = dense.matvec(&x);
        for (a, b) in y.iter().zip(y_ref.iter()) {
            assert!((*a - *b).abs() < 1e-10);
        }
        let general: HodlrMatrix<f64> = random_hodlr(&mut rng, 64, 3, 4);
        assert!(!general.shares_bases());
    }

    #[test]
    fn matvec_matches_dense() {
        let mut rng = StdRng::seed_from_u64(2);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 48, 3, 3);
        let dense = m.to_dense();
        let x: Vec<f64> = (0..48).map(|i| (i as f64 * 0.37).sin()).collect();
        let y = m.matvec(&x);
        let y_ref = dense.matvec(&x);
        for (a, b) in y.iter().zip(y_ref.iter()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn matvec_matches_dense_complex() {
        let mut rng = StdRng::seed_from_u64(3);
        let m: HodlrMatrix<Complex64> = random_hodlr(&mut rng, 32, 2, 2);
        let dense = m.to_dense();
        let x: Vec<Complex64> = (0..32)
            .map(|i| Complex64::new((i as f64).cos(), (i as f64 * 0.5).sin()))
            .collect();
        let y = m.matvec(&x);
        let y_ref = dense.matvec(&x);
        for (a, b) in y.iter().zip(y_ref.iter()) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn matvec_adjoint_matches_dense_conj_transpose() {
        let mut rng = StdRng::seed_from_u64(51);
        let m: HodlrMatrix<Complex64> = random_hodlr(&mut rng, 48, 3, 3);
        let dense_h = m.to_dense().conj_transpose();
        let x: Vec<Complex64> = (0..48)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let y = m.matvec_adjoint(&x);
        let y_ref = dense_h.matvec(&x);
        for (a, b) in y.iter().zip(y_ref.iter()) {
            assert!((*a - *b).abs() < 1e-10);
        }

        let mr: HodlrMatrix<f64> = random_hodlr(&mut rng, 40, 2, 3);
        let dense_t = mr.to_dense().conj_transpose();
        let xr: Vec<f64> = (0..40).map(|i| (i as f64 * 0.31).cos()).collect();
        let yr = mr.matvec_adjoint(&xr);
        let yr_ref = dense_t.matvec(&xr);
        for (a, b) in yr.iter().zip(yr_ref.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn norm1_est_tracks_the_dense_one_norm() {
        let mut rng = StdRng::seed_from_u64(52);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 64, 3, 4);
        let exact = hodlr_la::norms::norm_one(m.to_dense().as_ref());
        let est = m.norm1_est();
        assert!(est <= exact * (1.0 + 1e-12), "est {est} > exact {exact}");
        assert!(est >= exact / 3.0, "est {est} too small vs {exact}");
    }

    #[test]
    fn matmat_matches_repeated_matvec() {
        let mut rng = StdRng::seed_from_u64(4);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 40, 2, 3);
        let x: DenseMatrix<f64> = hodlr_la::random::random_matrix(&mut rng, 40, 3);
        let y = m.matmat(&x);
        for j in 0..3 {
            let yj = m.matvec(x.col(j));
            for i in 0..40 {
                assert!((y[(i, j)] - yj[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 32, 2, 2);
        let x: Vec<f64> = (0..32).map(|i| i as f64 - 16.0).collect();
        let b = m.matvec(&x);
        assert!(m.relative_residual(&x, &b) < 1e-14);
        // A perturbed solution has a visible residual.
        let mut x2 = x.clone();
        x2[0] += 1.0;
        assert!(m.relative_residual(&x2, &b) > 1e-6);
    }

    #[test]
    fn single_level_tree_is_just_a_dense_block() {
        let mut rng = StdRng::seed_from_u64(6);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 10, 0, 0);
        assert_eq!(m.levels(), 0);
        assert_eq!(m.ubig().cols(), 0);
        let dense = m.to_dense();
        assert_eq!(dense.rows(), 10);
        let x = vec![1.0; 10];
        let y = m.matvec(&x);
        let y_ref = dense.matvec(&x);
        for (a, b) in y.iter().zip(y_ref.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn from_parts_validates_diag_count() {
        let tree = ClusterTree::uniform(8, 1);
        let layout = LevelLayout::uniform(1, 1);
        let err = HodlrMatrix::<f64>::from_parts(
            tree,
            layout,
            vec![0; 4],
            DenseMatrix::zeros(8, 1),
            DenseMatrix::zeros(8, 1),
            vec![DenseMatrix::zeros(4, 4)],
        )
        .unwrap_err();
        match err {
            HodlrError::DimensionMismatch {
                context,
                expected: 2,
                found: 1,
            } => assert!(context.contains("diagonal blocks"), "{context}"),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn from_parts_names_the_offending_leaf_block() {
        let mut rng = StdRng::seed_from_u64(7);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 16, 1, 1);
        let bad_diag = vec![m.diag_block(0).clone(), DenseMatrix::zeros(5, 5)];
        let err = HodlrMatrix::from_parts(
            m.tree().clone(),
            m.layout().clone(),
            (0..=m.tree().num_nodes()).map(|_| 1).collect(),
            m.ubig().clone(),
            m.vbig().clone(),
            bad_diag,
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("leaf 1"), "{msg}");
        assert!(msg.contains("expected 8, found 5"), "{msg}");
    }
}
