//! The symmetric (Hermitian) fast path of the level-by-level factorization.
//!
//! When the HODLR matrix is Hermitian — shared off-diagonal bases
//! (`V_alpha = U_alpha`, see
//! [`HodlrMatrix::from_parts_symmetric`](crate::matrix::HodlrMatrix::from_parts_symmetric))
//! plus Hermitian leaf diagonal blocks — every small factorization of
//! Algorithm 1 can be replaced by a symmetric one at half the flops:
//!
//! * every **leaf diagonal block** is a principal submatrix of `A`, so for a
//!   positive-definite `A` it is positive definite and admits a Cholesky
//!   (`L L^*`) factorization at `n^3/3` flops instead of LU's `2 n^3/3`;
//! * every **coupling matrix** `K_gamma = [[U_a^* Y_a, I], [I, U_b^* Y_b]]`
//!   is Hermitian but *indefinite* (its off-diagonal identity blocks give it
//!   eigenvalues on both sides of zero), so it is factorized through the
//!   fallback ladder `LL^* -> LDL^* -> Bunch-Kaufman` of
//!   [`hodlr_la::cholesky`] — in practice Bunch-Kaufman, still a symmetric
//!   `n^3/3` cost.
//!
//! The [`Symmetry`] knob selects how *leaf* failures are handled:
//! [`Symmetry::PositiveDefinite`] demands Cholesky and surfaces
//! [`HodlrError::NotPositiveDefinite`] if a pivot fails, while
//! [`Symmetry::Hermitian`] quietly walks down the same fallback ladder.
//!
//! The sweep structure (operation order, gemm shapes, update order) is a
//! line-for-line mirror of [`crate::serial`], so the symmetric path inherits
//! the serial path's bitwise-reproducibility contract; the batched
//! counterpart is [`crate::gpu_symmetric`], which reuses the *same*
//! per-block kernels and therefore agrees bitwise with this module.

use crate::layout::LevelLayout;
use crate::matrix::HodlrMatrix;
use crate::serial::build_coupling_matrix;
use hodlr_la::{
    gemm, DenseMatrix, HodlrError, Op, Scalar, SymmetricFactor, SymmetricKind, SymmetricPolicy,
};
use hodlr_tree::ClusterTree;

/// Declared symmetry structure of a HODLR matrix, selecting the
/// factorization path.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Symmetry {
    /// No symmetry is assumed; the pivoted-LU path of
    /// [`crate::serial`] / [`crate::gpu`] is used.
    #[default]
    General,
    /// Hermitian positive definite: leaf diagonal blocks are factorized with
    /// a strict Cholesky, and a failed pivot is reported as
    /// [`HodlrError::NotPositiveDefinite`].
    PositiveDefinite,
    /// Hermitian but possibly indefinite: leaf diagonal blocks walk the
    /// fallback ladder `LL^* -> LDL^* -> Bunch-Kaufman` instead of erroring.
    Hermitian,
}

impl Symmetry {
    /// Whether this symmetry selects the symmetric factorization path.
    pub fn is_symmetric(self) -> bool {
        !matches!(self, Symmetry::General)
    }

    /// The [`SymmetricPolicy`] applied to *leaf* diagonal blocks.  Coupling
    /// matrices are Hermitian indefinite by construction and always use
    /// [`SymmetricPolicy::Fallback`] regardless of this value.
    pub fn leaf_policy(self) -> SymmetricPolicy {
        match self {
            Symmetry::PositiveDefinite => SymmetricPolicy::Strict,
            Symmetry::General | Symmetry::Hermitian => SymmetricPolicy::Fallback,
        }
    }

    /// Stable lowercase label used by benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            Symmetry::General => "general",
            Symmetry::PositiveDefinite => "positive_definite",
            Symmetry::Hermitian => "hermitian",
        }
    }
}

/// The output of the symmetric Algorithm-1 sweep: the transformed bases
/// `Ybig`, the (copied) original bases playing the `Vbig` role, and the
/// symmetric factorization of every leaf diagonal block and coupling matrix.
#[derive(Clone, Debug)]
pub struct SerialSymmetricFactorization<T: Scalar> {
    tree: ClusterTree,
    layout: LevelLayout,
    symmetry: Symmetry,
    ybig: DenseMatrix<T>,
    vbig: DenseMatrix<T>,
    diag_fact: Vec<SymmetricFactor<T>>,
    /// `k_fact[l]` holds, for every node at level `l` (in node order), the
    /// symmetric factorization of its coupling matrix `K` (levels `0..L`).
    k_fact: Vec<Vec<SymmetricFactor<T>>>,
}

impl<T: Scalar> HodlrMatrix<T> {
    /// Factorize a Hermitian matrix with the symmetric variant of
    /// Algorithm 1 (sequential).
    ///
    /// The caller asserts the matrix is Hermitian-valued; the symmetric
    /// kernels read only the lower triangles of the small blocks, so a
    /// non-Hermitian input silently factorizes its "Hermitian part".
    /// Matrices built with
    /// [`build_from_source_symmetric`](crate::builder::build_from_source_symmetric)
    /// or [`from_parts_symmetric`](HodlrMatrix::from_parts_symmetric) are
    /// Hermitian by construction.
    ///
    /// # Errors
    /// * [`HodlrError::InvalidConfig`] if `symmetry` is
    ///   [`Symmetry::General`] (use
    ///   [`factorize_serial`](HodlrMatrix::factorize_serial) instead);
    /// * [`HodlrError::NotPositiveDefinite`] if `symmetry` is
    ///   [`Symmetry::PositiveDefinite`] and a leaf Cholesky pivot fails,
    ///   naming the offending leaf and pivot;
    /// * [`HodlrError::SingularPivot`] if even the Bunch-Kaufman rung of the
    ///   fallback ladder hits a numerically singular pivot.
    pub fn factorize_symmetric(
        &self,
        symmetry: Symmetry,
    ) -> Result<SerialSymmetricFactorization<T>, HodlrError> {
        if !symmetry.is_symmetric() {
            return Err(HodlrError::config(
                "factorize_symmetric requires Symmetry::PositiveDefinite or Symmetry::Hermitian; \
                 use factorize_serial for Symmetry::General",
            ));
        }
        let tree = self.tree().clone();
        let layout = self.layout().clone();
        let n = self.n();
        let total_cols = layout.total_cols();
        let levels = tree.levels();
        let leaf_policy = symmetry.leaf_policy();

        // Ybig starts as a copy of Ubig; the original bases (shared U = V)
        // are kept for the V role of the solve sweep.
        let mut ybig = self.ubig().clone();
        let vbig = self.vbig().clone();

        // --- leaf level: factorize D_alpha and solve its rows of Ybig ------
        let mut diag_fact = Vec::with_capacity(tree.num_leaves());
        for (leaf_idx, leaf) in tree.leaves().enumerate() {
            let range = tree.range(leaf);
            let f = SymmetricFactor::new(self.diag_block(leaf_idx), leaf_policy)
                .map_err(|e| e.into_hodlr(format!("diagonal block of leaf {leaf_idx}")))?;
            if total_cols > 0 {
                let block = ybig.block_mut(range.start, 0, range.len(), total_cols);
                f.solve_in_place(block);
            }
            diag_fact.push(f);
        }

        // --- internal levels, deepest first -------------------------------
        let mut k_fact: Vec<Vec<SymmetricFactor<T>>> = vec![Vec::new(); levels];
        for level in (0..levels).rev() {
            let child_level = level + 1;
            let w = layout.width(child_level);
            let prefix = layout.prefix_cols(level);
            let child_cols = layout.col_range(child_level);
            let mut level_factors = Vec::with_capacity(1 << level);

            for gamma in tree.level_nodes(level) {
                let (alpha, beta) = tree.children(gamma).expect("internal node");
                let ra = tree.range(alpha);
                let rb = tree.range(beta);

                if w == 0 {
                    // Zero-rank level: the coupling matrix is empty and the
                    // update is a no-op; store a trivial factorization.
                    let empty =
                        SymmetricFactor::new(&DenseMatrix::identity(0), SymmetricPolicy::Fallback)
                            .expect("empty factorization cannot fail");
                    level_factors.push(empty);
                    continue;
                }

                // T_alpha = U_alpha^* Y_alpha and T_beta = U_beta^* Y_beta.
                let v_a = self.vbig().block(ra.start, child_cols.start, ra.len(), w);
                let v_b = self.vbig().block(rb.start, child_cols.start, rb.len(), w);
                let y_a = ybig
                    .block(ra.start, child_cols.start, ra.len(), w)
                    .to_owned();
                let y_b = ybig
                    .block(rb.start, child_cols.start, rb.len(), w)
                    .to_owned();

                // K is Hermitian indefinite: always the fallback ladder.
                let k = build_coupling_matrix(&v_a, &v_b, &y_a, &y_b);
                let k_f = SymmetricFactor::from_matrix(k, SymmetricPolicy::Fallback)
                    .map_err(|e| e.into_hodlr(format!("coupling matrix of node {gamma}")))?;

                if prefix > 0 {
                    // Right-hand sides (13): stack V_alpha^* Ybig(I_alpha, 1:prefix)
                    // over V_beta^* Ybig(I_beta, 1:prefix).
                    let mut rhs = DenseMatrix::<T>::zeros(2 * w, prefix);
                    {
                        let yb_a = ybig.block(ra.start, 0, ra.len(), prefix);
                        let mut top = rhs.block_mut(0, 0, w, prefix);
                        gemm(
                            T::one(),
                            v_a,
                            Op::ConjTrans,
                            yb_a,
                            Op::None,
                            T::zero(),
                            top.reborrow(),
                        );
                    }
                    {
                        let yb_b = ybig.block(rb.start, 0, rb.len(), prefix);
                        let mut bottom = rhs.block_mut(w, 0, w, prefix);
                        gemm(
                            T::one(),
                            v_b,
                            Op::ConjTrans,
                            yb_b,
                            Op::None,
                            T::zero(),
                            bottom.reborrow(),
                        );
                    }
                    k_f.solve_in_place(rhs.as_mut());

                    // Update (14): Ybig(I_gamma, 1:prefix) -= [Y_a W_a; Y_b W_b].
                    let w_a = rhs.block(0, 0, w, prefix);
                    let w_b = rhs.block(w, 0, w, prefix);
                    let mut upd_a = ybig.block_mut(ra.start, 0, ra.len(), prefix);
                    gemm(
                        -T::one(),
                        y_a.as_ref(),
                        Op::None,
                        w_a,
                        Op::None,
                        T::one(),
                        upd_a.reborrow(),
                    );
                    let mut upd_b = ybig.block_mut(rb.start, 0, rb.len(), prefix);
                    gemm(
                        -T::one(),
                        y_b.as_ref(),
                        Op::None,
                        w_b,
                        Op::None,
                        T::one(),
                        upd_b.reborrow(),
                    );
                }

                level_factors.push(k_f);
            }
            k_fact[level] = level_factors;
        }

        debug_assert_eq!(ybig.rows(), n);
        Ok(SerialSymmetricFactorization {
            tree,
            layout,
            symmetry,
            ybig,
            vbig,
            diag_fact,
            k_fact,
        })
    }
}

impl<T: Scalar> SerialSymmetricFactorization<T> {
    /// The transformed bases `Ybig`.
    pub fn ybig(&self) -> &DenseMatrix<T> {
        &self.ybig
    }

    /// The cluster tree the factorization was computed over.
    pub fn tree(&self) -> &ClusterTree {
        &self.tree
    }

    /// The column layout shared with the original matrix.
    pub fn layout(&self) -> &LevelLayout {
        &self.layout
    }

    /// The [`Symmetry`] the factorization was requested with.
    pub fn symmetry(&self) -> Symmetry {
        self.symmetry
    }

    /// Which factorization rung each leaf diagonal block landed on, in leaf
    /// order (all [`SymmetricKind::Llt`] for an SPD matrix).
    pub fn leaf_kinds(&self) -> Vec<&SymmetricKind> {
        self.diag_fact.iter().map(|f| f.kind()).collect()
    }

    /// The stored coupling-matrix factorizations of one level, in node order.
    pub fn coupling_factors(&self, level: usize) -> &[SymmetricFactor<T>] {
        &self.k_fact[level]
    }

    /// Solve `A x = b` for a single right-hand side.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let b_mat = DenseMatrix::from_col_major(b.len(), 1, b.to_vec());
        self.solve_matrix(&b_mat).into_data()
    }

    /// Blocked multi-RHS solve; see
    /// [`SerialFactorization::solve_block`](crate::serial::SerialFactorization::solve_block).
    ///
    /// # Panics
    /// Panics if any right-hand side has the wrong length.
    pub fn solve_block(&self, rhs: &[impl AsRef<[T]>]) -> Vec<Vec<T>> {
        let n = self.tree.n();
        let k = rhs.len();
        let mut b = DenseMatrix::<T>::zeros(n, k);
        for (j, col) in rhs.iter().enumerate() {
            let col = col.as_ref();
            assert_eq!(col.len(), n, "right-hand side {j} has the wrong length");
            b.col_mut(j).copy_from_slice(col);
        }
        let x = self.solve_matrix(&b);
        (0..k).map(|j| x.col(j).to_vec()).collect()
    }

    /// Solve `A X = B` for multiple right-hand sides (the symmetric
    /// Algorithm-2 sweep).
    ///
    /// # Panics
    /// Panics if `b` has the wrong number of rows.
    pub fn solve_matrix(&self, b: &DenseMatrix<T>) -> DenseMatrix<T> {
        assert_eq!(
            b.rows(),
            self.tree.n(),
            "right-hand side has the wrong row count"
        );
        let nrhs = b.cols();
        let mut x = b.clone();
        let levels = self.tree.levels();

        // Leaf sweep.
        for (leaf_idx, leaf) in self.tree.leaves().enumerate() {
            let range = self.tree.range(leaf);
            let block = x.block_mut(range.start, 0, range.len(), nrhs);
            self.diag_fact[leaf_idx].solve_in_place(block);
        }

        // Level sweep, deepest first.
        for level in (0..levels).rev() {
            let child_level = level + 1;
            let w = self.layout.width(child_level);
            if w == 0 {
                continue;
            }
            let child_cols = self.layout.col_range(child_level);
            for (node_idx, gamma) in self.tree.level_nodes(level).enumerate() {
                let (alpha, beta) = self.tree.children(gamma).expect("internal node");
                let ra = self.tree.range(alpha);
                let rb = self.tree.range(beta);

                // w_rhs = [V_a^* x_a; V_b^* x_b] (Eq. 15).
                let v_a = self.vbig.block(ra.start, child_cols.start, ra.len(), w);
                let v_b = self.vbig.block(rb.start, child_cols.start, rb.len(), w);
                let mut rhs = DenseMatrix::<T>::zeros(2 * w, nrhs);
                {
                    let x_a = x.block(ra.start, 0, ra.len(), nrhs);
                    let mut top = rhs.block_mut(0, 0, w, nrhs);
                    gemm(
                        T::one(),
                        v_a,
                        Op::ConjTrans,
                        x_a,
                        Op::None,
                        T::zero(),
                        top.reborrow(),
                    );
                }
                {
                    let x_b = x.block(rb.start, 0, rb.len(), nrhs);
                    let mut bottom = rhs.block_mut(w, 0, w, nrhs);
                    gemm(
                        T::one(),
                        v_b,
                        Op::ConjTrans,
                        x_b,
                        Op::None,
                        T::zero(),
                        bottom.reborrow(),
                    );
                }
                self.k_fact[level][node_idx].solve_in_place(rhs.as_mut());

                // x(I_gamma) -= [Y_a w_a; Y_b w_b] (Eq. 16).
                let y_a = self.ybig.block(ra.start, child_cols.start, ra.len(), w);
                let y_b = self.ybig.block(rb.start, child_cols.start, rb.len(), w);
                let w_a = rhs.block(0, 0, w, nrhs).to_owned();
                let w_b = rhs.block(w, 0, w, nrhs).to_owned();
                let mut x_a = x.block_mut(ra.start, 0, ra.len(), nrhs);
                gemm(
                    -T::one(),
                    y_a,
                    Op::None,
                    w_a.as_ref(),
                    Op::None,
                    T::one(),
                    x_a.reborrow(),
                );
                let mut x_b = x.block_mut(rb.start, 0, rb.len(), nrhs);
                gemm(
                    -T::one(),
                    y_b,
                    Op::None,
                    w_b.as_ref(),
                    Op::None,
                    T::one(),
                    x_b.reborrow(),
                );
            }
        }
        x
    }

    /// Log-determinant via the same product form as
    /// [`SerialFactorization::log_det`](crate::serial::SerialFactorization::log_det):
    /// leaves first, then coupling levels from the top split down, each 2x2
    /// coupling block contributing `(-1)^w det(K_gamma)`.
    ///
    /// Returns `(log|det(A)|, sign)`.  For a positive-definite matrix the
    /// sign is `1` and `log|det|` is the log-determinant itself.  Mirrored
    /// bitwise by
    /// [`GpuSymmetricSolver::log_det`](crate::GpuSymmetricSolver::log_det).
    pub fn log_det(&self) -> (T::Real, T) {
        let mut log_abs = T::Real::zero();
        let mut sign = T::one();
        for f in &self.diag_fact {
            let (la, s) = f.log_det();
            log_abs += la;
            sign *= s;
        }
        for (level, factors) in self.k_fact.iter().enumerate() {
            let w = if level < self.layout.levels() {
                self.layout.width(level + 1)
            } else {
                0
            };
            for f in factors {
                if f.order() == 0 {
                    continue;
                }
                let (la, s) = f.log_det();
                log_abs += la;
                sign *= s;
                if w % 2 == 1 {
                    sign = -sign;
                }
            }
        }
        (log_abs, sign)
    }

    /// Storage used by the factorization in scalar entries: the transformed
    /// bases, the original bases (V role), and the *triangular* leaf and
    /// coupling factors — the triangles are what the symmetric path saves
    /// over [`SerialFactorization`](crate::serial::SerialFactorization)'s
    /// square LU factors.
    pub fn storage_entries(&self) -> usize {
        let bases = 2 * self.ybig.rows() * self.ybig.cols();
        let diags: usize = self.diag_fact.iter().map(|f| f.storage_entries()).sum();
        let ks: usize = self
            .k_fact
            .iter()
            .flat_map(|level| level.iter().map(|f| f.storage_entries()))
            .sum();
        bases + diags + ks
    }

    /// Storage in GiB.
    pub fn memory_gib(&self) -> f64 {
        (self.storage_entries() * std::mem::size_of::<T>()) as f64 / (1u64 << 30) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{random_hodlr_spd, HodlrMatrix};
    use hodlr_la::{Complex64, LuFactor, RealScalar};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_spd<T: Scalar>(n: usize, levels: usize, rank: usize, seed: u64, tol: f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m: HodlrMatrix<T> = random_hodlr_spd(&mut rng, n, levels, rank);
        let f = m.factorize_symmetric(Symmetry::PositiveDefinite).unwrap();
        // Every leaf of an SPD matrix is SPD: strict Cholesky must succeed.
        assert!(f.leaf_kinds().iter().all(|k| **k == SymmetricKind::Llt));
        let b: Vec<T> = hodlr_la::random::random_vector(&mut rng, n);
        let x = f.solve(&b);
        assert!(
            m.relative_residual(&x, &b).to_f64() < tol,
            "residual too large"
        );
        // Agreement with the general (LU) serial path.
        let x_lu = m.factorize_serial().unwrap().solve(&b);
        for (a, r) in x.iter().zip(x_lu.iter()) {
            assert!((*a - *r).abs().to_f64() < tol);
        }
    }

    #[test]
    fn spd_solves_match_lu_path() {
        check_spd::<f64>(64, 3, 3, 71, 1e-9);
        check_spd::<f64>(101, 3, 2, 72, 1e-9);
        check_spd::<Complex64>(48, 2, 2, 73, 1e-9);
    }

    #[test]
    fn log_det_matches_dense_and_has_positive_sign() {
        let mut rng = StdRng::seed_from_u64(74);
        let m: HodlrMatrix<f64> = random_hodlr_spd(&mut rng, 64, 3, 2);
        let dense = m.to_dense();
        let f = m.factorize_symmetric(Symmetry::PositiveDefinite).unwrap();
        let (log_abs, sign) = f.log_det();
        let dense_lu = LuFactor::new(&dense).unwrap();
        let (ref_log, ref_sign) = dense_lu.log_det();
        assert!(
            (log_abs - ref_log).abs() < 1e-8 * ref_log.abs().max(1.0),
            "{log_abs} vs {ref_log}"
        );
        assert!((sign - ref_sign).abs() < 1e-8);
        assert!(sign > 0.0, "SPD determinant must be positive");
    }

    #[test]
    fn log_det_complex_hermitian() {
        let mut rng = StdRng::seed_from_u64(75);
        let m: HodlrMatrix<Complex64> = random_hodlr_spd(&mut rng, 48, 2, 2);
        let dense = m.to_dense();
        let f = m.factorize_symmetric(Symmetry::Hermitian).unwrap();
        let (log_abs, sign) = f.log_det();
        let dense_lu = LuFactor::new(&dense).unwrap();
        let (ref_log, ref_sign) = dense_lu.log_det();
        assert!((log_abs - ref_log).abs() < 1e-8 * ref_log.abs().max(1.0));
        assert!((sign - ref_sign).abs().to_f64() < 1e-8);
    }

    #[test]
    fn general_symmetry_is_rejected() {
        let mut rng = StdRng::seed_from_u64(76);
        let m: HodlrMatrix<f64> = random_hodlr_spd(&mut rng, 16, 1, 1);
        let err = m.factorize_symmetric(Symmetry::General).unwrap_err();
        assert!(matches!(err, HodlrError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn indefinite_leaf_errors_strictly_but_falls_back_for_hermitian() {
        let mut rng = StdRng::seed_from_u64(77);
        let m: HodlrMatrix<f64> = random_hodlr_spd(&mut rng, 32, 1, 1);
        // Flip a diagonal entry of leaf 1 far negative: still Hermitian,
        // but no longer positive definite.
        let mut diag: Vec<_> = m.diag_blocks().to_vec();
        let sz = diag[1].rows();
        diag[1][(sz / 2, sz / 2)] = -1e6;
        let indef = HodlrMatrix::from_parts_symmetric(
            m.tree().clone(),
            m.layout().clone(),
            (0..=m.tree().num_nodes()).map(|_| 1).collect(),
            m.ubig().clone(),
            diag,
        )
        .unwrap();

        let err = indef
            .factorize_symmetric(Symmetry::PositiveDefinite)
            .unwrap_err();
        match &err {
            HodlrError::NotPositiveDefinite { context } => {
                assert!(context.contains("leaf 1"), "{context}");
            }
            other => panic!("expected NotPositiveDefinite, got {other}"),
        }

        // The Hermitian policy walks the fallback ladder and still solves.
        let f = indef.factorize_symmetric(Symmetry::Hermitian).unwrap();
        assert!(f.leaf_kinds().iter().any(|k| **k != SymmetricKind::Llt));
        let b: Vec<f64> = hodlr_la::random::random_vector(&mut rng, 32);
        let x = f.solve(&b);
        assert!(indef.relative_residual(&x, &b) < 1e-8);
        // log_det sign must come out negative (one negative eigenvalue
        // direction dominates the flipped pivot).
        let dense_lu = LuFactor::new(&indef.to_dense()).unwrap();
        let (ref_log, ref_sign) = dense_lu.log_det();
        let (log_abs, sign) = f.log_det();
        assert!((log_abs - ref_log).abs() < 1e-8 * ref_log.abs().max(1.0));
        assert!((sign - ref_sign).abs() < 1e-8);
    }

    #[test]
    fn multiple_right_hand_sides_match_dense() {
        let mut rng = StdRng::seed_from_u64(78);
        let m: HodlrMatrix<f64> = random_hodlr_spd(&mut rng, 48, 2, 3);
        let dense = m.to_dense();
        let f = m.factorize_symmetric(Symmetry::PositiveDefinite).unwrap();
        let b: DenseMatrix<f64> = hodlr_la::random::random_matrix(&mut rng, 48, 5);
        let x = f.solve_matrix(&b);
        for j in 0..5 {
            let xj_ref = hodlr_la::lu::solve_dense(&dense, b.col(j)).unwrap();
            for i in 0..48 {
                assert!((x[(i, j)] - xj_ref[i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn symmetric_factorization_stores_less_than_lu() {
        let mut rng = StdRng::seed_from_u64(79);
        let m: HodlrMatrix<f64> = random_hodlr_spd(&mut rng, 256, 4, 3);
        let sym = m.factorize_symmetric(Symmetry::PositiveDefinite).unwrap();
        let lu = m.factorize_serial().unwrap();
        // The bases dominate, but the triangular factors strictly undercut
        // LU's square ones.
        assert!(sym.storage_entries() < lu.storage_entries());
    }

    #[test]
    fn zero_level_matrix_is_a_dense_cholesky() {
        let mut rng = StdRng::seed_from_u64(80);
        let m: HodlrMatrix<f64> = random_hodlr_spd(&mut rng, 20, 0, 0);
        let f = m.factorize_symmetric(Symmetry::PositiveDefinite).unwrap();
        let b: Vec<f64> = hodlr_la::random::random_vector(&mut rng, 20);
        let x = f.solve(&b);
        assert!(m.relative_residual(&x, &b) < 1e-12);
    }
}
