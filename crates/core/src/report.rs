//! The complexity model of Theorems 2–4.
//!
//! The paper derives, for a rank-`r` HODLR matrix of size `N` with leaf size
//! `m` and `L` tree levels:
//!
//! * storage of the matrix and its factorization:
//!   `m*N + 2*r*N*L = O(r N log N)` scalars (Theorem 2; the statement counts
//!   the `U` bases once since `Y` overwrites them — we count both `U` and
//!   `V`, as the storage listing above Theorem 2 does);
//! * factorization cost:
//!   `2/3 m^2 N + 2 m r N L + 2 r^2 N (L + L^2) = O(r^2 N log^2 N)`
//!   operations (Theorem 3);
//! * solve cost per right-hand side:
//!   `2 m N + 4 r N L = O(r N log N)` operations (Theorem 4).
//!
//! [`CostModel`] evaluates those formulas; [`ComplexityReport`] evaluates
//! them for a concrete [`HodlrMatrix`] so benchmarks can print analytic
//! flop counts next to the metered ones.

use crate::matrix::HodlrMatrix;
use hodlr_la::Scalar;

/// The parameters `(N, m, r, L)` of the paper's complexity analysis.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Problem size `N`.
    pub n: usize,
    /// Leaf (diagonal block) size `m`.
    pub leaf_size: usize,
    /// Off-diagonal rank `r`.
    pub rank: usize,
    /// Number of tree levels `L`.
    pub levels: usize,
}

impl CostModel {
    /// Storage of the HODLR matrix and its factorization, in scalar entries
    /// (Theorem 2, counting both `U` and `V` bases).
    pub fn storage_entries(&self) -> u64 {
        let (n, m, r, l) = self.as_u64();
        m * n + 2 * r * n * l
    }

    /// Operations required by the factorization (Theorem 3).
    pub fn factorization_flops(&self) -> u64 {
        let (n, m, r, l) = self.as_u64();
        2 * m * m * n / 3 + 2 * m * r * n * l + 2 * r * r * n * (l + l * l)
    }

    /// Operations required by the *symmetric* factorization — the Theorem-3
    /// formula with every dense factorization cost halved (`n^3/3`
    /// Cholesky-family factorizations instead of LU's `2 n^3/3`) while the
    /// gemm-shaped basis updates and triangular solves keep their cost:
    /// `1/3 m^2 N + 2 m r N L + 3/2 r^2 N (L + L^2)`.
    pub fn symmetric_factorization_flops(&self) -> u64 {
        let (n, m, r, l) = self.as_u64();
        m * m * n / 3 + 2 * m * r * n * l + 3 * r * r * n * (l + l * l) / 2
    }

    /// Operations required to solve one right-hand side (Theorem 4).
    pub fn solve_flops(&self) -> u64 {
        let (n, m, r, l) = self.as_u64();
        2 * m * n + 4 * r * n * l
    }

    fn as_u64(&self) -> (u64, u64, u64, u64) {
        (
            self.n as u64,
            self.leaf_size as u64,
            self.rank as u64,
            self.levels as u64,
        )
    }
}

/// Analytic complexity figures evaluated for a concrete HODLR matrix,
/// using its maximum leaf size and maximum off-diagonal rank.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ComplexityReport {
    /// The model parameters extracted from the matrix.
    pub model: CostModel,
    /// Predicted storage (scalar entries).
    pub storage_entries: u64,
    /// Predicted factorization operations.
    pub factorization_flops: u64,
    /// Predicted solve operations per right-hand side.
    pub solve_flops: u64,
    /// Actual stored entries of the matrix (diagonal blocks + padded bases).
    pub actual_storage_entries: u64,
}

impl ComplexityReport {
    /// Evaluate the model for a matrix.
    pub fn for_matrix<T: Scalar>(matrix: &HodlrMatrix<T>) -> Self {
        let model = CostModel {
            n: matrix.n(),
            leaf_size: matrix.tree().max_leaf_size(),
            rank: matrix.max_rank(),
            levels: matrix.levels(),
        };
        ComplexityReport {
            model,
            storage_entries: model.storage_entries(),
            factorization_flops: model.factorization_flops(),
            solve_flops: model.solve_flops(),
            actual_storage_entries: matrix.storage_entries() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::random_hodlr;
    use hodlr_batch::Device;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn formulas_match_hand_computed_values() {
        // N = 1024, m = 64, r = 8, L = 4.
        let model = CostModel {
            n: 1024,
            leaf_size: 64,
            rank: 8,
            levels: 4,
        };
        assert_eq!(model.storage_entries(), 64 * 1024 + 2 * 8 * 1024 * 4);
        assert_eq!(
            model.factorization_flops(),
            2 * 64 * 64 * 1024 / 3 + 2 * 64 * 8 * 1024 * 4 + 2 * 8 * 8 * 1024 * (4 + 16)
        );
        assert_eq!(model.solve_flops(), 2 * 64 * 1024 + 4 * 8 * 1024 * 4);
    }

    #[test]
    fn solve_cost_is_twice_the_basis_storage() {
        // The paper notes t_s = 2 * (storage touched per solve): every stored
        // entry of the factorization participates in one multiply-add.
        let model = CostModel {
            n: 4096,
            leaf_size: 32,
            rank: 5,
            levels: 7,
        };
        // Storage counting U only (as in Theorem 2): m N + r N L.
        let theorem2 = model.leaf_size as u64 * model.n as u64
            + model.rank as u64 * model.n as u64 * model.levels as u64;
        assert_eq!(
            model.solve_flops(),
            2 * theorem2 + 2 * model.rank as u64 * model.n as u64 * model.levels as u64
        );
    }

    #[test]
    fn report_matches_actual_storage_for_uniform_rank() {
        let mut rng = StdRng::seed_from_u64(91);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 256, 3, 4);
        let report = ComplexityReport::for_matrix(&m);
        assert_eq!(report.model.n, 256);
        assert_eq!(report.model.rank, 4);
        assert_eq!(report.model.levels, 3);
        // Uniform leaf size 32, so predicted and actual storage agree exactly.
        assert_eq!(report.actual_storage_entries, report.storage_entries);
    }

    #[test]
    fn metered_factorization_flops_are_close_to_theorem_3() {
        // The analytic count and the metered count agree to within a modest
        // factor (the formula drops lower-order terms such as the LU of the
        // small coupling matrices).
        let mut rng = StdRng::seed_from_u64(92);
        let matrix: HodlrMatrix<f64> = random_hodlr(&mut rng, 512, 4, 4);
        let report = ComplexityReport::for_matrix(&matrix);
        let device = Device::new();
        let mut gpu = crate::GpuSolver::new(&device, &matrix);
        let before = device.counters();
        gpu.factorize().unwrap();
        let measured = device.counters().since(&before).flops;
        let predicted = report.factorization_flops;
        let ratio = measured as f64 / predicted as f64;
        assert!(
            (0.3..3.0).contains(&ratio),
            "measured {measured} vs predicted {predicted} (ratio {ratio})"
        );
    }

    #[test]
    fn metered_solve_flops_are_close_to_theorem_4() {
        let mut rng = StdRng::seed_from_u64(93);
        let matrix: HodlrMatrix<f64> = random_hodlr(&mut rng, 512, 4, 4);
        let report = ComplexityReport::for_matrix(&matrix);
        let device = Device::new();
        let mut gpu = crate::GpuSolver::new(&device, &matrix);
        gpu.factorize().unwrap();
        let b = vec![1.0; 512];
        let before = device.counters();
        let _ = gpu.solve(&b).unwrap();
        let measured = device.counters().since(&before).flops;
        let predicted = report.solve_flops;
        let ratio = measured as f64 / predicted as f64;
        assert!(
            (0.3..3.0).contains(&ratio),
            "measured {measured} vs predicted {predicted} (ratio {ratio})"
        );
    }
}
