//! The recursive HODLR solver of Section III-A (the correctness oracle).
//!
//! Equation (6) partitions the system by the two children of a node; the two
//! subproblems (7) are solved recursively with the right-hand side augmented
//! by the node's left basis, and the results are stitched together through
//! the small Schur-complement system (9).  Theorem 1 proves the recursion
//! correct.  This implementation re-factorizes everything on every call —
//! it exists to validate the precomputed factorizations (Algorithms 1–4),
//! not to be fast.

use crate::matrix::HodlrMatrix;
use hodlr_la::lu::SingularError;
use hodlr_la::{gemm, DenseMatrix, LuFactor, Op, Scalar};
use hodlr_tree::NodeId;

/// Solve `A X = B` by the recursive algorithm of Section III-A.
///
/// # Errors
/// Returns an error if a leaf diagonal block or one of the small coupling
/// matrices (9) is numerically singular.
pub fn solve_recursive<T: Scalar>(
    matrix: &HodlrMatrix<T>,
    b: &DenseMatrix<T>,
) -> Result<DenseMatrix<T>, SingularError> {
    assert_eq!(
        b.rows(),
        matrix.n(),
        "right-hand side has the wrong row count"
    );
    solve_node(matrix, matrix.tree().root(), b)
}

/// Convenience wrapper for a single right-hand side.
pub fn solve_recursive_vec<T: Scalar>(
    matrix: &HodlrMatrix<T>,
    b: &[T],
) -> Result<Vec<T>, SingularError> {
    let b_mat = DenseMatrix::from_col_major(b.len(), 1, b.to_vec());
    let x = solve_recursive(matrix, &b_mat)?;
    Ok(x.into_data())
}

fn solve_node<T: Scalar>(
    matrix: &HodlrMatrix<T>,
    node: NodeId,
    b: &DenseMatrix<T>,
) -> Result<DenseMatrix<T>, SingularError> {
    let tree = matrix.tree();
    debug_assert_eq!(b.rows(), tree.node_size(node));

    if tree.is_leaf(node) {
        // Which leaf is this?  Leaves are numbered consecutively at the last
        // level, so the local index is the offset from the first leaf id.
        let first_leaf = 1usize << tree.levels();
        let leaf_idx = node - first_leaf;
        let lu = LuFactor::new(matrix.diag_block(leaf_idx))?;
        return Ok(lu.solve_matrix(b));
    }

    let (alpha, beta) = tree.children(node).expect("internal node");
    let ra = tree.range(alpha);
    let rb = tree.range(beta);
    let offset = ra.start;
    let nrhs = b.cols();

    let u_a = matrix.u_block(alpha).to_owned();
    let u_b = matrix.u_block(beta).to_owned();
    let v_a = matrix.v_block(alpha).to_owned();
    let v_b = matrix.v_block(beta).to_owned();
    let w = u_a.cols();

    // Augmented right-hand sides [b_alpha | U_alpha] and [b_beta | U_beta]
    // (Eq. 7, written compactly as in Example 1).
    let b_a = b
        .sub_matrix(ra.start - offset, 0, ra.len(), nrhs)
        .hcat(&u_a);
    let b_b = b
        .sub_matrix(rb.start - offset, 0, rb.len(), nrhs)
        .hcat(&u_b);

    let sol_a = solve_node(matrix, alpha, &b_a)?;
    let sol_b = solve_node(matrix, beta, &b_b)?;

    let z_a = sol_a.sub_matrix(0, 0, ra.len(), nrhs);
    let y_a = sol_a.sub_matrix(0, nrhs, ra.len(), w);
    let z_b = sol_b.sub_matrix(0, 0, rb.len(), nrhs);
    let y_b = sol_b.sub_matrix(0, nrhs, rb.len(), w);

    // Coupling system (9): [[V_a^* Y_a, I], [I, V_b^* Y_b]].
    let mut k = DenseMatrix::<T>::zeros(2 * w, 2 * w);
    if w > 0 {
        let mut t_a = DenseMatrix::<T>::zeros(w, w);
        gemm(
            T::one(),
            v_a.as_ref(),
            Op::ConjTrans,
            y_a.as_ref(),
            Op::None,
            T::zero(),
            t_a.as_mut(),
        );
        let mut t_b = DenseMatrix::<T>::zeros(w, w);
        gemm(
            T::one(),
            v_b.as_ref(),
            Op::ConjTrans,
            y_b.as_ref(),
            Op::None,
            T::zero(),
            t_b.as_mut(),
        );
        k.set_block(0, 0, &t_a);
        k.set_block(w, w, &t_b);
        for i in 0..w {
            k[(i, w + i)] = T::one();
            k[(w + i, i)] = T::one();
        }

        // Right-hand side [V_a^* z_a; V_b^* z_b].
        let mut rhs = DenseMatrix::<T>::zeros(2 * w, nrhs);
        {
            let mut top = rhs.block_mut(0, 0, w, nrhs);
            gemm(
                T::one(),
                v_a.as_ref(),
                Op::ConjTrans,
                z_a.as_ref(),
                Op::None,
                T::zero(),
                top.reborrow(),
            );
        }
        {
            let mut bottom = rhs.block_mut(w, 0, w, nrhs);
            gemm(
                T::one(),
                v_b.as_ref(),
                Op::ConjTrans,
                z_b.as_ref(),
                Op::None,
                T::zero(),
                bottom.reborrow(),
            );
        }

        let k_lu = LuFactor::from_matrix(k)?;
        let w_sol = k_lu.solve_matrix(&rhs);
        let w_a = w_sol.sub_matrix(0, 0, w, nrhs);
        let w_b = w_sol.sub_matrix(w, 0, w, nrhs);

        // x = z - Y w (Eq. 8).
        let mut x_a = z_a.clone();
        let mut corr_a = DenseMatrix::<T>::zeros(ra.len(), nrhs);
        gemm(
            T::one(),
            y_a.as_ref(),
            Op::None,
            w_a.as_ref(),
            Op::None,
            T::zero(),
            corr_a.as_mut(),
        );
        x_a.axpy(-T::one(), &corr_a);

        let mut x_b = z_b.clone();
        let mut corr_b = DenseMatrix::<T>::zeros(rb.len(), nrhs);
        gemm(
            T::one(),
            y_b.as_ref(),
            Op::None,
            w_b.as_ref(),
            Op::None,
            T::zero(),
            corr_b.as_mut(),
        );
        x_b.axpy(-T::one(), &corr_b);

        Ok(x_a.vcat(&x_b))
    } else {
        // Zero-rank off-diagonal blocks: the two subproblems are independent.
        Ok(z_a.vcat(&z_b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::random_hodlr;
    use hodlr_la::lu::solve_dense;
    use hodlr_la::{Complex64, RealScalar};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_against_dense<T: Scalar>(n: usize, levels: usize, rank: usize, seed: u64, tol: f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m: HodlrMatrix<T> = random_hodlr(&mut rng, n, levels, rank);
        let dense = m.to_dense();
        let b: Vec<T> = hodlr_la::random::random_vector(&mut rng, n);
        let x = solve_recursive_vec(&m, &b).expect("diag dominant matrix is invertible");
        let x_ref = solve_dense(&dense, &b).expect("dense solve");
        for (a, r) in x.iter().zip(x_ref.iter()) {
            assert!((*a - *r).abs().to_f64() < tol, "{a:?} vs {r:?}");
        }
    }

    #[test]
    fn matches_dense_solve_real() {
        check_against_dense::<f64>(64, 3, 3, 41, 1e-9);
        check_against_dense::<f64>(96, 2, 5, 42, 1e-9);
    }

    #[test]
    fn matches_dense_solve_complex() {
        check_against_dense::<Complex64>(48, 2, 3, 43, 1e-9);
    }

    #[test]
    fn matches_dense_solve_non_power_of_two() {
        check_against_dense::<f64>(77, 3, 2, 44, 1e-9);
        check_against_dense::<f64>(33, 2, 1, 45, 1e-9);
    }

    #[test]
    fn multiple_right_hand_sides() {
        let mut rng = StdRng::seed_from_u64(46);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 40, 2, 2);
        let b: DenseMatrix<f64> = hodlr_la::random::random_matrix(&mut rng, 40, 4);
        let x = solve_recursive(&m, &b).unwrap();
        // Residual per column.
        let ax = m.matmat(&x);
        assert!(ax.sub(&b).norm_max() < 1e-9);
    }

    #[test]
    fn zero_rank_blocks_decouple_the_system() {
        let mut rng = StdRng::seed_from_u64(47);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 32, 2, 0);
        let b: Vec<f64> = hodlr_la::random::random_vector(&mut rng, 32);
        let x = solve_recursive_vec(&m, &b).unwrap();
        let dense = m.to_dense();
        let x_ref = solve_dense(&dense, &b).unwrap();
        for (a, r) in x.iter().zip(x_ref.iter()) {
            assert!((a - r).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_leaf_is_reported() {
        let mut rng = StdRng::seed_from_u64(48);
        let mut m: HodlrMatrix<f64> = random_hodlr(&mut rng, 16, 1, 1);
        // Zero out one leaf diagonal block to force a singular subproblem.
        let zero = DenseMatrix::zeros(8, 8);
        let diag = vec![zero, m.diag_block(1).clone()];
        let rebuilt = HodlrMatrix::from_parts(
            m.tree().clone(),
            m.layout().clone(),
            (0..=m.tree().num_nodes())
                .map(|id| if id == 0 { 0 } else { m.node_rank(id.max(1)) })
                .collect(),
            m.ubig().clone(),
            m.vbig().clone(),
            diag,
        )
        .unwrap();
        m = rebuilt;
        let b = vec![1.0; 16];
        assert!(solve_recursive_vec(&m, &b).is_err());
    }
}
