//! Construction of a HODLR approximation from an entry source.
//!
//! Construction is "straightforward" in the paper's words (Section II-B):
//! every sibling off-diagonal block is compressed into `U V^*` and every
//! leaf diagonal block is materialised densely.  The two compressions of a
//! sibling pair `(alpha, beta)` yield `U_alpha, V_beta` (from
//! `A(I_alpha, I_beta)`) and `U_beta, V_alpha` (from `A(I_beta, I_alpha)`),
//! which is exactly what the per-node concatenation of `Ubig` / `Vbig`
//! needs.
//!
//! The build streams: it walks the tree level by level, compressing the
//! sibling blocks of one level in parallel directly from the entry source
//! (the compressors themselves stream through bounded scratch — see
//! `hodlr-compress`), so no off-diagonal block is ever materialised
//! densely; only leaf diagonal blocks are.  Every allocation the build
//! retains is recorded on an optional [`AllocMeter`], and an optional byte
//! budget is enforced between levels with a typed
//! [`HodlrError::BudgetExceeded`] naming the level or stage that crossed
//! it.

use crate::layout::LevelLayout;
use crate::matrix::HodlrMatrix;
use hodlr_compress::{
    compress_metered, CompressionConfig, DenseSource, LowRank, MatrixEntrySource,
};
use hodlr_la::{AllocMeter, DemoteScalar, DenseMatrix, HodlrError, Scalar};
use hodlr_tree::{ClusterTree, NodeId};
use rayon::prelude::*;

/// Options threading the allocation meter and memory budget through a
/// build.
#[derive(Clone, Copy, Default)]
pub struct BuildOptions<'m> {
    /// Records live/peak bytes of compression scratch, retained factors,
    /// leaf blocks and the flattened bases.  At a successful return the
    /// meter's live count equals the storage bytes of the returned matrix.
    pub meter: Option<&'m AllocMeter>,
    /// Hard ceiling on live bytes, checked after every level of
    /// off-diagonal compression, after the leaf blocks, and before the
    /// flattened `Ubig`/`Vbig` bases are allocated.  Exceeding it aborts
    /// the build with [`HodlrError::BudgetExceeded`].
    pub budget_bytes: Option<u64>,
}

/// Bytes retained by a low-rank factor pair.
fn lowrank_bytes<T: Scalar>(lr: &LowRank<T>) -> u64 {
    ((lr.u.rows() * lr.u.cols() + lr.v.rows() * lr.v.cols()) * std::mem::size_of::<T>()) as u64
}

/// Bytes of a `rows x cols` dense matrix of `T`.
fn matrix_bytes<T>(rows: usize, cols: usize) -> u64 {
    (rows * cols * std::mem::size_of::<T>()) as u64
}

/// Fail with a typed [`HodlrError::BudgetExceeded`] if the metered live
/// count has crossed the budget.
fn check_budget(
    meter: Option<&AllocMeter>,
    budget: Option<u64>,
    context: impl FnOnce() -> String,
) -> Result<(), HodlrError> {
    if let (Some(meter), Some(budget)) = (meter, budget) {
        let live = meter.live_bytes();
        if live > budget {
            return Err(HodlrError::BudgetExceeded {
                budget_bytes: budget,
                needed_bytes: live,
                context: context(),
            });
        }
    }
    Ok(())
}

/// Name the widest sibling block hanging off the given parents, for budget
/// error messages.
fn widest_block(tree: &ClusterTree, parents: &[NodeId]) -> usize {
    parents
        .iter()
        .filter_map(|&gamma| tree.children(gamma))
        .map(|(alpha, beta)| tree.node_size(alpha).max(tree.node_size(beta)))
        .max()
        .unwrap_or(0)
}

/// A rectangular sub-block of another entry source, addressed by row and
/// column offsets.  This is what lets one `N x N` kernel source serve every
/// off-diagonal block compression without materialising anything.
pub struct BlockSource<'a, T: Scalar, S: MatrixEntrySource<T> + ?Sized> {
    inner: &'a S,
    row_offset: usize,
    col_offset: usize,
    nrows: usize,
    ncols: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<'a, T: Scalar, S: MatrixEntrySource<T> + ?Sized> BlockSource<'a, T, S> {
    /// The sub-block `inner[row..row+nrows, col..col+ncols]`.
    ///
    /// # Errors
    /// Returns [`HodlrError::DimensionMismatch`] naming the offending block
    /// when the requested window reaches past the underlying source.
    pub fn new(
        inner: &'a S,
        row: usize,
        col: usize,
        nrows: usize,
        ncols: usize,
    ) -> Result<Self, HodlrError> {
        if row + nrows > inner.nrows() {
            return Err(HodlrError::dims(
                format!(
                    "rows of block [{row}..{}, {col}..{}]",
                    row + nrows,
                    col + ncols
                ),
                inner.nrows(),
                row + nrows,
            ));
        }
        if col + ncols > inner.ncols() {
            return Err(HodlrError::dims(
                format!(
                    "columns of block [{row}..{}, {col}..{}]",
                    row + nrows,
                    col + ncols
                ),
                inner.ncols(),
                col + ncols,
            ));
        }
        Ok(BlockSource {
            inner,
            row_offset: row,
            col_offset: col,
            nrows,
            ncols,
            _marker: std::marker::PhantomData,
        })
    }
}

impl<T: Scalar, S: MatrixEntrySource<T> + ?Sized> MatrixEntrySource<T> for BlockSource<'_, T, S> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn entry(&self, i: usize, j: usize) -> T {
        self.inner.entry(self.row_offset + i, self.col_offset + j)
    }
}

/// Build a HODLR approximation of `source` over the given cluster tree,
/// compressing every sibling off-diagonal block with `config`.
///
/// # Errors
/// Returns [`HodlrError::DimensionMismatch`] when `source` is not square or
/// does not match the tree size, [`HodlrError::InvalidConfig`] for an empty
/// tree or invalid compression settings, and propagates compression errors
/// (e.g. a strict rank-cap overflow).
pub fn build_from_source<T: Scalar, S: MatrixEntrySource<T> + Sync + ?Sized>(
    source: &S,
    tree: ClusterTree,
    config: &CompressionConfig<T::Real>,
) -> Result<HodlrMatrix<T>, HodlrError> {
    build_from_source_with(source, tree, config, BuildOptions::default())
}

/// [`build_from_source`] with metering and an optional memory budget; see
/// [`BuildOptions`].
///
/// # Errors
/// As [`build_from_source`], plus [`HodlrError::BudgetExceeded`] when the
/// metered live bytes cross `options.budget_bytes`.
pub fn build_from_source_with<T: Scalar, S: MatrixEntrySource<T> + Sync + ?Sized>(
    source: &S,
    tree: ClusterTree,
    config: &CompressionConfig<T::Real>,
    options: BuildOptions<'_>,
) -> Result<HodlrMatrix<T>, HodlrError> {
    let n = tree.n();
    if n == 0 {
        return Err(HodlrError::config(
            "cannot build a HODLR matrix over a zero-size tree",
        ));
    }
    config.validate()?;
    HodlrError::check_dims("source rows (must be N x N)", n, source.nrows())?;
    HodlrError::check_dims("source columns (must be N x N)", n, source.ncols())?;

    // A budget needs a meter to compare against even when the caller did
    // not ask for one.
    let fallback = AllocMeter::new();
    let meter = match (options.meter, options.budget_bytes) {
        (None, Some(_)) => Some(&fallback),
        (m, _) => m,
    };
    let budget = options.budget_bytes;

    // Per-node factors: U_alpha from the (alpha, beta) block, V_alpha from
    // the (beta, alpha) block.  The rank of the (alpha, beta) block and of
    // the (beta, alpha) block may differ; a node's bookkeeping rank is the
    // wider of its U and V factors (both are zero-padded to the level width
    // when written into Ubig/Vbig).
    let num_nodes = tree.num_nodes();
    let mut u_of: Vec<Option<DenseMatrix<T>>> = vec![None; num_nodes + 1];
    let mut v_of: Vec<Option<DenseMatrix<T>>> = vec![None; num_nodes + 1];
    let mut node_ranks = vec![0usize; num_nodes + 1];
    let mut factor_bytes = 0u64;

    // Walk the tree level by level, compressing the two off-diagonal blocks
    // of every sibling pair of one level in parallel.  Each internal node
    // gamma produces (U_alpha, V_beta) and (U_beta, V_alpha) where (alpha,
    // beta) are its children.  The level-wise order bounds the live set and
    // gives the budget check a natural granularity.
    let levels = tree.levels();
    for parent_level in 0..levels {
        let parents: Vec<NodeId> = tree
            .level_nodes(parent_level)
            .filter(|&gamma| !tree.is_leaf(gamma))
            .collect();
        if parents.is_empty() {
            continue;
        }
        let compressed: Vec<(NodeId, LowRank<T>, LowRank<T>)> = parents
            .par_iter()
            .map(|&gamma| {
                let (alpha, beta) = tree.children(gamma).expect("internal node");
                let ra = tree.range(alpha);
                let rb = tree.range(beta);
                let ab = BlockSource::new(source, ra.start, rb.start, ra.len(), rb.len())?;
                let ba = BlockSource::new(source, rb.start, ra.start, rb.len(), ra.len())?;
                let lr_ab = compress_metered(&ab, config, meter)
                    .map_err(|e| annotate_block(e, alpha, beta))?;
                let lr_ba = compress_metered(&ba, config, meter)
                    .map_err(|e| annotate_block(e, beta, alpha))?;
                if let Some(meter) = meter {
                    meter.record_alloc(lowrank_bytes(&lr_ab) + lowrank_bytes(&lr_ba));
                }
                Ok((gamma, lr_ab, lr_ba))
            })
            .collect::<Result<Vec<_>, HodlrError>>()?;
        for (gamma, lr_ab, lr_ba) in compressed {
            let (alpha, beta) = tree.children(gamma).expect("internal node");
            let pair_rank = lr_ab.rank().max(lr_ba.rank());
            node_ranks[alpha] = pair_rank;
            node_ranks[beta] = pair_rank;
            factor_bytes += lowrank_bytes(&lr_ab) + lowrank_bytes(&lr_ba);
            u_of[alpha] = Some(lr_ab.u);
            v_of[beta] = Some(lr_ab.v);
            u_of[beta] = Some(lr_ba.u);
            v_of[alpha] = Some(lr_ba.v);
        }
        check_budget(meter, budget, || {
            format!(
                "off-diagonal factors at level {} (widest block {w} x {w})",
                parent_level + 1,
                w = widest_block(&tree, &parents)
            )
        })?;
    }

    // Level widths = maximum factor width at each level.
    let mut widths = vec![0usize; levels];
    for level in 1..=levels {
        let mut w = 0;
        for node in tree.level_nodes(level) {
            let wu = u_of[node].as_ref().map_or(0, |m| m.cols());
            let wv = v_of[node].as_ref().map_or(0, |m| m.cols());
            w = w.max(wu).max(wv);
        }
        widths[level - 1] = w;
    }
    let layout = LevelLayout::new(widths);

    // Assemble Ubig / Vbig with zero padding to the level width.  The two
    // flattened bases are the largest single allocation of the build, so
    // they get a budget check *before* they exist.
    let total = layout.total_cols();
    let flattened_bytes = 2 * matrix_bytes::<T>(n, total);
    if let (Some(meter), Some(budget)) = (meter, budget) {
        let needed = meter.live_bytes() + flattened_bytes;
        if needed > budget {
            return Err(HodlrError::BudgetExceeded {
                budget_bytes: budget,
                needed_bytes: needed,
                context: format!("flattened level bases (Ubig/Vbig, {n} x {total} each)"),
            });
        }
    }
    if let Some(meter) = meter {
        meter.record_alloc(flattened_bytes);
    }
    let mut ubig = DenseMatrix::zeros(n, total);
    let mut vbig = DenseMatrix::zeros(n, total);
    for level in 1..=levels {
        let cols = layout.col_range(level);
        for node in tree.level_nodes(level) {
            let rows = tree.range(node);
            if let Some(u) = &u_of[node] {
                for j in 0..u.cols() {
                    for (local_i, i) in rows.clone().enumerate() {
                        ubig[(i, cols.start + j)] = u[(local_i, j)];
                    }
                }
            }
            if let Some(v) = &v_of[node] {
                for j in 0..v.cols() {
                    for (local_i, i) in rows.clone().enumerate() {
                        vbig[(i, cols.start + j)] = v[(local_i, j)];
                    }
                }
            }
        }
    }
    // The per-node factors are consumed by the flattened bases.
    drop(u_of);
    drop(v_of);
    if let Some(meter) = meter {
        meter.record_free(factor_bytes);
    }

    // Dense leaf diagonal blocks — the only densely materialised blocks of
    // the whole build.
    let leaf_ids: Vec<NodeId> = tree.leaves().collect();
    let diag: Vec<DenseMatrix<T>> = leaf_ids
        .par_iter()
        .map(|&leaf| {
            let range = tree.range(leaf);
            let block =
                BlockSource::new(source, range.start, range.start, range.len(), range.len())?;
            let dense = block.to_dense();
            if let Some(meter) = meter {
                meter.record_alloc(matrix_bytes::<T>(dense.rows(), dense.cols()));
            }
            Ok(dense)
        })
        .collect::<Result<Vec<_>, HodlrError>>()?;
    check_budget(meter, budget, || "leaf diagonal blocks".to_string())?;

    HodlrMatrix::from_parts(tree, layout, node_ranks, ubig, vbig, diag)
}

/// Build a Hermitian HODLR approximation of `source` with shared bases:
/// each sibling pair is compressed **once** — `A(I_alpha, I_beta) = U V^*`
/// gives `U_alpha := U` and `U_beta := V`, so the mirror block `A(I_beta,
/// I_alpha) = U_beta U_alpha^*` is the conjugate transpose by construction.
/// Half the compression work and half the basis storage of
/// [`build_from_source`].
///
/// The caller asserts that `source` is Hermitian; only the blocks on and
/// below the diagonal are ever read (the symmetric factorizations
/// downstream likewise read only lower triangles of the leaf blocks).
///
/// # Errors
/// As [`build_from_source`].
pub fn build_from_source_symmetric<T: Scalar, S: MatrixEntrySource<T> + Sync + ?Sized>(
    source: &S,
    tree: ClusterTree,
    config: &CompressionConfig<T::Real>,
) -> Result<HodlrMatrix<T>, HodlrError> {
    build_from_source_symmetric_with(source, tree, config, BuildOptions::default())
}

/// [`build_from_source_symmetric`] with metering and an optional memory
/// budget; see [`BuildOptions`].
///
/// # Errors
/// As [`build_from_source_symmetric`], plus [`HodlrError::BudgetExceeded`]
/// when the metered live bytes cross `options.budget_bytes`.
pub fn build_from_source_symmetric_with<T: Scalar, S: MatrixEntrySource<T> + Sync + ?Sized>(
    source: &S,
    tree: ClusterTree,
    config: &CompressionConfig<T::Real>,
    options: BuildOptions<'_>,
) -> Result<HodlrMatrix<T>, HodlrError> {
    let n = tree.n();
    if n == 0 {
        return Err(HodlrError::config(
            "cannot build a HODLR matrix over a zero-size tree",
        ));
    }
    config.validate()?;
    HodlrError::check_dims("source rows (must be N x N)", n, source.nrows())?;
    HodlrError::check_dims("source columns (must be N x N)", n, source.ncols())?;

    let fallback = AllocMeter::new();
    let meter = match (options.meter, options.budget_bytes) {
        (None, Some(_)) => Some(&fallback),
        (m, _) => m,
    };
    let budget = options.budget_bytes;

    let num_nodes = tree.num_nodes();
    let mut u_of: Vec<Option<DenseMatrix<T>>> = vec![None; num_nodes + 1];
    let mut node_ranks = vec![0usize; num_nodes + 1];
    let mut factor_bytes = 0u64;

    // One compression per sibling pair instead of two, level by level.
    let levels = tree.levels();
    for parent_level in 0..levels {
        let parents: Vec<NodeId> = tree
            .level_nodes(parent_level)
            .filter(|&gamma| !tree.is_leaf(gamma))
            .collect();
        if parents.is_empty() {
            continue;
        }
        let compressed: Vec<(NodeId, LowRank<T>)> = parents
            .par_iter()
            .map(|&gamma| {
                let (alpha, beta) = tree.children(gamma).expect("internal node");
                let ra = tree.range(alpha);
                let rb = tree.range(beta);
                let ab = BlockSource::new(source, ra.start, rb.start, ra.len(), rb.len())?;
                let lr = compress_metered(&ab, config, meter)
                    .map_err(|e| annotate_block(e, alpha, beta))?;
                if let Some(meter) = meter {
                    meter.record_alloc(lowrank_bytes(&lr));
                }
                Ok((gamma, lr))
            })
            .collect::<Result<Vec<_>, HodlrError>>()?;
        for (gamma, lr) in compressed {
            let (alpha, beta) = tree.children(gamma).expect("internal node");
            let rank = lr.rank();
            node_ranks[alpha] = rank;
            node_ranks[beta] = rank;
            factor_bytes += lowrank_bytes(&lr);
            u_of[alpha] = Some(lr.u);
            u_of[beta] = Some(lr.v);
        }
        check_budget(meter, budget, || {
            format!(
                "off-diagonal factors at level {} (widest block {w} x {w})",
                parent_level + 1,
                w = widest_block(&tree, &parents)
            )
        })?;
    }

    let mut widths = vec![0usize; levels];
    for level in 1..=levels {
        let mut w = 0;
        for node in tree.level_nodes(level) {
            w = w.max(u_of[node].as_ref().map_or(0, |m| m.cols()));
        }
        widths[level - 1] = w;
    }
    let layout = LevelLayout::new(widths);

    let total = layout.total_cols();
    let flattened_bytes = matrix_bytes::<T>(n, total);
    if let (Some(meter), Some(budget)) = (meter, budget) {
        let needed = meter.live_bytes() + flattened_bytes;
        if needed > budget {
            return Err(HodlrError::BudgetExceeded {
                budget_bytes: budget,
                needed_bytes: needed,
                context: format!("flattened level basis (shared Ubig, {n} x {total})"),
            });
        }
    }
    if let Some(meter) = meter {
        meter.record_alloc(flattened_bytes);
    }
    let mut ubig = DenseMatrix::zeros(n, total);
    for level in 1..=levels {
        let cols = layout.col_range(level);
        for node in tree.level_nodes(level) {
            let rows = tree.range(node);
            if let Some(u) = &u_of[node] {
                for j in 0..u.cols() {
                    for (local_i, i) in rows.clone().enumerate() {
                        ubig[(i, cols.start + j)] = u[(local_i, j)];
                    }
                }
            }
        }
    }
    drop(u_of);
    if let Some(meter) = meter {
        meter.record_free(factor_bytes);
    }

    let leaf_ids: Vec<NodeId> = tree.leaves().collect();
    let diag: Vec<DenseMatrix<T>> = leaf_ids
        .par_iter()
        .map(|&leaf| {
            let range = tree.range(leaf);
            let block =
                BlockSource::new(source, range.start, range.start, range.len(), range.len())?;
            let dense = block.to_dense();
            if let Some(meter) = meter {
                meter.record_alloc(matrix_bytes::<T>(dense.rows(), dense.cols()));
            }
            Ok(dense)
        })
        .collect::<Result<Vec<_>, HodlrError>>()?;
    check_budget(meter, budget, || "leaf diagonal blocks".to_string())?;

    HodlrMatrix::from_parts_symmetric(tree, layout, node_ranks, ubig, diag)
}

/// An adapter demoting every entry of a source to the lower precision:
/// `entry(i, j) = inner.entry(i, j).demote()`.  This is what the compact
/// (`f32`-storage) build path compresses from — demotion happens entry by
/// entry at evaluation time, so the compact build's scratch is *also* in
/// the lower precision and the working-precision block never exists.
pub struct DemotedSource<'a, T: DemoteScalar, S: MatrixEntrySource<T> + ?Sized> {
    inner: &'a S,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<'a, T: DemoteScalar, S: MatrixEntrySource<T> + ?Sized> DemotedSource<'a, T, S> {
    /// View `inner` in the lower precision.
    pub fn new(inner: &'a S) -> Self {
        DemotedSource {
            inner,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T, S> MatrixEntrySource<T::Lower> for DemotedSource<'_, T, S>
where
    T: DemoteScalar,
    S: MatrixEntrySource<T> + ?Sized,
{
    fn nrows(&self) -> usize {
        self.inner.nrows()
    }

    fn ncols(&self) -> usize {
        self.inner.ncols()
    }

    fn entry(&self, i: usize, j: usize) -> T::Lower {
        self.inner.entry(i, j).demote()
    }
}

/// Attribute a compression error to the off-diagonal block it came from.
fn annotate_block(e: HodlrError, row_node: NodeId, col_node: NodeId) -> HodlrError {
    match e {
        HodlrError::CompressionRankOverflow {
            max_rank,
            tol,
            context,
        } => HodlrError::CompressionRankOverflow {
            max_rank,
            tol,
            context: format!("off-diagonal block (node {row_node}, node {col_node}): {context}"),
        },
        other => other,
    }
}

/// Build a HODLR approximation of a dense matrix (used by tests and by
/// problems small enough to materialise).
///
/// # Errors
/// Returns [`HodlrError::DimensionMismatch`] when `a` is not square, and
/// everything [`build_from_source`] can return.
pub fn build_from_dense<T: Scalar>(
    a: &DenseMatrix<T>,
    tree: ClusterTree,
    config: &CompressionConfig<T::Real>,
) -> Result<HodlrMatrix<T>, HodlrError> {
    HodlrError::check_dims(
        "dense input (HODLR matrices are square)",
        a.rows(),
        a.cols(),
    )?;
    let source = DenseSource::new(a);
    build_from_source(&source, tree, config)
}

/// Build a shared-basis Hermitian HODLR approximation of a dense Hermitian
/// matrix; see [`build_from_source_symmetric`].
///
/// # Errors
/// Returns [`HodlrError::DimensionMismatch`] when `a` is not square, and
/// everything [`build_from_source_symmetric`] can return.
pub fn build_from_dense_symmetric<T: Scalar>(
    a: &DenseMatrix<T>,
    tree: ClusterTree,
    config: &CompressionConfig<T::Real>,
) -> Result<HodlrMatrix<T>, HodlrError> {
    HodlrError::check_dims(
        "dense input (HODLR matrices are square)",
        a.rows(),
        a.cols(),
    )?;
    let source = DenseSource::new(a);
    build_from_source_symmetric(&source, tree, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr_compress::{ClosureSource, CompressionMethod};
    use hodlr_la::RealScalar;
    use hodlr_tree::ClusterTree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A smooth 1-D kernel matrix: K(i, j) = 1 / (1 + |x_i - x_j|) plus a
    /// diagonal shift, which is HODLR-compressible and well conditioned.
    fn kernel_source(n: usize) -> ClosureSource<f64, impl Fn(usize, usize) -> f64 + Sync> {
        ClosureSource::new(n, n, move |i, j| {
            let x = i as f64 / n as f64;
            let y = j as f64 / n as f64;
            let k = 1.0 / (1.0 + (x - y).abs() * n as f64 / 8.0);
            if i == j {
                k + 4.0
            } else {
                k
            }
        })
    }

    #[test]
    fn built_matrix_approximates_the_source() {
        let n = 128;
        let src = kernel_source(n);
        let tree = ClusterTree::with_leaf_size(n, 16);
        let config = CompressionConfig::with_tol(1e-9);
        let hodlr = build_from_source(&src, tree, &config).unwrap();

        let dense = src.to_dense();
        let approx = hodlr.to_dense();
        let err = dense.sub(&approx).norm_fro();
        assert!(err < 1e-7 * dense.norm_fro(), "approximation error {err}");
        // The off-diagonal blocks really are low rank.
        assert!(hodlr.max_rank() < 16, "max rank {}", hodlr.max_rank());
    }

    #[test]
    fn tolerance_steers_rank_and_error() {
        let n = 96;
        let src = kernel_source(n);
        let tree = ClusterTree::with_leaf_size(n, 12);
        let loose =
            build_from_source(&src, tree.clone(), &CompressionConfig::with_tol(1e-3)).unwrap();
        let tight = build_from_source(&src, tree, &CompressionConfig::with_tol(1e-11)).unwrap();
        assert!(loose.max_rank() <= tight.max_rank());
        let dense = src.to_dense();
        let err_loose = dense.sub(&loose.to_dense()).norm_fro() / dense.norm_fro();
        let err_tight = dense.sub(&tight.to_dense()).norm_fro() / dense.norm_fro();
        assert!(err_tight < err_loose);
        assert!(err_tight < 1e-9);
    }

    #[test]
    fn symmetric_build_shares_bases_and_matches_general_build() {
        let n = 128;
        let src = kernel_source(n);
        let tree = ClusterTree::with_leaf_size(n, 16);
        let config = CompressionConfig::with_tol(1e-9);
        let general = build_from_source(&src, tree.clone(), &config).unwrap();
        let sym = build_from_source_symmetric(&src, tree, &config).unwrap();

        assert!(sym.shares_bases());
        assert!(!general.shares_bases());
        // Half the basis storage (same leaf blocks on both sides).
        let diag_entries: usize = sym.diag_blocks().iter().map(|d| d.rows() * d.cols()).sum();
        let sym_basis = sym.storage_entries() - diag_entries;
        let gen_basis = general.storage_entries() - diag_entries;
        assert!(
            sym_basis * 2 <= gen_basis + sym.n(),
            "symmetric bases {sym_basis} vs general {gen_basis}"
        );

        let dense = src.to_dense();
        let approx = sym.to_dense();
        let err = dense.sub(&approx).norm_fro();
        assert!(err < 1e-7 * dense.norm_fro(), "approximation error {err}");
        // The approximation is exactly Hermitian by construction.
        let asym = approx.sub(&approx.conj_transpose()).norm_max();
        assert!(asym < 1e-14, "not Hermitian: {asym}");
    }

    #[test]
    fn every_compression_method_builds_a_valid_matrix() {
        let n = 64;
        let src = kernel_source(n);
        let dense = src.to_dense();
        let tree = ClusterTree::with_leaf_size(n, 16);
        for method in [
            CompressionMethod::AcaPartial,
            CompressionMethod::AcaRook,
            CompressionMethod::RandomizedSvd,
            CompressionMethod::TruncatedSvd,
        ] {
            let cfg = CompressionConfig::with_tol(1e-8).method(method);
            let hodlr = build_from_source(&src, tree.clone(), &cfg).unwrap();
            let err = dense.sub(&hodlr.to_dense()).norm_fro();
            assert!(err < 1e-6 * dense.norm_fro(), "{method:?}: error {err}");
        }
    }

    #[test]
    fn build_from_dense_matches_build_from_source() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 48;
        // An exactly HODLR matrix of rank 2 recovered from its dense form.
        let exact: HodlrMatrix<f64> = crate::matrix::random_hodlr(&mut rng, n, 2, 2);
        let dense = exact.to_dense();
        let tree = ClusterTree::uniform(n, 2);
        let cfg = CompressionConfig::with_tol(1e-11);
        let rebuilt = build_from_dense(&dense, tree, &cfg).unwrap();
        assert!(rebuilt.max_rank() <= 3);
        let err = dense.sub(&rebuilt.to_dense()).norm_fro();
        assert!(err < 1e-8 * dense.norm_fro().to_f64());
    }

    #[test]
    fn zero_level_tree_stores_one_dense_block() {
        let src = kernel_source(10);
        let tree = ClusterTree::uniform(10, 0);
        let hodlr = build_from_source(&src, tree, &CompressionConfig::with_tol(1e-10)).unwrap();
        assert_eq!(hodlr.levels(), 0);
        assert_eq!(hodlr.diag_blocks().len(), 1);
        let err = src.to_dense().sub(&hodlr.to_dense()).norm_fro();
        assert!(err < 1e-12);
    }

    #[test]
    fn block_source_delegates_entries() {
        let src = ClosureSource::new(6, 6, |i, j| (10 * i + j) as f64);
        let block = BlockSource::new(&src, 2, 3, 3, 2).unwrap();
        assert_eq!(block.nrows(), 3);
        assert_eq!(block.ncols(), 2);
        assert_eq!(block.entry(0, 0), 23.0);
        assert_eq!(block.entry(2, 1), 44.0);
    }

    #[test]
    fn block_source_out_of_bounds_is_a_dimension_mismatch() {
        let src = ClosureSource::new(6, 6, |i, j| (10 * i + j) as f64);
        let err = BlockSource::new(&src, 4, 0, 3, 2).err().unwrap();
        assert!(err.to_string().contains("rows of block"), "{err}");
        let err = BlockSource::new(&src, 0, 5, 2, 3).err().unwrap();
        assert!(err.to_string().contains("columns of block"), "{err}");
    }

    #[test]
    fn metered_build_accounts_for_exactly_the_retained_storage() {
        let n = 512;
        let src = kernel_source(n);
        let tree = ClusterTree::with_leaf_size(n, 64);
        let meter = AllocMeter::new();
        let options = BuildOptions {
            meter: Some(&meter),
            budget_bytes: None,
        };
        let hodlr = build_from_source_with(&src, tree, &CompressionConfig::with_tol(1e-9), options)
            .unwrap();
        // At return the live count is exactly the storage of the matrix:
        // all compression scratch and intermediate factors have retired.
        assert_eq!(meter.live_bytes(), hodlr.storage_bytes());
        assert!(meter.peak_bytes() >= meter.live_bytes());
        // The peak never approached the n x n dense matrix the streaming
        // assembly replaced.
        let dense_bytes = (n * n * std::mem::size_of::<f64>()) as u64;
        assert!(
            meter.peak_bytes() < dense_bytes / 2,
            "peak {} vs dense {}",
            meter.peak_bytes(),
            dense_bytes
        );
    }

    #[test]
    fn symmetric_metered_build_accounts_for_exactly_the_retained_storage() {
        let n = 192;
        let src = kernel_source(n);
        let tree = ClusterTree::with_leaf_size(n, 24);
        let meter = AllocMeter::new();
        let options = BuildOptions {
            meter: Some(&meter),
            budget_bytes: None,
        };
        let hodlr = build_from_source_symmetric_with(
            &src,
            tree,
            &CompressionConfig::with_tol(1e-9),
            options,
        )
        .unwrap();
        assert_eq!(meter.live_bytes(), hodlr.storage_bytes());
    }

    #[test]
    fn tiny_budget_fails_with_a_typed_error_naming_the_stage() {
        let n = 128;
        let src = kernel_source(n);
        let tree = ClusterTree::with_leaf_size(n, 16);
        let err = build_from_source_with(
            &src,
            tree.clone(),
            &CompressionConfig::with_tol(1e-9),
            BuildOptions {
                meter: None,
                budget_bytes: Some(1024),
            },
        )
        .unwrap_err();
        match &err {
            HodlrError::BudgetExceeded {
                budget_bytes,
                needed_bytes,
                context,
            } => {
                assert_eq!(*budget_bytes, 1024);
                assert!(*needed_bytes > 1024);
                assert!(
                    context.contains("level")
                        || context.contains("leaf")
                        || context.contains("Ubig"),
                    "context: {context}"
                );
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }

        // A budget that fits the real footprint succeeds and the build is
        // identical to the unbudgeted one.
        let free =
            build_from_source(&src, tree.clone(), &CompressionConfig::with_tol(1e-9)).unwrap();
        let budgeted = build_from_source_with(
            &src,
            tree,
            &CompressionConfig::with_tol(1e-9),
            BuildOptions {
                meter: None,
                budget_bytes: Some(64 << 20),
            },
        )
        .unwrap();
        assert_eq!(
            free.to_dense()
                .sub(&budgeted.to_dense())
                .norm_max()
                .to_f64(),
            0.0,
            "budgeted build must be bitwise identical"
        );
    }

    #[test]
    fn demoted_source_views_entries_in_the_lower_precision() {
        let src = ClosureSource::new(4, 4, |i, j| 1.0 + (i + 10 * j) as f64 * 1e-9);
        let lo = DemotedSource::new(&src);
        assert_eq!(lo.nrows(), 4);
        assert_eq!(lo.ncols(), 4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(lo.entry(i, j), src.entry(i, j) as f32);
            }
        }
        // A full compact-precision build goes through the generic builder.
        let n = 64;
        let kernel = kernel_source(n);
        let view = DemotedSource::new(&kernel);
        let tree = ClusterTree::with_leaf_size(n, 16);
        let cfg = CompressionConfig::with_tol(1e-5f32);
        let low = build_from_source(&view, tree, &cfg).unwrap();
        let lo_dense = low.to_dense();
        let dense = kernel.to_dense();
        for i in 0..n {
            for j in 0..n {
                let got = lo_dense[(i, j)] as f64;
                assert!((got - dense[(i, j)]).abs() < 1e-3 * (1.0 + dense[(i, j)].abs()));
            }
        }
    }

    /// Regression test for the duplicated `node_ranks` assignment block: with
    /// *asymmetric* sibling blocks — `A(I_alpha, I_beta)` of rank 1 but
    /// `A(I_beta, I_alpha)` of rank 3 — both siblings must report the wider
    /// rank, and the reconstruction must still match the source.
    #[test]
    fn asymmetric_rank_sibling_blocks_report_the_max_rank() {
        let n = 16;
        let mut a: DenseMatrix<f64> = DenseMatrix::zeros(n, n);
        let h = n / 2;
        for i in 0..n {
            a[(i, i)] = 10.0 + i as f64;
        }
        // Upper-right block (alpha, beta): exactly rank 1.
        for i in 0..h {
            for j in 0..h {
                a[(i, h + j)] = (1.0 + i as f64) * (2.0 + j as f64) / 16.0;
            }
        }
        // Lower-left block (beta, alpha): exactly rank 3 — the outer
        // products x ⊗ y, x² ⊗ y² and 1 ⊗ 1 have independent factors.
        for i in 0..h {
            for j in 0..h {
                let (x, y) = (i as f64, j as f64);
                a[(h + i, j)] = (x * y + (x * x) * (y * y) / 8.0 + 1.0) / 32.0;
            }
        }
        let tree = ClusterTree::uniform(n, 1);
        // Truncated SVD so the recovered ranks are exactly the block ranks.
        let cfg = CompressionConfig::with_tol(1e-12).method(CompressionMethod::TruncatedSvd);
        let hodlr = build_from_dense(&a, tree, &cfg).unwrap();

        let (alpha, beta) = hodlr.tree().children(hodlr.tree().root()).unwrap();
        assert_eq!(hodlr.node_rank(alpha), 3, "alpha must carry the max rank");
        assert_eq!(hodlr.node_rank(beta), 3, "beta must carry the max rank");
        assert_eq!(hodlr.max_rank(), 3);
        assert_eq!(hodlr.rank_profile(), vec![3]);

        let err = a.sub(&hodlr.to_dense()).norm_fro();
        assert!(err < 1e-10 * a.norm_fro(), "reconstruction error {err}");
    }
}
