//! The batched factorization and solve (Algorithms 3–4) on the virtual
//! batched-BLAS device — the "GPU HODLR Solver" of the paper's evaluation.
//!
//! The solver uploads `Dbig`, `Ubig` and `Vbig` to the device once (the
//! paper measures this PCIe copy separately from the factorization), then
//! runs exactly the kernel sequence of Algorithm 3: per level, two batched
//! gemms to form the coupling matrices and the work matrix `W`, a batched LU
//! factorization, a batched LU solve, and one batched gemm update of `Ybig`.
//! The solve stage (Algorithm 4) reuses the stored factors with one batched
//! LU solve and two batched gemms per level.  At the top few levels, where
//! the batch size is tiny, launches are issued on a round-robin pool of
//! streams, mirroring the paper's use of CUDA streams.

use crate::layout::LevelLayout;
use crate::matrix::HodlrMatrix;
use hodlr_batch::{
    extract_diagonals_batched, gemm_batched_aliased, gemm_batched_varied, getrf_batched_varied,
    getrs_batched_varied, Device, DeviceBuffer, GemmDesc, LuDesc, LuSolveDesc, Stream, StreamPool,
};
use hodlr_la::{log_det_from_parts, DenseMatrix, HodlrError, Op, Scalar};
use hodlr_tree::ClusterTree;
use rayon::prelude::*;
use std::ops::Range;

/// Below this many nodes in a level, independent kernels are cycled over a
/// stream pool instead of one big batch (Section III-C).
const STREAM_THRESHOLD: usize = 4;

/// The GPU-style HODLR solver: device-resident data plus the stored
/// factorization state.
pub struct GpuSolver<'d, T: Scalar> {
    device: &'d Device,
    tree: ClusterTree,
    layout: LevelLayout,
    /// Row range of every leaf, in leaf order.
    leaf_ranges: Vec<Range<usize>>,
    /// Element offset of every leaf block inside `dbig`.
    diag_offsets: Vec<usize>,
    /// Leaf diagonal blocks, factorized in place by [`GpuSolver::factorize`].
    dbig: DeviceBuffer<'d, T>,
    /// The flattened bases; overwritten with `Ybig` by the factorization.
    ybig: DeviceBuffer<'d, T>,
    /// The flattened right bases.
    vbig: DeviceBuffer<'d, T>,
    /// Pivots of the leaf diagonal blocks.
    diag_pivots: Vec<Vec<usize>>,
    /// Per level: the coupling matrices `Kbig` (factorized in place).
    k_bufs: Vec<DeviceBuffer<'d, T>>,
    /// Per level: pivots of every coupling matrix.
    k_pivots: Vec<Vec<Vec<usize>>>,
    factored: bool,
    streams: StreamPool,
}

impl<'d, T: Scalar> GpuSolver<'d, T> {
    /// Upload a HODLR matrix to the device.  The transferred bytes are
    /// metered by the device counters (the paper reports using ~12 GB/s of
    /// the PCIe link for this copy).
    pub fn new(device: &'d Device, matrix: &HodlrMatrix<T>) -> Self {
        let tree = matrix.tree().clone();
        let layout = matrix.layout().clone();
        let n = matrix.n();
        let total_cols = layout.total_cols();

        let leaf_ranges: Vec<Range<usize>> = tree.leaves().map(|leaf| tree.range(leaf)).collect();
        let mut diag_offsets = Vec::with_capacity(leaf_ranges.len());
        let mut dbig_host: Vec<T> = Vec::new();
        for (leaf_idx, range) in leaf_ranges.iter().enumerate() {
            diag_offsets.push(dbig_host.len());
            debug_assert_eq!(matrix.diag_block(leaf_idx).rows(), range.len());
            dbig_host.extend_from_slice(matrix.diag_block(leaf_idx).data());
        }

        let dbig = DeviceBuffer::from_host(device, &dbig_host);
        let ybig = DeviceBuffer::from_host(device, matrix.ubig().data());
        let vbig = DeviceBuffer::from_host(device, matrix.vbig().data());
        debug_assert_eq!(ybig.len(), n * total_cols);

        GpuSolver {
            device,
            tree,
            layout,
            leaf_ranges,
            diag_offsets,
            dbig,
            ybig,
            vbig,
            diag_pivots: Vec::new(),
            k_bufs: Vec::new(),
            k_pivots: Vec::new(),
            factored: false,
            streams: StreamPool::new(4),
        }
    }

    /// The device this solver runs on.
    pub fn device(&self) -> &'d Device {
        self.device
    }

    /// `true` once [`GpuSolver::factorize`] has completed successfully.
    pub fn is_factored(&self) -> bool {
        self.factored
    }

    /// Matrix size `N`.
    pub fn n(&self) -> usize {
        self.tree.n()
    }

    /// Scalar entries resident in device buffers: the packed diagonal
    /// blocks, both basis stacks, and (after factorization) the per-level
    /// coupling factors.  Mirrors
    /// [`SerialFactorization::storage_entries`](crate::SerialFactorization::storage_entries)
    /// so cache layers can budget either backend the same way.
    pub fn storage_entries(&self) -> usize {
        self.dbig.len()
            + self.ybig.len()
            + self.vbig.len()
            + self.k_bufs.iter().map(|b| b.len()).sum::<usize>()
    }

    fn n_rows(&self) -> usize {
        self.tree.n()
    }

    /// Stream to issue a launch of `batch` problems on: the default stream
    /// for large batches, a pooled stream for the tiny top-level batches.
    fn stream_for(&self, batch: usize) -> Stream {
        if batch < STREAM_THRESHOLD {
            self.streams.next_stream()
        } else {
            Stream::default_stream()
        }
    }

    /// Algorithm 3: batched factorization.
    ///
    /// # Errors
    /// Returns [`HodlrError::SingularPivot`] naming the batch entry whose
    /// block was singular.
    pub fn factorize(&mut self) -> Result<(), HodlrError> {
        let n = self.n_rows();
        let levels = self.tree.levels();
        let total_cols = self.layout.total_cols();

        // --- leaf level (lines 2-3) ----------------------------------------
        let leaf_descs: Vec<LuDesc> = self
            .leaf_ranges
            .iter()
            .zip(self.diag_offsets.iter())
            .map(|(range, &offset)| LuDesc {
                n: range.len(),
                offset,
                ld: range.len(),
            })
            .collect();
        let stream = self.stream_for(leaf_descs.len());
        self.diag_pivots = getrf_batched_varied(self.device, stream, &leaf_descs, &mut self.dbig)
            .map_err(|e| e.into_hodlr("leaf diagonal block"))?;

        if total_cols > 0 {
            let solve_descs: Vec<LuSolveDesc> = self
                .leaf_ranges
                .iter()
                .zip(self.diag_offsets.iter())
                .map(|(range, &offset)| LuSolveDesc {
                    n: range.len(),
                    nrhs: total_cols,
                    a_offset: offset,
                    lda: range.len(),
                    b_offset: range.start,
                    ldb: n,
                })
                .collect();
            let stream = self.stream_for(solve_descs.len());
            getrs_batched_varied(
                self.device,
                stream,
                &solve_descs,
                &self.dbig,
                &self.diag_pivots,
                &mut self.ybig,
            );
        }

        // --- internal levels, deepest first (lines 4-11) -------------------
        self.k_bufs = Vec::with_capacity(levels);
        self.k_pivots = Vec::with_capacity(levels);
        let mut k_bufs_rev: Vec<DeviceBuffer<'d, T>> = Vec::with_capacity(levels);
        let mut k_pivots_rev: Vec<Vec<Vec<usize>>> = Vec::with_capacity(levels);

        for level in (0..levels).rev() {
            let child_level = level + 1;
            let w = self.layout.width(child_level);
            let prefix = self.layout.prefix_cols(level);
            let child_col_start = self.layout.col_range(child_level).start;
            let parents: Vec<usize> = self.tree.level_nodes(level).collect();
            let batch = parents.len();

            if w == 0 {
                k_bufs_rev.push(DeviceBuffer::zeros(self.device, 0));
                k_pivots_rev.push(vec![Vec::new(); batch]);
                continue;
            }

            // Coupling-matrix buffer: one (2w x 2w) block per parent, with
            // the identity blocks written by a small device-side kernel.
            let k_stride = 4 * w * w;
            let mut k_buf = DeviceBuffer::<T>::zeros(self.device, batch * k_stride);
            write_coupling_identities(self.device, &mut k_buf, batch, w);

            // Line 5: T = V^* ⊙ Y for every child, written straight into the
            // diagonal blocks of K.
            let mut t_descs = Vec::with_capacity(2 * batch);
            for (p, &gamma) in parents.iter().enumerate() {
                let (alpha, beta) = self.tree.children(gamma).expect("internal node");
                for (child_idx, child) in [alpha, beta].into_iter().enumerate() {
                    let range = self.tree.range(child);
                    let c_offset = p * k_stride + child_idx * (w * 2 * w + w);
                    t_descs.push(GemmDesc {
                        m: w,
                        n: w,
                        k: range.len(),
                        alpha: T::one(),
                        beta: T::zero(),
                        op_a: Op::ConjTrans,
                        op_b: Op::None,
                        a_offset: child_col_start * n + range.start,
                        lda: n,
                        b_offset: child_col_start * n + range.start,
                        ldb: n,
                        c_offset,
                        ldc: 2 * w,
                    });
                }
            }
            let stream = self.stream_for(batch);
            gemm_batched_varied(
                self.device,
                stream,
                &t_descs,
                &self.vbig,
                &self.ybig,
                &mut k_buf,
            );

            // Line 6: W = V^* ⊙ Ybig(:, 1:prefix), stacked child-over-child
            // per parent so each parent's right-hand side is contiguous.
            let mut w_buf = DeviceBuffer::<T>::zeros(self.device, batch * 2 * w * prefix);
            if prefix > 0 {
                let mut w_descs = Vec::with_capacity(2 * batch);
                for (p, &gamma) in parents.iter().enumerate() {
                    let (alpha, beta) = self.tree.children(gamma).expect("internal node");
                    for (child_idx, child) in [alpha, beta].into_iter().enumerate() {
                        let range = self.tree.range(child);
                        w_descs.push(GemmDesc {
                            m: w,
                            n: prefix,
                            k: range.len(),
                            alpha: T::one(),
                            beta: T::zero(),
                            op_a: Op::ConjTrans,
                            op_b: Op::None,
                            a_offset: child_col_start * n + range.start,
                            lda: n,
                            b_offset: range.start,
                            ldb: n,
                            c_offset: p * 2 * w * prefix + child_idx * w,
                            ldc: 2 * w,
                        });
                    }
                }
                let stream = self.stream_for(batch);
                gemm_batched_varied(
                    self.device,
                    stream,
                    &w_descs,
                    &self.vbig,
                    &self.ybig,
                    &mut w_buf,
                );
            }

            // Line 8: batched LU of the coupling matrices.
            let k_descs: Vec<LuDesc> = (0..batch)
                .map(|p| LuDesc {
                    n: 2 * w,
                    offset: p * k_stride,
                    ld: 2 * w,
                })
                .collect();
            let stream = self.stream_for(batch);
            let pivots = getrf_batched_varied(self.device, stream, &k_descs, &mut k_buf)
                .map_err(|e| e.into_hodlr(format!("coupling matrix at level {level}")))?;

            if prefix > 0 {
                // Line 9: W <- K^{-1} ⊙ W.
                let solve_descs: Vec<LuSolveDesc> = (0..batch)
                    .map(|p| LuSolveDesc {
                        n: 2 * w,
                        nrhs: prefix,
                        a_offset: p * k_stride,
                        lda: 2 * w,
                        b_offset: p * 2 * w * prefix,
                        ldb: 2 * w,
                    })
                    .collect();
                let stream = self.stream_for(batch);
                getrs_batched_varied(
                    self.device,
                    stream,
                    &solve_descs,
                    &k_buf,
                    &pivots,
                    &mut w_buf,
                );

                // Line 10: Ybig(:, 1:prefix) -= Y^{l+1} ⊙ W (A and C alias Ybig).
                let mut update_descs = Vec::with_capacity(2 * batch);
                for (p, &gamma) in parents.iter().enumerate() {
                    let (alpha, beta) = self.tree.children(gamma).expect("internal node");
                    for (child_idx, child) in [alpha, beta].into_iter().enumerate() {
                        let range = self.tree.range(child);
                        update_descs.push(GemmDesc {
                            m: range.len(),
                            n: prefix,
                            k: w,
                            alpha: -T::one(),
                            beta: T::one(),
                            op_a: Op::None,
                            op_b: Op::None,
                            a_offset: child_col_start * n + range.start,
                            lda: n,
                            b_offset: p * 2 * w * prefix + child_idx * w,
                            ldb: 2 * w,
                            c_offset: range.start,
                            ldc: n,
                        });
                    }
                }
                let stream = self.stream_for(batch);
                gemm_batched_aliased(self.device, stream, &update_descs, &mut self.ybig, &w_buf);
            }

            k_bufs_rev.push(k_buf);
            k_pivots_rev.push(pivots);
        }

        // Stored deepest-level first in the loop above; store per level index.
        k_bufs_rev.reverse();
        k_pivots_rev.reverse();
        self.k_bufs = k_bufs_rev;
        self.k_pivots = k_pivots_rev;
        self.factored = true;
        Ok(())
    }

    /// Log-determinant of the factorized matrix via the product form of
    /// Section III-E (a), evaluated from the batched LU factors: the `U`
    /// diagonals of every leaf block and coupling matrix are gathered with
    /// one [`extract_diagonals_batched`] launch per buffer, then folded with
    /// the *same* per-factor recursion as
    /// [`SerialFactorization::log_det`](crate::SerialFactorization::log_det)
    /// — same factor order (leaves first, then coupling levels from the top
    /// of the tree down), same pivot-parity handling, same `(-1)^w`
    /// Sylvester correction — so the two backends agree **bitwise**.
    ///
    /// Returns `(log|det(A)|, sign)` where `sign` is a unit-modulus scalar.
    ///
    /// # Errors
    /// [`HodlrError::NotFactorized`] when [`GpuSolver::factorize`] has not
    /// completed yet.
    pub fn log_det(&self) -> Result<(T::Real, T), HodlrError> {
        if !self.factored {
            return Err(HodlrError::NotFactorized);
        }
        let mut log_abs = <T::Real as Scalar>::zero();
        let mut sign = T::one();

        // Leaf diagonal blocks, in leaf order.
        let leaf_descs: Vec<LuDesc> = self
            .leaf_ranges
            .iter()
            .zip(self.diag_offsets.iter())
            .map(|(range, &offset)| LuDesc {
                n: range.len(),
                offset,
                ld: range.len(),
            })
            .collect();
        let stream = self.stream_for(leaf_descs.len());
        let leaf_diags = extract_diagonals_batched(self.device, stream, &leaf_descs, &self.dbig);
        for (diag, piv) in leaf_diags.iter().zip(&self.diag_pivots) {
            let (la, s) = log_det_from_parts(diag.iter().copied(), piv);
            log_abs += la;
            sign *= s;
        }

        // Coupling matrices, level 0 (top split) downwards, node order
        // within a level — the iteration order of the serial recursion.
        for level in 0..self.tree.levels() {
            let w = self.layout.width(level + 1);
            if w == 0 {
                continue;
            }
            let batch = self.k_pivots[level].len();
            let k_stride = 4 * w * w;
            let descs: Vec<LuDesc> = (0..batch)
                .map(|p| LuDesc {
                    n: 2 * w,
                    offset: p * k_stride,
                    ld: 2 * w,
                })
                .collect();
            let stream = self.stream_for(batch);
            let diags = extract_diagonals_batched(self.device, stream, &descs, &self.k_bufs[level]);
            for (diag, piv) in diags.iter().zip(&self.k_pivots[level]) {
                let (la, s) = log_det_from_parts(diag.iter().copied(), piv);
                log_abs += la;
                sign *= s;
                // det([[A, I], [I, B]]) = (-1)^w det(K): the 2x2 coupling
                // block's determinant differs from det(K_gamma) by the
                // permutation that swaps the two identity blocks.
                if w % 2 == 1 {
                    sign = -sign;
                }
            }
        }
        Ok((log_abs, sign))
    }

    /// Algorithm 4: batched solve of `A x = b` for one right-hand side.
    ///
    /// # Errors
    /// [`HodlrError::NotFactorized`] before [`GpuSolver::factorize`], and
    /// [`HodlrError::DimensionMismatch`] when `b` has length `!= n`.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, HodlrError> {
        if !self.factored {
            return Err(HodlrError::NotFactorized);
        }
        HodlrError::check_dims("right-hand side", self.n_rows(), b.len())?;
        Ok(self.solve_matrix_host(b, 1))
    }

    /// Algorithm 4 with multiple right-hand sides given as an `N x k` matrix.
    ///
    /// # Errors
    /// [`HodlrError::NotFactorized`] before [`GpuSolver::factorize`], and
    /// [`HodlrError::DimensionMismatch`] when `b` has `!= n` rows.
    pub fn solve_matrix(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>, HodlrError> {
        if !self.factored {
            return Err(HodlrError::NotFactorized);
        }
        HodlrError::check_dims("right-hand side block rows", self.n_rows(), b.rows())?;
        let data = self.solve_matrix_host(b.data(), b.cols());
        Ok(DenseMatrix::from_col_major(b.rows(), b.cols(), data))
    }

    /// Blocked multi-RHS solve: pack `rhs` into one `N x k` device matrix
    /// and run a single Algorithm-4 sweep.  Every level then issues one
    /// batched gemm / batched LU-solve launch covering all `k` right-hand
    /// sides, instead of the `k` separate launch sequences a per-RHS
    /// [`GpuSolver::solve`] loop would issue — the difference is visible in
    /// the [`Device`] launch counters.
    ///
    /// # Errors
    /// [`HodlrError::NotFactorized`] before [`GpuSolver::factorize`], and
    /// [`HodlrError::DimensionMismatch`] naming the first right-hand side
    /// whose length is `!= n`.
    pub fn solve_block(&self, rhs: &[impl AsRef<[T]> + Sync]) -> Result<Vec<Vec<T>>, HodlrError> {
        if !self.factored {
            return Err(HodlrError::NotFactorized);
        }
        let n = self.n_rows();
        let k = rhs.len();
        for (j, col) in rhs.iter().enumerate() {
            HodlrError::check_dims(format!("right-hand side {j}"), n, col.as_ref().len())?;
        }
        // Pack the right-hand sides into one column-major N x k host matrix;
        // the columns are disjoint, so the scatter runs on the worker pool.
        let mut packed = vec![T::zero(); n * k];
        packed
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(j, col)| col.copy_from_slice(rhs[j].as_ref()));
        let x = self.solve_matrix_host(&packed, k);
        let mut out = vec![Vec::new(); k];
        out.par_iter_mut()
            .enumerate()
            .for_each(|(j, col)| *col = x[j * n..(j + 1) * n].to_vec());
        Ok(out)
    }

    /// The shared Algorithm-4 sweep; the public entry points have already
    /// validated the factorization state and the right-hand-side shape.
    fn solve_matrix_host(&self, b: &[T], nrhs: usize) -> Vec<T> {
        debug_assert!(self.factored);
        let n = self.n_rows();
        debug_assert_eq!(b.len(), n * nrhs);
        let levels = self.tree.levels();

        // Upload the right-hand side (metered H2D transfer).
        let mut x_buf = DeviceBuffer::from_host(self.device, b);

        // Leaf sweep (line 2).
        let solve_descs: Vec<LuSolveDesc> = self
            .leaf_ranges
            .iter()
            .zip(self.diag_offsets.iter())
            .map(|(range, &offset)| LuSolveDesc {
                n: range.len(),
                nrhs,
                a_offset: offset,
                lda: range.len(),
                b_offset: range.start,
                ldb: n,
            })
            .collect();
        let stream = self.stream_for(solve_descs.len());
        getrs_batched_varied(
            self.device,
            stream,
            &solve_descs,
            &self.dbig,
            &self.diag_pivots,
            &mut x_buf,
        );

        // Level sweep, deepest first (lines 3-7).
        for level in (0..levels).rev() {
            let child_level = level + 1;
            let w = self.layout.width(child_level);
            if w == 0 {
                continue;
            }
            let child_col_start = self.layout.col_range(child_level).start;
            let parents: Vec<usize> = self.tree.level_nodes(level).collect();
            let batch = parents.len();

            // w = V^* ⊙ x (line 4), stacked per parent.
            let mut w_buf = DeviceBuffer::<T>::zeros(self.device, batch * 2 * w * nrhs);
            let mut w_descs = Vec::with_capacity(2 * batch);
            for (p, &gamma) in parents.iter().enumerate() {
                let (alpha, beta) = self.tree.children(gamma).expect("internal node");
                for (child_idx, child) in [alpha, beta].into_iter().enumerate() {
                    let range = self.tree.range(child);
                    w_descs.push(GemmDesc {
                        m: w,
                        n: nrhs,
                        k: range.len(),
                        alpha: T::one(),
                        beta: T::zero(),
                        op_a: Op::ConjTrans,
                        op_b: Op::None,
                        a_offset: child_col_start * n + range.start,
                        lda: n,
                        b_offset: range.start,
                        ldb: n,
                        c_offset: p * 2 * w * nrhs + child_idx * w,
                        ldc: 2 * w,
                    });
                }
            }
            let stream = self.stream_for(batch);
            gemm_batched_varied(
                self.device,
                stream,
                &w_descs,
                &self.vbig,
                &x_buf,
                &mut w_buf,
            );

            // w <- K^{-1} ⊙ w (line 5).
            let k_stride = 4 * w * w;
            let solve_descs: Vec<LuSolveDesc> = (0..batch)
                .map(|p| LuSolveDesc {
                    n: 2 * w,
                    nrhs,
                    a_offset: p * k_stride,
                    lda: 2 * w,
                    b_offset: p * 2 * w * nrhs,
                    ldb: 2 * w,
                })
                .collect();
            let stream = self.stream_for(batch);
            getrs_batched_varied(
                self.device,
                stream,
                &solve_descs,
                &self.k_bufs[level],
                &self.k_pivots[level],
                &mut w_buf,
            );

            // x <- x - Y ⊙ w (line 6).
            let mut update_descs = Vec::with_capacity(2 * batch);
            for (p, &gamma) in parents.iter().enumerate() {
                let (alpha, beta) = self.tree.children(gamma).expect("internal node");
                for (child_idx, child) in [alpha, beta].into_iter().enumerate() {
                    let range = self.tree.range(child);
                    update_descs.push(GemmDesc {
                        m: range.len(),
                        n: nrhs,
                        k: w,
                        alpha: -T::one(),
                        beta: T::one(),
                        op_a: Op::None,
                        op_b: Op::None,
                        a_offset: child_col_start * n + range.start,
                        lda: n,
                        b_offset: p * 2 * w * nrhs + child_idx * w,
                        ldb: 2 * w,
                        c_offset: range.start,
                        ldc: n,
                    });
                }
            }
            let stream = self.stream_for(batch);
            gemm_batched_varied(
                self.device,
                stream,
                &update_descs,
                &self.ybig,
                &w_buf,
                &mut x_buf,
            );
        }

        // Download the solution (metered D2H transfer).
        x_buf.download()
    }
}

/// Write the two identity blocks of every coupling matrix
/// `K = [[T_a, I], [I, T_b]]` (a small device-side kernel in the real
/// implementation; here a direct write into device memory, metered as one
/// kernel launch with no flops).
fn write_coupling_identities<T: Scalar>(
    device: &Device,
    k_buf: &mut DeviceBuffer<'_, T>,
    batch: usize,
    w: usize,
) {
    device.record_launch("assemble_coupling_identity", batch, 0, 0);
    let k_stride = 4 * w * w;
    let data = k_buf.data_mut();
    for p in 0..batch {
        let base = p * k_stride;
        for i in 0..w {
            // Block (0, 1): entry (i, w + i).
            data[base + (w + i) * 2 * w + i] = T::one();
            // Block (1, 0): entry (w + i, i).
            data[base + i * 2 * w + w + i] = T::one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::random_hodlr;
    use hodlr_la::{Complex64, RealScalar};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_gpu_solver<T: Scalar>(n: usize, levels: usize, rank: usize, seed: u64, tol: f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m: HodlrMatrix<T> = random_hodlr(&mut rng, n, levels, rank);
        let device = Device::new();
        let mut gpu = GpuSolver::new(&device, &m);
        gpu.factorize().expect("diag dominant HODLR is invertible");
        let b: Vec<T> = hodlr_la::random::random_vector(&mut rng, n);
        let x = gpu.solve(&b).unwrap();
        assert!(
            m.relative_residual(&x, &b).to_f64() < tol,
            "residual {}",
            m.relative_residual(&x, &b).to_f64()
        );
        // Agreement with the serial factorization (Algorithms 1-2).
        let serial = m.factorize_serial().unwrap();
        let x_serial = serial.solve(&b);
        for (a, s) in x.iter().zip(x_serial.iter()) {
            assert!((*a - *s).abs().to_f64() < tol, "{a:?} vs {s:?}");
        }
    }

    #[test]
    fn gpu_solver_matches_serial_real() {
        check_gpu_solver::<f64>(64, 3, 3, 71, 1e-9);
        check_gpu_solver::<f64>(96, 2, 4, 72, 1e-9);
    }

    #[test]
    fn gpu_solver_matches_serial_complex() {
        check_gpu_solver::<Complex64>(48, 2, 2, 73, 1e-9);
    }

    #[test]
    fn gpu_solver_non_power_of_two_and_deep() {
        check_gpu_solver::<f64>(100, 3, 2, 74, 1e-9);
        check_gpu_solver::<f64>(256, 5, 1, 75, 1e-8);
    }

    #[test]
    fn gpu_solver_on_sequential_device_matches_parallel_device() {
        let mut rng = StdRng::seed_from_u64(76);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 64, 3, 2);
        let b: Vec<f64> = hodlr_la::random::random_vector(&mut rng, 64);

        let dev_par = Device::new();
        let mut gpu_par = GpuSolver::new(&dev_par, &m);
        gpu_par.factorize().unwrap();
        let x_par = gpu_par.solve(&b).unwrap();

        let dev_seq = Device::sequential();
        let mut gpu_seq = GpuSolver::new(&dev_seq, &m);
        gpu_seq.factorize().unwrap();
        let x_seq = gpu_seq.solve(&b).unwrap();

        for (a, s) in x_par.iter().zip(x_seq.iter()) {
            assert!((a - s).abs() < 1e-12);
        }
    }

    #[test]
    fn multiple_right_hand_sides() {
        let mut rng = StdRng::seed_from_u64(77);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 48, 2, 3);
        let device = Device::new();
        let mut gpu = GpuSolver::new(&device, &m);
        gpu.factorize().unwrap();
        let b: DenseMatrix<f64> = hodlr_la::random::random_matrix(&mut rng, 48, 3);
        let x = gpu.solve_matrix(&b).unwrap();
        let residual = m.matmat(&x).sub(&b).norm_max();
        assert!(residual < 1e-9, "residual {residual}");
    }

    #[test]
    fn counters_record_transfers_and_launches() {
        let mut rng = StdRng::seed_from_u64(78);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 64, 2, 2);
        let device = Device::new();
        let before_upload = device.counters();
        let mut gpu = GpuSolver::new(&device, &m);
        let after_upload = device.counters().since(&before_upload);
        // Dbig + Ubig + Vbig were copied host to device.
        let expected_upload = (m.storage_entries() * std::mem::size_of::<f64>()) as u64;
        assert_eq!(after_upload.h2d_bytes, expected_upload);

        let before_factor = device.counters();
        gpu.factorize().unwrap();
        let factor_counters = device.counters().since(&before_factor);
        assert!(factor_counters.kernel_launches > 0);
        assert!(factor_counters.flops > 0);
        // No host/device traffic during the factorization itself.
        assert_eq!(factor_counters.h2d_bytes, 0);

        let before_solve = device.counters();
        let b = vec![1.0; 64];
        let _ = gpu.solve(&b).unwrap();
        let solve_counters = device.counters().since(&before_solve);
        // b up, x down.
        assert_eq!(solve_counters.h2d_bytes, 64 * 8);
        assert_eq!(solve_counters.d2h_bytes, 64 * 8);
    }

    #[test]
    fn solving_before_factorizing_is_a_typed_error() {
        let mut rng = StdRng::seed_from_u64(79);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 32, 2, 1);
        let device = Device::new();
        let mut gpu = GpuSolver::new(&device, &m);
        assert_eq!(
            gpu.solve(&vec![1.0; 32]).unwrap_err(),
            HodlrError::NotFactorized
        );
        assert_eq!(
            gpu.solve_matrix(&DenseMatrix::zeros(32, 2)).unwrap_err(),
            HodlrError::NotFactorized
        );
        assert_eq!(
            gpu.solve_block(&[vec![1.0; 32]]).unwrap_err(),
            HodlrError::NotFactorized
        );
        assert_eq!(gpu.log_det().unwrap_err(), HodlrError::NotFactorized);

        // After factorizing, wrong-size right-hand sides are named.
        gpu.factorize().unwrap();
        let err = gpu.solve(&vec![1.0; 31]).unwrap_err();
        assert_eq!(err, HodlrError::dims("right-hand side", 32, 31));
        let err = gpu
            .solve_matrix(&DenseMatrix::<f64>::zeros(30, 2))
            .unwrap_err();
        assert_eq!(err, HodlrError::dims("right-hand side block rows", 32, 30));
        let err = gpu.solve_block(&[vec![1.0; 32], vec![1.0; 3]]).unwrap_err();
        assert_eq!(err, HodlrError::dims("right-hand side 1", 32, 3));
    }

    #[test]
    fn log_det_matches_serial_bitwise() {
        fn check<T: Scalar>(n: usize, levels: usize, rank: usize, seed: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m: HodlrMatrix<T> = random_hodlr(&mut rng, n, levels, rank);
            let serial = m.factorize_serial().unwrap();
            let (log_serial, sign_serial) = serial.log_det();
            let device = Device::new();
            let mut gpu = GpuSolver::new(&device, &m);
            gpu.factorize().unwrap();
            let (log_gpu, sign_gpu) = gpu.log_det().unwrap();
            assert_eq!(
                log_serial.to_f64().to_bits(),
                log_gpu.to_f64().to_bits(),
                "{log_serial:?} vs {log_gpu:?}"
            );
            assert_eq!(sign_serial, sign_gpu);
        }
        check::<f64>(64, 3, 3, 81);
        check::<f64>(101, 3, 2, 82);
        check::<Complex64>(48, 2, 2, 83);
    }

    #[test]
    fn log_det_extraction_is_metered() {
        let mut rng = StdRng::seed_from_u64(84);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 64, 2, 2);
        let device = Device::new();
        let mut gpu = GpuSolver::new(&device, &m);
        gpu.factorize().unwrap();
        let before = device.counters();
        let _ = gpu.log_det().unwrap();
        let metered = device.counters().since(&before);
        // One gather launch for the leaves plus one per coupling level.
        assert_eq!(metered.kernel_launches, 1 + 2);
        assert!(metered.d2h_bytes > 0);
        assert_eq!(metered.h2d_bytes, 0);
    }

    #[test]
    fn singular_leaf_reports_batch_index() {
        let mut rng = StdRng::seed_from_u64(80);
        let m: HodlrMatrix<f64> = random_hodlr(&mut rng, 32, 1, 1);
        let diag = vec![m.diag_block(0).clone(), DenseMatrix::zeros(16, 16)];
        let singular = HodlrMatrix::from_parts(
            m.tree().clone(),
            m.layout().clone(),
            (0..=m.tree().num_nodes()).map(|_| 1).collect(),
            m.ubig().clone(),
            m.vbig().clone(),
            diag,
        )
        .unwrap();
        let device = Device::new();
        let mut gpu = GpuSolver::new(&device, &singular);
        let err = gpu.factorize().expect_err("second leaf is singular");
        match err {
            HodlrError::SingularPivot {
                batch_index: Some(b),
                ref context,
                ..
            } => {
                assert_eq!(b, 1);
                assert!(context.contains("leaf diagonal block"), "{context}");
            }
            other => panic!("unexpected error {other}"),
        }
    }
}
