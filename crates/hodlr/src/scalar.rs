//! The sealed [`SolveScalar`] extension trait: per-scalar dispatch of the
//! [`Precision::MixedRefine`](crate::Precision) policy and of the
//! [`FactorPrecision::CompactLower`](crate::FactorPrecision) storage mode.
//!
//! Mixed-precision refinement factorizes the HODLR approximation in the
//! *companion lower precision* (`f64 -> f32`, `Complex64 -> Complex32`) and
//! recovers working-precision accuracy by iterative refinement.  The demoted
//! factorization itself runs on whichever [`Backend`] the
//! builder selected, so `Backend::Batched` + `Precision::MixedRefine`
//! demotes, uploads and factorizes on the virtual device in `f32`.  Compact
//! storage goes one step further: the representation is *built* in the
//! lower precision (the working-precision matrix never exists) and the
//! refinement residuals come from the promoted operator instead.  For the
//! scalars that *are* the lower precision (`f32`, `Complex32`) both
//! policies are rejected with a typed error instead of a compile failure,
//! keeping [`Hodlr`] generic over every [`Scalar`].

use crate::build::{Backend, Hodlr};
use crate::compact::{build_compact_store, CompactConfig, CompactOps};
use crate::solve::Solve;
use hodlr_compress::MatrixEntrySource;
use hodlr_core::{BuildOptions, GpuSolver};
use hodlr_la::{Complex32, Complex64, DenseMatrix, HodlrError, RealScalar, Scalar};
use hodlr_solver::{demote_hodlr, iterative_refinement, DemoteScalar, LinearOperator};
use hodlr_tree::ClusterTree;

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
    impl Sealed for super::Complex32 {}
    impl Sealed for super::Complex64 {}
}

/// A [`Scalar`] the façade can factorize under every precision policy.
///
/// Sealed: implemented for exactly `f32`, `f64`, `Complex32` and
/// `Complex64`.  The methods are implementation details of
/// [`Factorize`](crate::Factorize) for [`Hodlr`] and of
/// [`HodlrBuilder::build`](crate::HodlrBuilder::build).
pub trait SolveScalar: Scalar + sealed::Sealed {
    /// Build the mixed-precision solver for `hodlr`, or explain why the
    /// scalar cannot be demoted.
    #[doc(hidden)]
    fn mixed_factorization(
        hodlr: &Hodlr<Self>,
    ) -> Result<Box<dyn Solve<Self> + Send + Sync + '_>, HodlrError>;

    /// Compress `source` straight into compact lower-precision storage, or
    /// explain why the scalar cannot be demoted.
    #[doc(hidden)]
    fn build_compact(
        source: &(dyn MatrixEntrySource<Self> + '_),
        tree: ClusterTree,
        config: &CompactConfig,
        options: BuildOptions<'_>,
    ) -> Result<Box<dyn CompactOps<Self>>, HodlrError>;
}

impl SolveScalar for f64 {
    fn mixed_factorization(
        hodlr: &Hodlr<Self>,
    ) -> Result<Box<dyn Solve<Self> + Send + Sync + '_>, HodlrError> {
        mixed_factorization_impl(hodlr)
    }

    fn build_compact(
        source: &(dyn MatrixEntrySource<Self> + '_),
        tree: ClusterTree,
        config: &CompactConfig,
        options: BuildOptions<'_>,
    ) -> Result<Box<dyn CompactOps<Self>>, HodlrError> {
        build_compact_store(source, tree, config, options)
    }
}

impl SolveScalar for Complex64 {
    fn mixed_factorization(
        hodlr: &Hodlr<Self>,
    ) -> Result<Box<dyn Solve<Self> + Send + Sync + '_>, HodlrError> {
        mixed_factorization_impl(hodlr)
    }

    fn build_compact(
        source: &(dyn MatrixEntrySource<Self> + '_),
        tree: ClusterTree,
        config: &CompactConfig,
        options: BuildOptions<'_>,
    ) -> Result<Box<dyn CompactOps<Self>>, HodlrError> {
        build_compact_store(source, tree, config, options)
    }
}

impl SolveScalar for f32 {
    fn mixed_factorization(
        _: &Hodlr<Self>,
    ) -> Result<Box<dyn Solve<Self> + Send + Sync + '_>, HodlrError> {
        Err(HodlrError::config(
            "Precision::MixedRefine requires a double-precision scalar (f64 or \
             Complex64); f32 has no lower companion precision",
        ))
    }

    fn build_compact(
        _: &(dyn MatrixEntrySource<Self> + '_),
        _: ClusterTree,
        _: &CompactConfig,
        _: BuildOptions<'_>,
    ) -> Result<Box<dyn CompactOps<Self>>, HodlrError> {
        Err(HodlrError::config(
            "FactorPrecision::CompactLower requires a double-precision scalar (f64 or \
             Complex64); f32 has no lower companion precision",
        ))
    }
}

impl SolveScalar for Complex32 {
    fn mixed_factorization(
        _: &Hodlr<Self>,
    ) -> Result<Box<dyn Solve<Self> + Send + Sync + '_>, HodlrError> {
        Err(HodlrError::config(
            "Precision::MixedRefine requires a double-precision scalar (f64 or \
             Complex64); Complex32 has no lower companion precision",
        ))
    }

    fn build_compact(
        _: &(dyn MatrixEntrySource<Self> + '_),
        _: ClusterTree,
        _: &CompactConfig,
        _: BuildOptions<'_>,
    ) -> Result<Box<dyn CompactOps<Self>>, HodlrError> {
        Err(HodlrError::config(
            "FactorPrecision::CompactLower requires a double-precision scalar (f64 or \
             Complex64); Complex32 has no lower companion precision",
        ))
    }
}

/// Demote, factorize with the configured backend, and wrap in the
/// refinement loop.
fn mixed_factorization_impl<T>(
    hodlr: &Hodlr<T>,
) -> Result<Box<dyn Solve<T> + Send + Sync + '_>, HodlrError>
where
    T: DemoteScalar + SolveScalar,
{
    let matrix = hodlr.matrix().ok_or_else(|| {
        HodlrError::config(
            "Precision::MixedRefine demotes the working-precision matrix; a compact \
             store is already lower-precision and factorizes with refinement directly",
        )
    })?;
    let demoted = demote_hodlr(matrix);
    let inner: Box<dyn Solve<T::Lower> + Send + Sync + '_> = match hodlr.backend() {
        Backend::Serial => Box::new(demoted.factorize_serial()?),
        Backend::Batched => {
            let mut solver = GpuSolver::new(hodlr.device(), &demoted);
            solver.factorize()?;
            Box::new(solver)
        }
    };
    Ok(Box::new(RefinedSolver {
        op: matrix,
        inner,
        tol: hodlr.refine_tol(),
        max_iters: hodlr.refine_max_iters(),
        context: "mixed-precision iterative refinement",
    }))
}

/// A lower-precision factorization plus working-precision iterative
/// refinement to the configured tolerance — the solver behind both
/// [`Precision::MixedRefine`](crate::Precision) (residuals from the
/// working-precision matrix) and
/// [`FactorPrecision::CompactLower`](crate::FactorPrecision) (residuals
/// from the promoted compact operator).
pub(crate) struct RefinedSolver<'m, T: DemoteScalar, A: LinearOperator<T> + Send + Sync> {
    /// The working-precision residual operator.
    pub(crate) op: A,
    pub(crate) inner: Box<dyn Solve<T::Lower> + Send + Sync + 'm>,
    pub(crate) tol: f64,
    pub(crate) max_iters: usize,
    pub(crate) context: &'static str,
}

/// The lower-precision factorization exposed as a working-precision
/// `M^{-1}` operator: residuals are demoted, solved, and the correction
/// promoted back.
struct DemotedPrecondOp<'a, T: DemoteScalar> {
    inner: &'a dyn Solve<T::Lower>,
}

impl<T: DemoteScalar> LinearOperator<T> for DemotedPrecondOp<'_, T> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        let demoted: Vec<T::Lower> = x.iter().map(|&v| v.demote()).collect();
        let solved = self
            .inner
            .solve(&demoted)
            .expect("refinement residual has the factorization's dimension");
        for (yi, lo) in y.iter_mut().zip(solved) {
            *yi = T::promote(lo);
        }
    }
}

impl<T: DemoteScalar, A: LinearOperator<T> + Send + Sync> Solve<T> for RefinedSolver<'_, T, A> {
    fn dim(&self) -> usize {
        self.op.dim()
    }

    fn solve_in_place(&self, x: &mut [T]) -> Result<(), HodlrError> {
        HodlrError::check_dims("right-hand side", self.dim(), x.len())?;
        let m = DemotedPrecondOp::<T> {
            inner: self.inner.as_ref(),
        };
        let out = iterative_refinement(
            &self.op,
            &m,
            x,
            hodlr_solver::RefinementOptions {
                tol: self.tol,
                max_iters: self.max_iters,
            },
        )?;
        // The best iterate is written back even when refinement stalls, so
        // callers that can live with a best-effort answer (e.g. a Krylov
        // method applying this as a preconditioner) still get one alongside
        // the typed error.
        x.copy_from_slice(&out.x);
        if !out.converged {
            return Err(HodlrError::NonConvergence {
                iterations: out.iterations,
                relative_residual: out.relative_residual,
                context: self.context.to_string(),
            });
        }
        Ok(())
    }

    fn solve_block_in_place(&self, x: &mut DenseMatrix<T>) -> Result<(), HodlrError> {
        HodlrError::check_dims("right-hand side block rows", self.dim(), x.rows())?;
        // Refinement tracks one residual per right-hand side; sweep columns.
        // Every column is refined (best effort) before the first
        // non-convergence is reported.
        let mut first_err = None;
        for j in 0..x.cols() {
            if let Err(e) = self.solve_in_place(x.col_mut(j)) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The log-determinant of the *lower-precision* factors, promoted to
    /// the working precision.  Accurate to the lower precision's epsilon
    /// (~`1e-7` relative for `f64`/`Complex64` scalars) — refinement
    /// improves solves, not determinants.
    fn log_det(&self) -> Result<(T::Real, T), HodlrError> {
        let (log_abs, sign) = self.inner.log_det()?;
        Ok((
            <T::Real as RealScalar>::from_f64_real(RealScalar::to_f64(log_abs)),
            T::promote(sign),
        ))
    }

    /// Resident bytes of the *lower-precision* factors (half the
    /// full-precision footprint — the point of the policy).
    fn factor_bytes(&self) -> u64 {
        self.inner.factor_bytes()
    }
}
