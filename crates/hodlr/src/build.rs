//! The [`Hodlr`] handle and its fluent [`HodlrBuilder`].
//!
//! ```
//! use hodlr::prelude::*;
//!
//! let a = DenseMatrix::from_col_major(4, 4, vec![
//!     5.0, 1.0, 0.5, 0.2,
//!     1.0, 5.0, 1.0, 0.5,
//!     0.5, 1.0, 5.0, 1.0,
//!     0.2, 0.5, 1.0, 5.0,
//! ]);
//! let hodlr = Hodlr::builder()
//!     .dense(&a)
//!     .leaf_size(2)
//!     .tolerance(1e-12)
//!     .backend(Backend::Serial)
//!     .build()
//!     .unwrap();
//! let x = hodlr.factorize().unwrap().solve(&[1.0, 2.0, 3.0, 4.0]).unwrap();
//! assert!(hodlr.relative_residual(&x, &[1.0, 2.0, 3.0, 4.0]) < 1e-10);
//! ```

use crate::scalar::SolveScalar;
use crate::solve::{Factorization, Factorize, Solve};
use hodlr_batch::Device;
use hodlr_compress::{CompressionConfig, CompressionMethod, MatrixEntrySource};
use hodlr_core::{
    build_from_dense, build_from_dense_symmetric, build_from_source, build_from_source_symmetric,
    GpuSolver, GpuSymmetricSolver, HodlrMatrix, Symmetry,
};
use hodlr_la::{DenseMatrix, HodlrError, RealScalar, Scalar};
use hodlr_solver::LinearOperator;
use hodlr_tree::ClusterTree;

/// Which factorization backend serves this matrix.
///
/// `Hash` is derived so the pair can participate in cache keys (e.g. the
/// `hodlr-serve` factorization cache keys on backend + precision).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The level-by-level serial factorization (Algorithms 1–2), the
    /// paper's single-core baseline.
    Serial,
    /// The batched factorization on the virtual batched-BLAS device
    /// (Algorithms 3–4), the paper's "GPU HODLR solver".
    Batched,
}

/// The arithmetic policy of the factorization.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Factorize and solve in the working precision.
    Full,
    /// Factorize in the companion lower precision (`f64 -> f32`,
    /// `Complex64 -> Complex32`; half the memory and flop width) and
    /// recover working-precision accuracy by iterative refinement — the
    /// paper's Table IV(b) regime.
    MixedRefine,
}

/// How the cluster tree over `0..n` is chosen.
#[derive(Clone, Debug)]
pub enum TreePolicy {
    /// Deepest tree whose leaves hold at least this many indices (the
    /// paper fixes 64 and lets `L = O(log N)` grow).
    LeafSize(usize),
    /// Exactly this many levels, splitting every range as evenly as
    /// possible.
    Levels(usize),
    /// An explicit tree (e.g. from
    /// [`partition_points`](hodlr_tree::partition_points), which reorders
    /// a point cloud by recursive bisection first).
    Explicit(ClusterTree),
}

enum BuilderInput<'a, T: Scalar> {
    Dense(&'a DenseMatrix<T>),
    Source(&'a dyn MatrixEntrySource<T>),
    Matrix(HodlrMatrix<T>),
}

/// Fluent configuration for [`Hodlr`]; see [`Hodlr::builder`].
pub struct HodlrBuilder<'a, T: Scalar> {
    input: Option<BuilderInput<'a, T>>,
    tree: TreePolicy,
    method: CompressionMethod,
    tol: f64,
    max_rank: Option<usize>,
    strict_rank: bool,
    backend: Backend,
    precision: Precision,
    symmetry: Symmetry,
    threads: Option<usize>,
    refine_tol: f64,
    refine_max_iters: usize,
}

impl<T: Scalar> Default for HodlrBuilder<'_, T> {
    fn default() -> Self {
        HodlrBuilder {
            input: None,
            tree: TreePolicy::LeafSize(64),
            method: CompressionMethod::AcaRook,
            tol: 1e-8,
            max_rank: None,
            strict_rank: false,
            backend: Backend::Serial,
            precision: Precision::Full,
            symmetry: Symmetry::General,
            threads: None,
            refine_tol: 1e-12,
            refine_max_iters: 50,
        }
    }
}

impl<'a, T: Scalar> HodlrBuilder<'a, T> {
    /// Compress this lazily evaluated entry source (kernel matrix,
    /// discretized integral operator, ...); the matrix is never formed
    /// densely.
    pub fn source(mut self, source: &'a (impl MatrixEntrySource<T> + 'a)) -> Self {
        self.input = Some(BuilderInput::Source(source));
        self
    }

    /// Compress this dense matrix (tests and problems small enough to
    /// materialise).
    pub fn dense(mut self, a: &'a DenseMatrix<T>) -> Self {
        self.input = Some(BuilderInput::Dense(a));
        self
    }

    /// Adopt an already built [`HodlrMatrix`] (migration path from the
    /// low-level API); the tree policy and compression settings are
    /// ignored.
    pub fn matrix(mut self, matrix: HodlrMatrix<T>) -> Self {
        self.input = Some(BuilderInput::Matrix(matrix));
        self
    }

    /// Tree policy: deepest tree with at least this leaf size (default 64,
    /// the paper's choice).
    pub fn leaf_size(mut self, leaf_size: usize) -> Self {
        self.tree = TreePolicy::LeafSize(leaf_size);
        self
    }

    /// Tree policy: exactly this many levels.
    pub fn levels(mut self, levels: usize) -> Self {
        self.tree = TreePolicy::Levels(levels);
        self
    }

    /// Tree policy: an explicit cluster tree.
    pub fn tree(mut self, tree: ClusterTree) -> Self {
        self.tree = TreePolicy::Explicit(tree);
        self
    }

    /// Compression algorithm (default rook-pivoted ACA, the scheme of the
    /// paper's kernel benchmarks).
    pub fn method(mut self, method: CompressionMethod) -> Self {
        self.method = method;
        self
    }

    /// Relative compression tolerance (default `1e-8`).
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Hard cap on the off-diagonal rank.
    pub fn max_rank(mut self, max_rank: usize) -> Self {
        self.max_rank = Some(max_rank);
        self
    }

    /// Make the rank cap strict: hitting it before the tolerance is
    /// certified fails the build with
    /// [`HodlrError::CompressionRankOverflow`].
    pub fn strict_rank(mut self) -> Self {
        self.strict_rank = true;
        self
    }

    /// Factorization backend (default [`Backend::Serial`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Precision policy (default [`Precision::Full`]).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Declared symmetry structure (default [`Symmetry::General`]).
    ///
    /// [`Symmetry::PositiveDefinite`] and [`Symmetry::Hermitian`] switch
    /// both construction and factorization to the symmetric fast path: the
    /// two off-diagonal blocks of every sibling pair share one low-rank
    /// factor (one compression instead of two, half the basis storage), and
    /// the factorization replaces every LU with a Cholesky-family
    /// factorization at half the flops.  Under
    /// [`Symmetry::PositiveDefinite`] a failed Cholesky pivot surfaces as
    /// the typed [`HodlrError::NotPositiveDefinite`]; under
    /// [`Symmetry::Hermitian`] it falls back to `LDL^*` and then
    /// Bunch-Kaufman instead.
    ///
    /// The caller asserts the input is Hermitian-valued: only its lower
    /// off-diagonal blocks are read, and the upper ones are taken to be
    /// their conjugate transposes.
    pub fn symmetry(mut self, symmetry: Symmetry) -> Self {
        self.symmetry = symmetry;
        self
    }

    /// Run construction, factorization and solves on a dedicated
    /// work-stealing pool with this many participants instead of the
    /// global pool (which honours `HODLR_NUM_THREADS`).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Target relative residual of [`Precision::MixedRefine`] refinement
    /// sweeps (default `1e-12`).
    pub fn refine_tolerance(mut self, tol: f64) -> Self {
        self.refine_tol = tol;
        self
    }

    /// Sweep cap of [`Precision::MixedRefine`] refinement (default 50).
    pub fn refine_max_iters(mut self, max_iters: usize) -> Self {
        self.refine_max_iters = max_iters;
        self
    }

    /// Build the HODLR approximation.
    ///
    /// # Errors
    /// [`HodlrError::InvalidConfig`] for a missing input, a zero-size
    /// problem, a non-positive tolerance, a zero leaf size or thread
    /// count, or a level count deeper than the index set;
    /// [`HodlrError::DimensionMismatch`] for a non-square input or a tree
    /// that does not match it; compression errors (e.g.
    /// [`HodlrError::CompressionRankOverflow`] under a strict rank cap)
    /// propagate.
    pub fn build(self) -> Result<Hodlr<T>, HodlrError> {
        let input = self.input.ok_or_else(|| {
            HodlrError::config(
                "no input given: call .source(..), .dense(..) or .matrix(..) before .build()",
            )
        })?;
        let n = match &input {
            BuilderInput::Dense(a) => a.rows(),
            BuilderInput::Source(s) => s.nrows(),
            BuilderInput::Matrix(m) => m.n(),
        };
        if n == 0 {
            return Err(HodlrError::config(
                "cannot build a HODLR matrix over a zero-size tree",
            ));
        }

        if self.refine_tol <= 0.0 || !self.refine_tol.is_finite() {
            return Err(HodlrError::config(format!(
                "refinement tolerance must be positive and finite, got {:e}",
                self.refine_tol
            )));
        }
        if self.refine_max_iters == 0 {
            return Err(HodlrError::config(
                "refinement sweep cap must be at least 1",
            ));
        }
        if self.precision == Precision::MixedRefine && self.symmetry.is_symmetric() {
            return Err(HodlrError::config(
                "Precision::MixedRefine is not available for symmetric factorizations; \
                 use Precision::Full with Symmetry::PositiveDefinite / Symmetry::Hermitian",
            ));
        }

        let pool = match self.threads {
            None => None,
            Some(0) => {
                return Err(HodlrError::config("thread count must be at least 1"));
            }
            Some(t) => Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(t)
                    .build()
                    .map_err(|e| HodlrError::config(format!("cannot build thread pool: {e}")))?,
            ),
        };

        let matrix = match input {
            BuilderInput::Matrix(m) => m,
            dense_or_source => {
                let tree = match &self.tree {
                    TreePolicy::LeafSize(0) => {
                        return Err(HodlrError::config("leaf size must be at least 1"));
                    }
                    TreePolicy::LeafSize(s) => ClusterTree::with_leaf_size(n, *s),
                    TreePolicy::Levels(l) => {
                        // The shift below is UB-guarded: l >= usize::BITS can
                        // never fit n >= 2^l indices either.
                        if *l >= usize::BITS as usize || n < (1usize << l) {
                            return Err(HodlrError::config(format!(
                                "cannot build {l} levels over {n} indices: a leaf would be empty"
                            )));
                        }
                        ClusterTree::uniform(n, *l)
                    }
                    TreePolicy::Explicit(t) => {
                        HodlrError::check_dims("explicit tree vs input", n, t.n())?;
                        t.clone()
                    }
                };
                let mut config = CompressionConfig::with_tol(T::Real::from_f64_real(self.tol))
                    .method(self.method);
                if let Some(cap) = self.max_rank {
                    config = config.max_rank(cap);
                }
                if self.strict_rank {
                    config = config.strict_rank();
                }
                let symmetric = self.symmetry.is_symmetric();
                let build = || match dense_or_source {
                    BuilderInput::Dense(a) if symmetric => {
                        build_from_dense_symmetric(a, tree, &config)
                    }
                    BuilderInput::Dense(a) => build_from_dense(a, tree, &config),
                    BuilderInput::Source(s) if symmetric => {
                        build_from_source_symmetric(s, tree, &config)
                    }
                    BuilderInput::Source(s) => build_from_source(s, tree, &config),
                    BuilderInput::Matrix(_) => unreachable!("handled above"),
                };
                match &pool {
                    Some(pool) => pool.install(build)?,
                    None => build()?,
                }
            }
        };

        Ok(Hodlr {
            matrix,
            backend: self.backend,
            precision: self.precision,
            symmetry: self.symmetry,
            device: Device::new(),
            pool,
            refine_tol: self.refine_tol,
            refine_max_iters: self.refine_max_iters,
        })
    }
}

/// A HODLR approximation plus its backend configuration: the one front
/// door of the workspace.
///
/// Built with [`Hodlr::builder`]; factorized through the
/// [`Factorize`] trait; solved through the [`Solve`] trait.
/// The handle owns the virtual batched device, so
/// [`Backend::Batched`] factorizations and their launch/flop counters live
/// entirely behind it.
pub struct Hodlr<T: Scalar> {
    matrix: HodlrMatrix<T>,
    backend: Backend,
    precision: Precision,
    symmetry: Symmetry,
    device: Device,
    pool: Option<rayon::ThreadPool>,
    refine_tol: f64,
    refine_max_iters: usize,
}

impl<T: Scalar> Hodlr<T> {
    /// Start configuring a HODLR approximation.
    ///
    /// ```
    /// use hodlr::prelude::*;
    ///
    /// let source = ClosureSource::new(64, 64, |i, j| {
    ///     1.0 / (1.0 + (i as f64 - j as f64).abs()) + if i == j { 3.0 } else { 0.0 }
    /// });
    /// let hodlr = Hodlr::builder()
    ///     .source(&source)
    ///     .leaf_size(16)
    ///     .tolerance(1e-10)
    ///     .method(CompressionMethod::AcaRook)
    ///     .backend(Backend::Batched)
    ///     .precision(Precision::Full)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(hodlr.n(), 64);
    /// assert!(hodlr.max_rank() < 16);
    /// ```
    pub fn builder<'a>() -> HodlrBuilder<'a, T> {
        HodlrBuilder::default()
    }

    /// The underlying flattened HODLR matrix.
    pub fn matrix(&self) -> &HodlrMatrix<T> {
        &self.matrix
    }

    /// Consume the handle, returning the matrix (migration path to the
    /// low-level API).
    pub fn into_matrix(self) -> HodlrMatrix<T> {
        self.matrix
    }

    /// The configured backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The configured precision policy.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The declared symmetry structure.
    pub fn symmetry(&self) -> Symmetry {
        self.symmetry
    }

    /// The virtual batched device this handle owns (its counters meter all
    /// [`Backend::Batched`] work done through this handle).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Matrix size `N`.
    pub fn n(&self) -> usize {
        self.matrix.n()
    }

    /// Number of tree levels.
    pub fn levels(&self) -> usize {
        self.matrix.levels()
    }

    /// Maximum off-diagonal rank.
    pub fn max_rank(&self) -> usize {
        self.matrix.max_rank()
    }

    /// Storage in GiB.
    pub fn memory_gib(&self) -> f64 {
        self.matrix.memory_gib()
    }

    /// `y = A x` in `O(N log N)`.
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        self.run_in_pool(|| self.matrix.matvec(x))
    }

    /// `y = A x` into a caller-owned buffer (no per-call allocation).
    pub fn matvec_into(&self, x: &[T], y: &mut [T]) {
        self.run_in_pool(|| self.matrix.matvec_into(x, y))
    }

    /// `y = A^H x` in `O(N log N)`.
    pub fn matvec_adjoint(&self, x: &[T]) -> Vec<T> {
        self.run_in_pool(|| self.matrix.matvec_adjoint(x))
    }

    /// `y = A^H x` into a caller-owned buffer (no per-call allocation).
    pub fn matvec_adjoint_into(&self, x: &[T], y: &mut [T]) {
        self.run_in_pool(|| self.matrix.matvec_adjoint_into(x, y))
    }

    /// `Y = A X` for a block of vectors.
    pub fn matmat(&self, x: &DenseMatrix<T>) -> DenseMatrix<T> {
        self.run_in_pool(|| self.matrix.matmat(x))
    }

    /// Relative residual `||b - A x|| / ||b||` of a candidate solution.
    pub fn relative_residual(&self, x: &[T], b: &[T]) -> T::Real {
        self.run_in_pool(|| self.matrix.relative_residual(x, b))
    }

    /// Hager/Higham estimate of `‖A‖₁` (a handful of `O(N log N)`
    /// matvec/adjoint-matvec pairs) — the operator-norm side of the
    /// verification layer's scaled residual.
    pub fn norm1_est(&self) -> f64 {
        self.run_in_pool(|| self.matrix.norm1_est())
    }

    /// Verify a candidate solution `x` of `A x = b` against this operator
    /// using `solver` for the condition estimate: one matvec for the
    /// scaled residual `‖Ax−b‖₂ / (‖A‖₁ᵉˢᵗ‖x‖₂)`, then
    /// [`Solve::verify_solution`] for the verdict.  `norm1_est` is
    /// recomputed per call; callers in a solve loop should cache it (as
    /// `hodlr-serve`'s cache entries do) and use
    /// [`verify::scaled_residual`](crate::verify::scaled_residual)
    /// directly.
    pub fn verify_solve(
        &self,
        solver: &(impl Solve<T> + ?Sized),
        x: &[T],
        b: &[T],
        cfg: &crate::VerifyConfig,
    ) -> crate::SolveVerdict {
        self.run_in_pool(|| {
            let norm1 = self.matrix.norm1_est();
            let ax = self.matrix.matvec(x);
            let residual = crate::scaled_residual(&ax, x, b, norm1);
            solver.verify_solution(x, residual, norm1, cfg)
        })
    }

    pub(crate) fn refine_tol(&self) -> f64 {
        self.refine_tol
    }

    pub(crate) fn refine_max_iters(&self) -> usize {
        self.refine_max_iters
    }

    fn run_in_pool<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.pool {
            Some(pool) => pool.install(f),
            None => f(),
        }
    }
}

/// The façade is itself a [`LinearOperator`]: Krylov methods and the
/// spectral subsystem (`hodlr-spectral`) consume it directly, with every
/// apply routed through the handle's dedicated thread pool so the
/// workspace determinism contract holds at any thread count.
impl<T: Scalar> LinearOperator<T> for Hodlr<T> {
    fn dim(&self) -> usize {
        self.n()
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        self.matvec_into(x, y);
    }

    fn apply_to_block(&self, x: &DenseMatrix<T>) -> DenseMatrix<T> {
        self.matmat(x)
    }
}

impl<T: SolveScalar> Factorize<T> for Hodlr<T> {
    /// Factorize with the configured backend and precision policy.
    fn factorize(&self) -> Result<Factorization<'_, T>, HodlrError> {
        let symmetric = self.symmetry.is_symmetric();
        let inner: Box<dyn crate::Solve<T> + Send + Sync + '_> =
            match (self.precision, self.backend) {
                (Precision::Full, Backend::Serial) if symmetric => {
                    Box::new(self.run_in_pool(|| self.matrix.factorize_symmetric(self.symmetry))?)
                }
                (Precision::Full, Backend::Serial) => {
                    Box::new(self.run_in_pool(|| self.matrix.factorize_serial())?)
                }
                (Precision::Full, Backend::Batched) if symmetric => {
                    let mut solver =
                        GpuSymmetricSolver::new(&self.device, &self.matrix, self.symmetry)?;
                    self.run_in_pool(|| solver.factorize())?;
                    Box::new(solver)
                }
                (Precision::Full, Backend::Batched) => {
                    let mut solver = GpuSolver::new(&self.device, &self.matrix);
                    self.run_in_pool(|| solver.factorize())?;
                    Box::new(solver)
                }
                (Precision::MixedRefine, _) if symmetric => {
                    return Err(HodlrError::config(
                        "Precision::MixedRefine is not available for symmetric factorizations",
                    ));
                }
                (Precision::MixedRefine, _) => self.run_in_pool(|| T::mixed_factorization(self))?,
            };
        Ok(Factorization {
            inner,
            backend: self.backend,
            precision: self.precision,
            pool: self.pool.as_ref(),
        })
    }
}
