//! The [`Hodlr`] handle and its fluent [`HodlrBuilder`].
//!
//! ```
//! use hodlr::prelude::*;
//!
//! let a = DenseMatrix::from_col_major(4, 4, vec![
//!     5.0, 1.0, 0.5, 0.2,
//!     1.0, 5.0, 1.0, 0.5,
//!     0.5, 1.0, 5.0, 1.0,
//!     0.2, 0.5, 1.0, 5.0,
//! ]);
//! let hodlr = Hodlr::builder()
//!     .dense(&a)
//!     .leaf_size(2)
//!     .tolerance(1e-12)
//!     .backend(Backend::Serial)
//!     .build()
//!     .unwrap();
//! let x = hodlr.factorize().unwrap().solve(&[1.0, 2.0, 3.0, 4.0]).unwrap();
//! assert!(hodlr.relative_residual(&x, &[1.0, 2.0, 3.0, 4.0]) < 1e-10);
//! ```

use crate::compact::{CompactConfig, CompactOps};
use crate::scalar::SolveScalar;
use crate::solve::{Factorization, Factorize, Solve};
use hodlr_batch::Device;
use hodlr_compress::{CompressionConfig, CompressionMethod, DenseSource, MatrixEntrySource};
use hodlr_core::{
    build_from_source_symmetric_with, build_from_source_with, BuildOptions, GpuSolver,
    GpuSymmetricSolver, HodlrMatrix, Symmetry,
};
use hodlr_la::{norms, AllocMeter, DenseMatrix, HodlrError, RealScalar, Scalar};
use hodlr_solver::LinearOperator;
use hodlr_tree::ClusterTree;

/// Which factorization backend serves this matrix.
///
/// `Hash` is derived so the pair can participate in cache keys (e.g. the
/// `hodlr-serve` factorization cache keys on backend + precision).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The level-by-level serial factorization (Algorithms 1–2), the
    /// paper's single-core baseline.
    Serial,
    /// The batched factorization on the virtual batched-BLAS device
    /// (Algorithms 3–4), the paper's "GPU HODLR solver".
    Batched,
}

/// The arithmetic policy of the factorization.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Factorize and solve in the working precision.
    Full,
    /// Factorize in the companion lower precision (`f64 -> f32`,
    /// `Complex64 -> Complex32`; half the memory and flop width) and
    /// recover working-precision accuracy by iterative refinement — the
    /// paper's Table IV(b) regime.
    MixedRefine,
}

/// The storage precision of the compressed representation itself.
///
/// Orthogonal to [`Precision`], which governs the *factorization*:
/// `Precision::MixedRefine` demotes an already-built working-precision
/// matrix, while [`FactorPrecision::CompactLower`] never builds the
/// working-precision matrix in the first place — compression streams
/// straight into the lower precision, halving both the resident bytes and
/// the assembly peak.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FactorPrecision {
    /// Store the representation in the working precision (default).
    Working,
    /// Store in the companion lower precision (`f64 -> f32`,
    /// `Complex64 -> Complex32`): half the resident bytes.  Matvecs
    /// promote entries on the fly and accumulate in the working precision,
    /// and [`Factorize::factorize`] always wraps the lower-precision
    /// factorization in working-precision iterative refinement, recovering
    /// working accuracy on solves (the MixedRefine recovery argument
    /// applied to the storage itself).  Requires an `f64`/`Complex64`
    /// scalar and [`Symmetry::General`].
    CompactLower,
}

/// How the cluster tree over `0..n` is chosen.
#[derive(Clone, Debug)]
pub enum TreePolicy {
    /// Deepest tree whose leaves hold at least this many indices (the
    /// paper fixes 64 and lets `L = O(log N)` grow).
    LeafSize(usize),
    /// Exactly this many levels, splitting every range as evenly as
    /// possible.
    Levels(usize),
    /// An explicit tree (e.g. from
    /// [`partition_points`](hodlr_tree::partition_points), which reorders
    /// a point cloud by recursive bisection first).
    Explicit(ClusterTree),
}

enum BuilderInput<'a, T: Scalar> {
    Dense(&'a DenseMatrix<T>),
    Source(&'a dyn MatrixEntrySource<T>),
    Matrix(HodlrMatrix<T>),
}

/// Fluent configuration for [`Hodlr`]; see [`Hodlr::builder`].
pub struct HodlrBuilder<'a, T: Scalar> {
    input: Option<BuilderInput<'a, T>>,
    tree: TreePolicy,
    method: CompressionMethod,
    tol: f64,
    max_rank: Option<usize>,
    strict_rank: bool,
    backend: Backend,
    precision: Precision,
    factor_precision: FactorPrecision,
    memory_budget: Option<u64>,
    symmetry: Symmetry,
    threads: Option<usize>,
    refine_tol: f64,
    refine_max_iters: usize,
}

impl<T: Scalar> Default for HodlrBuilder<'_, T> {
    fn default() -> Self {
        HodlrBuilder {
            input: None,
            tree: TreePolicy::LeafSize(64),
            method: CompressionMethod::AcaRook,
            tol: 1e-8,
            max_rank: None,
            strict_rank: false,
            backend: Backend::Serial,
            precision: Precision::Full,
            factor_precision: FactorPrecision::Working,
            memory_budget: None,
            symmetry: Symmetry::General,
            threads: None,
            refine_tol: 1e-12,
            refine_max_iters: 50,
        }
    }
}

impl<'a, T: Scalar> HodlrBuilder<'a, T> {
    /// Compress this lazily evaluated entry source (kernel matrix,
    /// discretized integral operator, ...); the matrix is never formed
    /// densely.
    pub fn source(mut self, source: &'a (impl MatrixEntrySource<T> + 'a)) -> Self {
        self.input = Some(BuilderInput::Source(source));
        self
    }

    /// Compress this dense matrix (tests and problems small enough to
    /// materialise).
    pub fn dense(mut self, a: &'a DenseMatrix<T>) -> Self {
        self.input = Some(BuilderInput::Dense(a));
        self
    }

    /// Adopt an already built [`HodlrMatrix`] (migration path from the
    /// low-level API); the tree policy and compression settings are
    /// ignored.
    pub fn matrix(mut self, matrix: HodlrMatrix<T>) -> Self {
        self.input = Some(BuilderInput::Matrix(matrix));
        self
    }

    /// Tree policy: deepest tree with at least this leaf size (default 64,
    /// the paper's choice).
    pub fn leaf_size(mut self, leaf_size: usize) -> Self {
        self.tree = TreePolicy::LeafSize(leaf_size);
        self
    }

    /// Tree policy: exactly this many levels.
    pub fn levels(mut self, levels: usize) -> Self {
        self.tree = TreePolicy::Levels(levels);
        self
    }

    /// Tree policy: an explicit cluster tree.
    pub fn tree(mut self, tree: ClusterTree) -> Self {
        self.tree = TreePolicy::Explicit(tree);
        self
    }

    /// Compression algorithm (default rook-pivoted ACA, the scheme of the
    /// paper's kernel benchmarks).
    pub fn method(mut self, method: CompressionMethod) -> Self {
        self.method = method;
        self
    }

    /// Relative compression tolerance (default `1e-8`).
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Hard cap on the off-diagonal rank.
    pub fn max_rank(mut self, max_rank: usize) -> Self {
        self.max_rank = Some(max_rank);
        self
    }

    /// Make the rank cap strict: hitting it before the tolerance is
    /// certified fails the build with
    /// [`HodlrError::CompressionRankOverflow`].
    pub fn strict_rank(mut self) -> Self {
        self.strict_rank = true;
        self
    }

    /// Factorization backend (default [`Backend::Serial`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Precision policy (default [`Precision::Full`]).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Storage precision of the representation (default
    /// [`FactorPrecision::Working`]).
    ///
    /// [`FactorPrecision::CompactLower`] compresses straight into the
    /// companion lower precision — half the resident bytes, working
    /// accuracy recovered on solves by iterative refinement.  The
    /// compression tolerance is clamped to a few lower-precision ulps
    /// (asking `f32` storage for `1e-10` blocks would only blow the ranks
    /// chasing noise; refinement recovers the accuracy instead).
    pub fn factor_precision(mut self, factor_precision: FactorPrecision) -> Self {
        self.factor_precision = factor_precision;
        self
    }

    /// Fail the build with a typed [`HodlrError::BudgetExceeded`] the
    /// moment the metered live bytes of the assembly (retained factors,
    /// flattened bases, leaf blocks, compression scratch) would cross
    /// `bytes`.
    ///
    /// The budget covers construction only — factorization and solves are
    /// governed by the representation this build produced.
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Declared symmetry structure (default [`Symmetry::General`]).
    ///
    /// [`Symmetry::PositiveDefinite`] and [`Symmetry::Hermitian`] switch
    /// both construction and factorization to the symmetric fast path: the
    /// two off-diagonal blocks of every sibling pair share one low-rank
    /// factor (one compression instead of two, half the basis storage), and
    /// the factorization replaces every LU with a Cholesky-family
    /// factorization at half the flops.  Under
    /// [`Symmetry::PositiveDefinite`] a failed Cholesky pivot surfaces as
    /// the typed [`HodlrError::NotPositiveDefinite`]; under
    /// [`Symmetry::Hermitian`] it falls back to `LDL^*` and then
    /// Bunch-Kaufman instead.
    ///
    /// The caller asserts the input is Hermitian-valued: only its lower
    /// off-diagonal blocks are read, and the upper ones are taken to be
    /// their conjugate transposes.
    pub fn symmetry(mut self, symmetry: Symmetry) -> Self {
        self.symmetry = symmetry;
        self
    }

    /// Run construction, factorization and solves on a dedicated
    /// work-stealing pool with this many participants instead of the
    /// global pool (which honours `HODLR_NUM_THREADS`).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Target relative residual of [`Precision::MixedRefine`] refinement
    /// sweeps (default `1e-12`).
    pub fn refine_tolerance(mut self, tol: f64) -> Self {
        self.refine_tol = tol;
        self
    }

    /// Sweep cap of [`Precision::MixedRefine`] refinement (default 50).
    pub fn refine_max_iters(mut self, max_iters: usize) -> Self {
        self.refine_max_iters = max_iters;
        self
    }
}

impl<'a, T: SolveScalar> HodlrBuilder<'a, T> {
    /// Build the HODLR approximation.
    ///
    /// Construction streams level by level from the input — only the
    /// compression scratch and the retained factors are ever resident —
    /// and is metered throughout; the peak is available afterwards as
    /// [`Hodlr::build_peak_bytes`].
    ///
    /// # Errors
    /// [`HodlrError::InvalidConfig`] for a missing input, a zero-size
    /// problem, a non-positive tolerance, a zero leaf size or thread
    /// count, a level count deeper than the index set, or an unsupported
    /// combination ([`FactorPrecision::CompactLower`] with a symmetric
    /// structure, an adopted matrix, or a single-precision scalar);
    /// [`HodlrError::DimensionMismatch`] for a non-square input or a tree
    /// that does not match it; [`HodlrError::BudgetExceeded`] when a
    /// [`memory_budget`](HodlrBuilder::memory_budget) is crossed;
    /// compression errors (e.g. [`HodlrError::CompressionRankOverflow`]
    /// under a strict rank cap) propagate.
    pub fn build(self) -> Result<Hodlr<T>, HodlrError> {
        let input = self.input.ok_or_else(|| {
            HodlrError::config(
                "no input given: call .source(..), .dense(..) or .matrix(..) before .build()",
            )
        })?;
        let n = match &input {
            BuilderInput::Dense(a) => a.rows(),
            BuilderInput::Source(s) => s.nrows(),
            BuilderInput::Matrix(m) => m.n(),
        };
        if n == 0 {
            return Err(HodlrError::config(
                "cannot build a HODLR matrix over a zero-size tree",
            ));
        }

        if self.refine_tol <= 0.0 || !self.refine_tol.is_finite() {
            return Err(HodlrError::config(format!(
                "refinement tolerance must be positive and finite, got {:e}",
                self.refine_tol
            )));
        }
        if self.refine_max_iters == 0 {
            return Err(HodlrError::config(
                "refinement sweep cap must be at least 1",
            ));
        }
        if self.precision == Precision::MixedRefine && self.symmetry.is_symmetric() {
            return Err(HodlrError::config(
                "Precision::MixedRefine is not available for symmetric factorizations; \
                 use Precision::Full with Symmetry::PositiveDefinite / Symmetry::Hermitian",
            ));
        }
        let compact = self.factor_precision == FactorPrecision::CompactLower;
        if compact && self.symmetry.is_symmetric() {
            return Err(HodlrError::config(
                "FactorPrecision::CompactLower is not available for symmetric structures; \
                 the shared-basis Hermitian format already halves the basis storage",
            ));
        }

        let pool = match self.threads {
            None => None,
            Some(0) => {
                return Err(HodlrError::config("thread count must be at least 1"));
            }
            Some(t) => Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(t)
                    .build()
                    .map_err(|e| HodlrError::config(format!("cannot build thread pool: {e}")))?,
            ),
        };

        // Every build is metered: the peak is cheap to track and the scale
        // benchmarks report it as the measured assembly footprint.
        let meter = AllocMeter::new();
        let options = BuildOptions {
            meter: Some(&meter),
            budget_bytes: self.memory_budget,
        };

        let store = match input {
            BuilderInput::Matrix(m) => {
                if compact {
                    return Err(HodlrError::config(
                        ".matrix(..) adopts prebuilt working-precision storage; build from \
                         .source(..) or .dense(..) to use FactorPrecision::CompactLower",
                    ));
                }
                if let Some(budget) = self.memory_budget {
                    let resident = m.storage_bytes();
                    if resident > budget {
                        return Err(HodlrError::BudgetExceeded {
                            budget_bytes: budget,
                            needed_bytes: resident,
                            context: "adopted HodlrMatrix".to_string(),
                        });
                    }
                }
                Store::Full(m)
            }
            dense_or_source => {
                if let BuilderInput::Dense(a) = &dense_or_source {
                    HodlrError::check_dims(
                        "dense input (HODLR matrices are square)",
                        a.rows(),
                        a.cols(),
                    )?;
                }
                let tree = match &self.tree {
                    TreePolicy::LeafSize(0) => {
                        return Err(HodlrError::config("leaf size must be at least 1"));
                    }
                    TreePolicy::LeafSize(s) => ClusterTree::with_leaf_size(n, *s),
                    TreePolicy::Levels(l) => {
                        // The shift below is UB-guarded: l >= usize::BITS can
                        // never fit n >= 2^l indices either.
                        if *l >= usize::BITS as usize || n < (1usize << l) {
                            return Err(HodlrError::config(format!(
                                "cannot build {l} levels over {n} indices: a leaf would be empty"
                            )));
                        }
                        ClusterTree::uniform(n, *l)
                    }
                    TreePolicy::Explicit(t) => {
                        HodlrError::check_dims("explicit tree vs input", n, t.n())?;
                        t.clone()
                    }
                };
                let symmetric = self.symmetry.is_symmetric();
                if compact {
                    let config = CompactConfig {
                        tol: self.tol,
                        max_rank: self.max_rank,
                        strict_rank: self.strict_rank,
                        method: self.method,
                    };
                    let build = || match dense_or_source {
                        BuilderInput::Dense(a) => {
                            T::build_compact(&DenseSource::new(a), tree, &config, options)
                        }
                        BuilderInput::Source(s) => T::build_compact(s, tree, &config, options),
                        BuilderInput::Matrix(_) => unreachable!("handled above"),
                    };
                    Store::Compact(match &pool {
                        Some(pool) => pool.install(build)?,
                        None => build()?,
                    })
                } else {
                    let mut config = CompressionConfig::with_tol(T::Real::from_f64_real(self.tol))
                        .method(self.method);
                    if let Some(cap) = self.max_rank {
                        config = config.max_rank(cap);
                    }
                    if self.strict_rank {
                        config = config.strict_rank();
                    }
                    let build = || match dense_or_source {
                        BuilderInput::Dense(a) if symmetric => build_from_source_symmetric_with(
                            &DenseSource::new(a),
                            tree,
                            &config,
                            options,
                        ),
                        BuilderInput::Dense(a) => {
                            build_from_source_with(&DenseSource::new(a), tree, &config, options)
                        }
                        BuilderInput::Source(s) if symmetric => {
                            build_from_source_symmetric_with(s, tree, &config, options)
                        }
                        BuilderInput::Source(s) => {
                            build_from_source_with(s, tree, &config, options)
                        }
                        BuilderInput::Matrix(_) => unreachable!("handled above"),
                    };
                    Store::Full(match &pool {
                        Some(pool) => pool.install(build)?,
                        None => build()?,
                    })
                }
            }
        };

        Ok(Hodlr {
            store,
            backend: self.backend,
            precision: self.precision,
            symmetry: self.symmetry,
            device: Device::new(),
            pool,
            refine_tol: self.refine_tol,
            refine_max_iters: self.refine_max_iters,
            build_peak_bytes: meter.peak_bytes(),
        })
    }
}

/// The representation behind a [`Hodlr`] handle: either the
/// working-precision flattened matrix, or a compact lower-precision store
/// applied through on-the-fly promotion.
enum Store<T: Scalar> {
    Full(HodlrMatrix<T>),
    Compact(Box<dyn CompactOps<T>>),
}

/// A HODLR approximation plus its backend configuration: the one front
/// door of the workspace.
///
/// Built with [`Hodlr::builder`]; factorized through the
/// [`Factorize`] trait; solved through the [`Solve`] trait.
/// The handle owns the virtual batched device, so
/// [`Backend::Batched`] factorizations and their launch/flop counters live
/// entirely behind it.
pub struct Hodlr<T: Scalar> {
    store: Store<T>,
    backend: Backend,
    precision: Precision,
    symmetry: Symmetry,
    device: Device,
    pool: Option<rayon::ThreadPool>,
    refine_tol: f64,
    refine_max_iters: usize,
    build_peak_bytes: u64,
}

impl<T: Scalar> Hodlr<T> {
    /// Start configuring a HODLR approximation.
    ///
    /// ```
    /// use hodlr::prelude::*;
    ///
    /// let source = ClosureSource::new(64, 64, |i, j| {
    ///     1.0 / (1.0 + (i as f64 - j as f64).abs()) + if i == j { 3.0 } else { 0.0 }
    /// });
    /// let hodlr = Hodlr::builder()
    ///     .source(&source)
    ///     .leaf_size(16)
    ///     .tolerance(1e-10)
    ///     .method(CompressionMethod::AcaRook)
    ///     .backend(Backend::Batched)
    ///     .precision(Precision::Full)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(hodlr.n(), 64);
    /// assert!(hodlr.max_rank() < 16);
    /// ```
    pub fn builder<'a>() -> HodlrBuilder<'a, T> {
        HodlrBuilder::default()
    }

    /// The underlying flattened HODLR matrix, when this handle stores one
    /// in the working precision; `None` for
    /// [`FactorPrecision::CompactLower`] handles, whose storage lives in
    /// the companion lower precision.
    pub fn matrix(&self) -> Option<&HodlrMatrix<T>> {
        match &self.store {
            Store::Full(m) => Some(m),
            Store::Compact(_) => None,
        }
    }

    /// Consume the handle, returning the working-precision matrix
    /// (migration path to the low-level API); `None` for compact handles.
    pub fn into_matrix(self) -> Option<HodlrMatrix<T>> {
        match self.store {
            Store::Full(m) => Some(m),
            Store::Compact(_) => None,
        }
    }

    /// `true` when the representation is stored in the companion lower
    /// precision ([`FactorPrecision::CompactLower`]).
    pub fn is_compact(&self) -> bool {
        matches!(self.store, Store::Compact(_))
    }

    /// Resident bytes of the stored representation (bases + leaf blocks,
    /// in whichever precision they live in).
    pub fn storage_bytes(&self) -> u64 {
        match &self.store {
            Store::Full(m) => m.storage_bytes(),
            Store::Compact(c) => c.storage_bytes(),
        }
    }

    /// Measured peak live bytes of the assembly (factors, flattened bases,
    /// leaf blocks and compression scratch), from the meter every build
    /// runs under.  Zero for handles that adopted a prebuilt matrix.
    pub fn build_peak_bytes(&self) -> u64 {
        self.build_peak_bytes
    }

    /// The configured backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The configured precision policy.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The declared symmetry structure.
    pub fn symmetry(&self) -> Symmetry {
        self.symmetry
    }

    /// The virtual batched device this handle owns (its counters meter all
    /// [`Backend::Batched`] work done through this handle).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Matrix size `N`.
    pub fn n(&self) -> usize {
        match &self.store {
            Store::Full(m) => m.n(),
            Store::Compact(c) => c.n(),
        }
    }

    /// Number of tree levels.
    pub fn levels(&self) -> usize {
        match &self.store {
            Store::Full(m) => m.levels(),
            Store::Compact(c) => c.levels(),
        }
    }

    /// Maximum off-diagonal rank.
    pub fn max_rank(&self) -> usize {
        match &self.store {
            Store::Full(m) => m.max_rank(),
            Store::Compact(c) => c.max_rank(),
        }
    }

    /// Storage in GiB.
    pub fn memory_gib(&self) -> f64 {
        self.storage_bytes() as f64 / (1u64 << 30) as f64
    }

    /// `y = A x` in `O(N log N)`.
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::zero(); self.n()];
        self.matvec_into(x, &mut y);
        y
    }

    /// `y = A x` into a caller-owned buffer (no per-call allocation).
    pub fn matvec_into(&self, x: &[T], y: &mut [T]) {
        self.run_in_pool(|| match &self.store {
            Store::Full(m) => m.matvec_into(x, y),
            Store::Compact(c) => c.matvec_into(x, y),
        })
    }

    /// `y = A^H x` in `O(N log N)`.
    pub fn matvec_adjoint(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::zero(); self.n()];
        self.matvec_adjoint_into(x, &mut y);
        y
    }

    /// `y = A^H x` into a caller-owned buffer (no per-call allocation).
    pub fn matvec_adjoint_into(&self, x: &[T], y: &mut [T]) {
        self.run_in_pool(|| match &self.store {
            Store::Full(m) => m.matvec_adjoint_into(x, y),
            Store::Compact(c) => c.matvec_adjoint_into(x, y),
        })
    }

    /// `Y = A X` for a block of vectors.
    pub fn matmat(&self, x: &DenseMatrix<T>) -> DenseMatrix<T> {
        self.run_in_pool(|| match &self.store {
            Store::Full(m) => m.matmat(x),
            Store::Compact(c) => {
                assert_eq!(x.rows(), c.n(), "matmat: block has the wrong row count");
                let mut y = DenseMatrix::zeros(c.n(), x.cols());
                for j in 0..x.cols() {
                    c.matvec_into(x.col(j), y.col_mut(j));
                }
                y
            }
        })
    }

    /// Relative residual `||b - A x|| / ||b||` of a candidate solution.
    pub fn relative_residual(&self, x: &[T], b: &[T]) -> T::Real {
        self.run_in_pool(|| match &self.store {
            Store::Full(m) => m.relative_residual(x, b),
            Store::Compact(c) => {
                let mut ax = vec![T::zero(); c.n()];
                c.matvec_into(x, &mut ax);
                let mut diff = T::Real::zero();
                let mut bnorm = T::Real::zero();
                for i in 0..b.len() {
                    diff += (b[i] - ax[i]).abs_sqr();
                    bnorm += b[i].abs_sqr();
                }
                norms::relative_residual(diff.sqrt_real(), bnorm.sqrt_real())
            }
        })
    }

    /// Hager/Higham estimate of `‖A‖₁` (a handful of `O(N log N)`
    /// matvec/adjoint-matvec pairs) — the operator-norm side of the
    /// verification layer's scaled residual.
    pub fn norm1_est(&self) -> f64 {
        self.run_in_pool(|| match &self.store {
            Store::Full(m) => m.norm1_est(),
            Store::Compact(c) => c.norm1_est(),
        })
    }

    /// Verify a candidate solution `x` of `A x = b` against this operator
    /// using `solver` for the condition estimate: one matvec for the
    /// scaled residual `‖Ax−b‖₂ / (‖A‖₁ᵉˢᵗ‖x‖₂)`, then
    /// [`Solve::verify_solution`] for the verdict.  `norm1_est` is
    /// recomputed per call; callers in a solve loop should cache it (as
    /// `hodlr-serve`'s cache entries do) and use
    /// [`verify::scaled_residual`](crate::verify::scaled_residual)
    /// directly.
    pub fn verify_solve(
        &self,
        solver: &(impl Solve<T> + ?Sized),
        x: &[T],
        b: &[T],
        cfg: &crate::VerifyConfig,
    ) -> crate::SolveVerdict {
        self.run_in_pool(|| {
            let norm1 = match &self.store {
                Store::Full(m) => m.norm1_est(),
                Store::Compact(c) => c.norm1_est(),
            };
            let mut ax = vec![T::zero(); self.n()];
            match &self.store {
                Store::Full(m) => m.matvec_into(x, &mut ax),
                Store::Compact(c) => c.matvec_into(x, &mut ax),
            }
            let residual = crate::scaled_residual(&ax, x, b, norm1);
            solver.verify_solution(x, residual, norm1, cfg)
        })
    }

    pub(crate) fn refine_tol(&self) -> f64 {
        self.refine_tol
    }

    pub(crate) fn refine_max_iters(&self) -> usize {
        self.refine_max_iters
    }

    fn run_in_pool<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.pool {
            Some(pool) => pool.install(f),
            None => f(),
        }
    }
}

/// The façade is itself a [`LinearOperator`]: Krylov methods and the
/// spectral subsystem (`hodlr-spectral`) consume it directly, with every
/// apply routed through the handle's dedicated thread pool so the
/// workspace determinism contract holds at any thread count.
impl<T: Scalar> LinearOperator<T> for Hodlr<T> {
    fn dim(&self) -> usize {
        self.n()
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        self.matvec_into(x, y);
    }

    fn apply_to_block(&self, x: &DenseMatrix<T>) -> DenseMatrix<T> {
        self.matmat(x)
    }
}

impl<T: SolveScalar> Factorize<T> for Hodlr<T> {
    /// Factorize with the configured backend and precision policy.  A
    /// compact store always factorizes its lower-precision representation
    /// and refines against the promoted operator, whatever the
    /// [`Precision`] setting.
    fn factorize(&self) -> Result<Factorization<'_, T>, HodlrError> {
        let symmetric = self.symmetry.is_symmetric();
        let inner: Box<dyn crate::Solve<T> + Send + Sync + '_> = match &self.store {
            Store::Compact(c) => self.run_in_pool(|| {
                c.factorize(
                    &self.device,
                    self.backend,
                    self.refine_tol,
                    self.refine_max_iters,
                )
            })?,
            Store::Full(matrix) => match (self.precision, self.backend) {
                (Precision::Full, Backend::Serial) if symmetric => {
                    Box::new(self.run_in_pool(|| matrix.factorize_symmetric(self.symmetry))?)
                }
                (Precision::Full, Backend::Serial) => {
                    Box::new(self.run_in_pool(|| matrix.factorize_serial())?)
                }
                (Precision::Full, Backend::Batched) if symmetric => {
                    let mut solver = GpuSymmetricSolver::new(&self.device, matrix, self.symmetry)?;
                    self.run_in_pool(|| solver.factorize())?;
                    Box::new(solver)
                }
                (Precision::Full, Backend::Batched) => {
                    let mut solver = GpuSolver::new(&self.device, matrix);
                    self.run_in_pool(|| solver.factorize())?;
                    Box::new(solver)
                }
                (Precision::MixedRefine, _) if symmetric => {
                    return Err(HodlrError::config(
                        "Precision::MixedRefine is not available for symmetric factorizations",
                    ));
                }
                (Precision::MixedRefine, _) => self.run_in_pool(|| T::mixed_factorization(self))?,
            },
        };
        Ok(Factorization {
            inner,
            backend: self.backend,
            precision: self.precision,
            pool: self.pool.as_ref(),
        })
    }
}
