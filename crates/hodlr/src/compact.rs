//! Compact lower-precision storage behind the façade
//! ([`FactorPrecision::CompactLower`](crate::FactorPrecision)).
//!
//! The HODLR representation is *built and stored* in the companion lower
//! precision (`f64 -> f32`, `Complex64 -> Complex32`) — half the resident
//! bytes, and the compression itself runs at the lower precision's cost —
//! while every apply *accumulates in the working precision*.  Promoting the
//! stored entries on the fly makes the handle a working-precision operator
//! whose entries merely happen to be rounded to the lower precision, so the
//! existing iterative-refinement machinery recovers working-precision solve
//! accuracy exactly as the paper's mixed-precision regime does: the
//! lower-precision factorization is the preconditioner, and the promoted
//! operator supplies the residuals.
//!
//! Everything here is an implementation detail of [`Hodlr`](crate::Hodlr);
//! the only public surface is the builder's `factor_precision` knob.

use crate::build::Backend;
use crate::scalar::RefinedSolver;
use crate::solve::Solve;
use hodlr_batch::Device;
use hodlr_compress::{CompressionConfig, CompressionMethod, MatrixEntrySource};
use hodlr_core::{build_from_source_with, BuildOptions, DemotedSource, GpuSolver, HodlrMatrix};
use hodlr_la::{HodlrError, RealScalar, Scalar};
use hodlr_solver::{DemoteScalar, LinearOperator};
use hodlr_tree::{ClusterTree, NodeId};

/// The compression knobs of a compact build, in precision-free form (the
/// tolerance is re-anchored in the lower precision's real type).
pub struct CompactConfig {
    pub tol: f64,
    pub max_rank: Option<usize>,
    pub strict_rank: bool,
    pub method: CompressionMethod,
}

/// Object-safe view of a compact store, so [`Hodlr`](crate::Hodlr) can hold
/// one without being generic over the lower precision.
pub trait CompactOps<T: Scalar>: Send + Sync {
    fn n(&self) -> usize;
    fn levels(&self) -> usize;
    fn max_rank(&self) -> usize;
    /// Resident bytes of the lower-precision representation.
    fn storage_bytes(&self) -> u64;
    /// `y = A x` with working-precision accumulation.
    fn matvec_into(&self, x: &[T], y: &mut [T]);
    /// `y = A^H x` with working-precision accumulation.
    fn matvec_adjoint_into(&self, x: &[T], y: &mut [T]);
    /// Hager/Higham `‖A‖₁` estimate through the promoted operator.
    fn norm1_est(&self) -> f64;
    /// Factorize the stored lower-precision representation and wrap it in
    /// working-precision iterative refinement against the promoted
    /// operator.
    fn factorize<'s>(
        &'s self,
        device: &'s Device,
        backend: Backend,
        refine_tol: f64,
        refine_max_iters: usize,
    ) -> Result<Box<dyn Solve<T> + Send + Sync + 's>, HodlrError>;
}

/// Build a compact store: compress `source` straight into the lower
/// precision (the working-precision matrix is never formed) under the
/// caller's meter and budget.
pub fn build_compact_store<T: DemoteScalar>(
    source: &(dyn MatrixEntrySource<T> + '_),
    tree: ClusterTree,
    config: &CompactConfig,
    options: BuildOptions<'_>,
) -> Result<Box<dyn CompactOps<T>>, HodlrError> {
    let view = DemotedSource::<T, _>::new(source);
    // A tolerance below the lower precision's resolution would make the
    // compressors chase noise and blow the ranks (the opposite of what
    // compact storage is for): clamp it to a few lower-precision ulps.
    // Refinement against the promoted operator recovers the rest.
    let floor = 8.0 * <<T::Lower as Scalar>::Real as RealScalar>::EPSILON.to_f64();
    let mut cc = CompressionConfig::with_tol(
        <<T::Lower as Scalar>::Real as RealScalar>::from_f64_real(config.tol.max(floor)),
    )
    .method(config.method);
    if let Some(cap) = config.max_rank {
        cc = cc.max_rank(cap);
    }
    if config.strict_rank {
        cc = cc.strict_rank();
    }
    let low = build_from_source_with(&view, tree, &cc, options)?;
    Ok(Box::new(CompactStore { low }))
}

/// A HODLR matrix resident in the lower precision, applied in the working
/// precision.
struct CompactStore<T: DemoteScalar> {
    low: HodlrMatrix<T::Lower>,
}

impl<T: DemoteScalar> CompactStore<T> {
    /// `y[I_row] += U_row (V_col^* x[I_col])`, promoting every stored
    /// entry and accumulating in the working precision.
    fn apply_off_diag(&self, row_node: NodeId, col_node: NodeId, x: &[T], y: &mut [T]) {
        let tree = self.low.tree();
        let row_range = tree.range(row_node);
        let col_range = tree.range(col_node);
        let u = self.low.u_block(row_node);
        let v = self.low.v_block(col_node);
        let width = u.cols();
        let mut tmp = vec![T::zero(); width];
        for (k, t) in tmp.iter_mut().enumerate() {
            let mut acc = T::zero();
            for (local, i) in col_range.clone().enumerate() {
                acc += T::promote(v.get(local, k)).conj() * x[i];
            }
            *t = acc;
        }
        for (local, i) in row_range.enumerate() {
            let mut acc = T::zero();
            for (k, t) in tmp.iter().enumerate() {
                acc += T::promote(u.get(local, k)) * *t;
            }
            y[i] += acc;
        }
    }

    /// Adjoint of the `(row_node, col_node)` block:
    /// `y[I_col] += V_col (U_row^H x[I_row])`.
    fn apply_off_diag_adjoint(&self, row_node: NodeId, col_node: NodeId, x: &[T], y: &mut [T]) {
        let tree = self.low.tree();
        let row_range = tree.range(row_node);
        let col_range = tree.range(col_node);
        let u = self.low.u_block(row_node);
        let v = self.low.v_block(col_node);
        let width = u.cols();
        let mut tmp = vec![T::zero(); width];
        for (k, t) in tmp.iter_mut().enumerate() {
            let mut acc = T::zero();
            for (local, i) in row_range.clone().enumerate() {
                acc += T::promote(u.get(local, k)).conj() * x[i];
            }
            *t = acc;
        }
        for (local, i) in col_range.enumerate() {
            let mut acc = T::zero();
            for (k, t) in tmp.iter().enumerate() {
                acc += T::promote(v.get(local, k)) * *t;
            }
            y[i] += acc;
        }
    }

    fn matvec(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::zero(); self.low.n()];
        CompactOps::matvec_into(self, x, &mut y);
        y
    }

    fn matvec_adjoint(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::zero(); self.low.n()];
        CompactOps::matvec_adjoint_into(self, x, &mut y);
        y
    }
}

impl<T: DemoteScalar> CompactOps<T> for CompactStore<T> {
    fn n(&self) -> usize {
        self.low.n()
    }

    fn levels(&self) -> usize {
        self.low.levels()
    }

    fn max_rank(&self) -> usize {
        self.low.max_rank()
    }

    fn storage_bytes(&self) -> u64 {
        self.low.storage_bytes()
    }

    fn matvec_into(&self, x: &[T], y: &mut [T]) {
        let tree = self.low.tree();
        assert_eq!(x.len(), tree.n(), "matvec: x has the wrong length");
        assert_eq!(y.len(), tree.n(), "matvec: y has the wrong length");
        y.fill(T::zero());
        for (leaf_idx, leaf) in tree.leaves().enumerate() {
            let range = tree.range(leaf);
            let d = self.low.diag_block(leaf_idx);
            for j in 0..d.cols() {
                let xj = x[range.start + j];
                for i in 0..d.rows() {
                    y[range.start + i] += T::promote(d[(i, j)]) * xj;
                }
            }
        }
        for gamma in tree.internal_nodes() {
            let (alpha, beta) = tree.children(gamma).expect("internal node");
            self.apply_off_diag(alpha, beta, x, y);
            self.apply_off_diag(beta, alpha, x, y);
        }
    }

    fn matvec_adjoint_into(&self, x: &[T], y: &mut [T]) {
        let tree = self.low.tree();
        assert_eq!(x.len(), tree.n(), "matvec_adjoint: x has the wrong length");
        assert_eq!(y.len(), tree.n(), "matvec_adjoint: y has the wrong length");
        y.fill(T::zero());
        for (leaf_idx, leaf) in tree.leaves().enumerate() {
            let range = tree.range(leaf);
            let d = self.low.diag_block(leaf_idx);
            for j in 0..d.cols() {
                let mut acc = T::zero();
                for i in 0..d.rows() {
                    acc += T::promote(d[(i, j)]).conj() * x[range.start + i];
                }
                y[range.start + j] += acc;
            }
        }
        for gamma in tree.internal_nodes() {
            let (alpha, beta) = tree.children(gamma).expect("internal node");
            self.apply_off_diag_adjoint(alpha, beta, x, y);
            self.apply_off_diag_adjoint(beta, alpha, x, y);
        }
    }

    fn norm1_est(&self) -> f64 {
        let mut apply = |x: &mut [T]| -> Result<(), std::convert::Infallible> {
            let y = self.matvec(x);
            x.copy_from_slice(&y);
            Ok(())
        };
        let mut apply_adjoint = |x: &mut [T]| -> Result<(), std::convert::Infallible> {
            let y = self.matvec_adjoint(x);
            x.copy_from_slice(&y);
            Ok(())
        };
        let Ok(est) = hodlr_la::one_norm_est(self.low.n(), &mut apply, &mut apply_adjoint);
        est
    }

    fn factorize<'s>(
        &'s self,
        device: &'s Device,
        backend: Backend,
        refine_tol: f64,
        refine_max_iters: usize,
    ) -> Result<Box<dyn Solve<T> + Send + Sync + 's>, HodlrError> {
        let inner: Box<dyn Solve<T::Lower> + Send + Sync + 's> = match backend {
            Backend::Serial => Box::new(self.low.factorize_serial()?),
            Backend::Batched => {
                let mut solver = GpuSolver::new(device, &self.low);
                solver.factorize()?;
                Box::new(solver)
            }
        };
        Ok(Box::new(RefinedSolver {
            op: PromotedOp(self),
            inner,
            tol: refine_tol,
            max_iters: refine_max_iters,
            context: "compact-storage iterative refinement",
        }))
    }
}

/// The compact store as a working-precision [`LinearOperator`]: the
/// residual side of the refinement loop.
struct PromotedOp<'a, T: DemoteScalar>(&'a CompactStore<T>);

impl<T: DemoteScalar> LinearOperator<T> for PromotedOp<'_, T> {
    fn dim(&self) -> usize {
        self.0.low.n()
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        CompactOps::matvec_into(self.0, x, y);
    }
}
