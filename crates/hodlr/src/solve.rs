//! The backend-agnostic [`Factorize`] / [`Solve`] traits and the
//! [`Factorization`] handle that erases the backend type.
//!
//! Every solver in the workspace speaks the same four-method [`Solve`]
//! vocabulary — single right-hand side, blocked multi-RHS, and in-place
//! variants of both — and every fallible path returns
//! [`HodlrError`] instead of panicking.  Callers pick a backend with
//! [`Backend`](crate::Backend) on the builder and never name a concrete
//! solver type again.

use crate::verify::{SolveVerdict, VerifyConfig};
use hodlr_core::{
    GpuSolver, GpuSymmetricSolver, SerialFactorization, SerialSymmetricFactorization,
};
use hodlr_la::{DenseMatrix, HodlrError, Scalar};
use hodlr_solver::LinearOperator;

/// Backend-agnostic solving against a completed factorization.
///
/// Implemented by [`SerialFactorization`] (Algorithms 1–2),
/// [`GpuSolver`] (Algorithms 3–4 on the virtual batched device), the
/// [`IterativeSolver`](crate::IterativeSolver) Krylov adapter, and the
/// type-erased [`Factorization`] handle.
///
/// The in-place variants are the primitive operations; the allocating
/// variants have default implementations on top of them.
pub trait Solve<T: Scalar> {
    /// The dimension `n` of the (square) factorized operator.
    fn dim(&self) -> usize;

    /// Solve `A x = b` in place: on entry `x` holds `b`, on exit the
    /// solution.
    ///
    /// # Errors
    /// [`HodlrError::DimensionMismatch`] when `x` has length `!= dim()`,
    /// [`HodlrError::NotFactorized`] when no factorization is available,
    /// and [`HodlrError::NonConvergence`] from iterative backends.
    fn solve_in_place(&self, x: &mut [T]) -> Result<(), HodlrError>;

    /// Blocked multi-RHS solve in place: every column of `x` is a
    /// right-hand side on entry and a solution on exit.  One sweep
    /// processes all columns (one gemm / one batched launch per tree node
    /// instead of one sweep per column).
    ///
    /// # Errors
    /// As [`Solve::solve_in_place`], judged against the row count of `x`.
    fn solve_block_in_place(&self, x: &mut DenseMatrix<T>) -> Result<(), HodlrError>;

    /// Solve `A x = b` into a fresh vector.
    ///
    /// # Errors
    /// As [`Solve::solve_in_place`].
    fn solve(&self, b: &[T]) -> Result<Vec<T>, HodlrError> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// Blocked multi-RHS solve `A X = B` into a fresh matrix.
    ///
    /// # Errors
    /// As [`Solve::solve_block_in_place`].
    fn solve_block(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>, HodlrError> {
        let mut x = b.clone();
        self.solve_block_in_place(&mut x)?;
        Ok(x)
    }

    /// Convenience multi-RHS entry point over a slice of right-hand-side
    /// vectors; packs them into one block, runs a single blocked sweep,
    /// and unpacks.
    ///
    /// # Errors
    /// As [`Solve::solve_block_in_place`]; additionally names the first
    /// right-hand side whose length is wrong.
    fn solve_many(&self, rhs: &[Vec<T>]) -> Result<Vec<Vec<T>>, HodlrError> {
        let n = self.dim();
        let k = rhs.len();
        let mut b = DenseMatrix::<T>::zeros(n, k);
        for (j, col) in rhs.iter().enumerate() {
            HodlrError::check_dims(format!("right-hand side {j}"), n, col.len())?;
            b.col_mut(j).copy_from_slice(col);
        }
        let x = self.solve_block(&b)?;
        Ok((0..k).map(|j| x.col(j).to_vec()).collect())
    }

    /// Log-determinant capability: `(log|det(A)|, sign)` with
    /// `det(A) = sign * exp(log|det(A)|)` and `|sign| = 1`, evaluated from
    /// the stored factors via the product form of the paper's Section
    /// III-E (a).
    ///
    /// Supported by the direct backends ([`SerialFactorization`],
    /// [`GpuSolver`], and the type-erased [`Factorization`] over either),
    /// where serial and batched results agree **bitwise**.  The
    /// mixed-precision backend reports the log-determinant of its
    /// *lower-precision* factors (~`1e-7` relative accuracy for `f64`
    /// scalars); iterative solvers have no determinant and keep this
    /// default.
    ///
    /// # Errors
    /// [`HodlrError::NotFactorized`] when the backend has no completed
    /// factorization, and [`HodlrError::InvalidConfig`] for backends with
    /// no determinant (the default implementation).
    fn log_det(&self) -> Result<(T::Real, T), HodlrError> {
        Err(HodlrError::config(
            "this solver does not expose a log-determinant (only factorization \
             backends do)",
        ))
    }

    /// Approximate resident size of the stored factors in bytes — cache-key
    /// material for admission and eviction decisions in a factorization
    /// cache (e.g. `hodlr-serve`'s memory budget).
    ///
    /// Counts factor payload (`O(N log N)` scalar entries), not control
    /// metadata; backends without stored factors (iterative adapters) keep
    /// the default of 0.
    fn factor_bytes(&self) -> u64 {
        0
    }

    /// Hager/Higham estimate of `‖A⁻¹‖₁` driven by this solver's own
    /// solves — a handful of `O(N log N)` applications instead of an
    /// inverse.  Combined with the operator's `‖A‖₁` estimate this gives
    /// the condition estimate attached to [`SolveVerdict::Suspect`].
    ///
    /// The estimator needs `A⁻ᴴ` applications too; this default reuses the
    /// forward solve for them, which is **exact for Hermitian operators**
    /// (`A⁻ᴴ = A⁻¹`) — the GP-covariance and symmetrized-BIE workloads
    /// this system serves — and a documented heuristic otherwise (the
    /// estimate stays a valid order-of-magnitude indicator because
    /// `‖A⁻ᵀ‖₁ = ‖A⁻¹‖_∞` is within a factor `n` of `‖A⁻¹‖₁`).
    ///
    /// # Errors
    /// Propagates the first solve failure ([`HodlrError::NotFactorized`],
    /// [`HodlrError::NonConvergence`], ...).
    fn inv_norm1_est(&self) -> Result<f64, HodlrError> {
        let mut apply = |x: &mut [T]| self.solve_in_place(x);
        let mut apply_adjoint = |x: &mut [T]| self.solve_in_place(x);
        hodlr_la::one_norm_est(self.dim(), &mut apply, &mut apply_adjoint)
    }

    /// Judge a candidate solution `x` from its precomputed scaled residual
    /// `‖Ax−b‖₂ / (‖A‖₁ᵉˢᵗ‖x‖₂)` (see
    /// [`scaled_residual`](crate::verify::scaled_residual); the caller
    /// supplies it because only the caller holds the operator for the
    /// matvec).  `norm1_est` is the same `‖A‖₁` estimate used to scale the
    /// residual, reused for the condition estimate.
    ///
    /// Verdict semantics:
    /// * non-finite entries in `x` or a non-finite residual →
    ///   [`SolveVerdict::NonFinite`];
    /// * residual within the threshold → [`SolveVerdict::Verified`]
    ///   (no extra work);
    /// * otherwise → [`SolveVerdict::Suspect`] carrying the residual and a
    ///   condition estimate computed via [`Solve::inv_norm1_est`]
    ///   (`f64::INFINITY` when that fails — an unestimatable operator is
    ///   maximally suspect).
    fn verify_solution(
        &self,
        x: &[T],
        residual: f64,
        norm1_est: f64,
        cfg: &VerifyConfig,
    ) -> SolveVerdict {
        if residual.is_nan() || x.iter().any(|v| !v.is_finite()) {
            return SolveVerdict::NonFinite;
        }
        if residual <= cfg.residual_threshold {
            return SolveVerdict::Verified { residual };
        }
        let cond_est = match self.inv_norm1_est() {
            Ok(inv) => norm1_est * inv,
            Err(_) => f64::INFINITY,
        };
        SolveVerdict::Suspect { residual, cond_est }
    }
}

impl<T: Scalar> Solve<T> for SerialFactorization<T> {
    fn dim(&self) -> usize {
        self.tree().n()
    }

    fn solve_in_place(&self, x: &mut [T]) -> Result<(), HodlrError> {
        HodlrError::check_dims("right-hand side", self.dim(), x.len())?;
        let out = SerialFactorization::solve(self, x);
        x.copy_from_slice(&out);
        Ok(())
    }

    fn solve_block_in_place(&self, x: &mut DenseMatrix<T>) -> Result<(), HodlrError> {
        HodlrError::check_dims("right-hand side block rows", self.dim(), x.rows())?;
        *x = self.solve_matrix(x);
        Ok(())
    }

    fn log_det(&self) -> Result<(T::Real, T), HodlrError> {
        Ok(SerialFactorization::log_det(self))
    }

    fn factor_bytes(&self) -> u64 {
        (self.storage_entries() * std::mem::size_of::<T>()) as u64
    }
}

impl<T: Scalar> Solve<T> for SerialSymmetricFactorization<T> {
    fn dim(&self) -> usize {
        self.tree().n()
    }

    fn solve_in_place(&self, x: &mut [T]) -> Result<(), HodlrError> {
        HodlrError::check_dims("right-hand side", self.dim(), x.len())?;
        let out = SerialSymmetricFactorization::solve(self, x);
        x.copy_from_slice(&out);
        Ok(())
    }

    fn solve_block_in_place(&self, x: &mut DenseMatrix<T>) -> Result<(), HodlrError> {
        HodlrError::check_dims("right-hand side block rows", self.dim(), x.rows())?;
        *x = self.solve_matrix(x);
        Ok(())
    }

    fn log_det(&self) -> Result<(T::Real, T), HodlrError> {
        Ok(SerialSymmetricFactorization::log_det(self))
    }

    fn factor_bytes(&self) -> u64 {
        (self.storage_entries() * std::mem::size_of::<T>()) as u64
    }
}

impl<T: Scalar> Solve<T> for GpuSolver<'_, T> {
    fn dim(&self) -> usize {
        self.n()
    }

    fn solve_in_place(&self, x: &mut [T]) -> Result<(), HodlrError> {
        let out = GpuSolver::solve(self, x)?;
        x.copy_from_slice(&out);
        Ok(())
    }

    fn solve_block_in_place(&self, x: &mut DenseMatrix<T>) -> Result<(), HodlrError> {
        *x = GpuSolver::solve_matrix(self, x)?;
        Ok(())
    }

    fn log_det(&self) -> Result<(T::Real, T), HodlrError> {
        GpuSolver::log_det(self)
    }

    fn factor_bytes(&self) -> u64 {
        (self.storage_entries() * std::mem::size_of::<T>()) as u64
    }
}

impl<T: Scalar> Solve<T> for GpuSymmetricSolver<'_, T> {
    fn dim(&self) -> usize {
        self.n()
    }

    fn solve_in_place(&self, x: &mut [T]) -> Result<(), HodlrError> {
        let out = GpuSymmetricSolver::solve(self, x)?;
        x.copy_from_slice(&out);
        Ok(())
    }

    fn solve_block_in_place(&self, x: &mut DenseMatrix<T>) -> Result<(), HodlrError> {
        *x = GpuSymmetricSolver::solve_matrix(self, x)?;
        Ok(())
    }

    fn log_det(&self) -> Result<(T::Real, T), HodlrError> {
        GpuSymmetricSolver::log_det(self)
    }

    fn factor_bytes(&self) -> u64 {
        (self.storage_entries() * std::mem::size_of::<T>()) as u64
    }
}

/// Anything that can be factorized into a backend-agnostic
/// [`Factorization`].
///
/// Implemented by [`Hodlr`](crate::Hodlr) (dispatching on the configured
/// [`Backend`](crate::Backend) and [`Precision`](crate::Precision)) and by
/// a bare [`HodlrMatrix`](hodlr_core::HodlrMatrix) (always the serial
/// full-precision backend).
pub trait Factorize<T: Scalar> {
    /// Factorize, producing a handle that solves through the [`Solve`]
    /// trait.
    ///
    /// # Errors
    /// [`HodlrError::SingularPivot`] when a diagonal or coupling block is
    /// singular, plus configuration errors from exotic backend /
    /// precision combinations.
    fn factorize(&self) -> Result<Factorization<'_, T>, HodlrError>;
}

impl<T: Scalar> Factorize<T> for hodlr_core::HodlrMatrix<T> {
    fn factorize(&self) -> Result<Factorization<'_, T>, HodlrError> {
        Ok(Factorization {
            inner: Box::new(self.factorize_serial()?),
            backend: crate::Backend::Serial,
            precision: crate::Precision::Full,
            pool: None,
        })
    }
}

/// A completed factorization with the backend erased: solve through the
/// [`Solve`] trait without knowing whether Algorithms 1–2, Algorithms 3–4,
/// or a mixed-precision refinement loop run underneath.
///
/// The erased solver is required to be `Send + Sync`, so a completed
/// `Factorization` is itself `Send + Sync`: one factorization can serve
/// solves from many threads concurrently (every [`Solve`] method takes
/// `&self`).  The `hodlr-serve` crate relies on this to share cached
/// factorizations across request handlers.
pub struct Factorization<'m, T: Scalar> {
    pub(crate) inner: Box<dyn Solve<T> + Send + Sync + 'm>,
    pub(crate) backend: crate::Backend,
    pub(crate) precision: crate::Precision,
    /// Dedicated worker pool of the owning [`Hodlr`](crate::Hodlr), when
    /// one was configured with `threads(..)`.
    pub(crate) pool: Option<&'m rayon::ThreadPool>,
}

impl<T: Scalar> Factorization<'_, T> {
    /// The backend that produced this factorization.
    pub fn backend(&self) -> crate::Backend {
        self.backend
    }

    /// The precision policy of this factorization.
    pub fn precision(&self) -> crate::Precision {
        self.precision
    }

    pub(crate) fn run<R>(&self, f: impl FnOnce() -> R) -> R {
        match self.pool {
            Some(pool) => pool.install(f),
            None => f(),
        }
    }
}

impl<T: Scalar> Solve<T> for Factorization<'_, T> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn solve_in_place(&self, x: &mut [T]) -> Result<(), HodlrError> {
        self.run(|| self.inner.solve_in_place(x))
    }

    fn solve_block_in_place(&self, x: &mut DenseMatrix<T>) -> Result<(), HodlrError> {
        self.run(|| self.inner.solve_block_in_place(x))
    }

    fn solve(&self, b: &[T]) -> Result<Vec<T>, HodlrError> {
        self.run(|| self.inner.solve(b))
    }

    fn solve_block(&self, b: &DenseMatrix<T>) -> Result<DenseMatrix<T>, HodlrError> {
        self.run(|| self.inner.solve_block(b))
    }

    fn solve_many(&self, rhs: &[Vec<T>]) -> Result<Vec<Vec<T>>, HodlrError> {
        self.run(|| self.inner.solve_many(rhs))
    }

    fn log_det(&self) -> Result<(T::Real, T), HodlrError> {
        self.run(|| self.inner.log_det())
    }

    fn factor_bytes(&self) -> u64 {
        self.inner.factor_bytes()
    }

    fn inv_norm1_est(&self) -> Result<f64, HodlrError> {
        self.run(|| self.inner.inv_norm1_est())
    }

    fn verify_solution(
        &self,
        x: &[T],
        residual: f64,
        norm1_est: f64,
        cfg: &VerifyConfig,
    ) -> SolveVerdict {
        self.run(|| self.inner.verify_solution(x, residual, norm1_est, cfg))
    }
}

/// A factorization applies `A^{-1}` as a [`LinearOperator`]: the Krylov
/// methods consume it directly as a right preconditioner, and the
/// spectral subsystem iterates on it for shift-invert interior
/// eigenvalues.
impl<T: Scalar> LinearOperator<T> for Factorization<'_, T> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        y.copy_from_slice(x);
        match self.solve_in_place(y) {
            Ok(()) => {}
            // A best-effort correction (mixed-precision refinement that hit
            // its sweep cap) is still a valid operator application; the
            // caller's residual check decides what it was worth.
            Err(HodlrError::NonConvergence { .. }) => {}
            Err(e) => panic!("factorization apply failed: {e}"),
        }
    }

    fn apply_to_block(&self, x: &DenseMatrix<T>) -> DenseMatrix<T> {
        let mut y = x.clone();
        match self.solve_block_in_place(&mut y) {
            Ok(()) | Err(HodlrError::NonConvergence { .. }) => y,
            Err(e) => panic!("factorization apply failed: {e}"),
        }
    }
}

// Compile-time proof of the concurrency contract: a shared-reference
// `Factorization` can cross threads, so N handlers may solve against one
// cached factorization at once.
const _: () = {
    const fn assert_send_sync<S: Send + Sync>() {}
    assert_send_sync::<Factorization<'static, f64>>();
    assert_send_sync::<Factorization<'static, hodlr_la::Complex64>>();
};
