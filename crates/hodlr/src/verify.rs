//! Numerical self-verification of solves: verdicts, thresholds, and the
//! scaled-residual computation.
//!
//! A fast direct solver can "succeed" and still return garbage — a
//! poisoned device buffer, an ill-conditioned factorization, a stale
//! cache entry.  The a-posteriori check here is cheap relative to the
//! solve it guards: one HODLR matvec (`O(N log N)`) for the scaled
//! residual
//!
//! ```text
//! r = ‖A x − b‖₂ / (‖A‖₁ᵉˢᵗ · ‖x‖₂)
//! ```
//!
//! plus, only when the residual is suspicious, a Hager/Higham estimate of
//! `‖A⁻¹‖₁` from a handful of extra solves, giving the condition estimate
//! `κ₁(A) ≈ ‖A‖₁ᵉˢᵗ · ‖A⁻¹‖₁ᵉˢᵗ` that distinguishes "the solver is
//! broken" from "the problem is hopeless".
//!
//! The verdict is surfaced as a [`Solve`](crate::Solve) trait capability
//! ([`Solve::verify_solution`](crate::Solve::verify_solution)) so every
//! backend — serial, batched, mixed-precision, type-erased — reports
//! through the same three-state [`SolveVerdict`], and `hodlr-serve`'s
//! degradation ladder keys its escalation decisions off it.

use hodlr_la::{RealScalar, Scalar};

/// The outcome of verifying a candidate solution `x` of `A x = b`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum SolveVerdict {
    /// The scaled residual is finite and within threshold.
    Verified {
        /// The scaled residual `‖Ax−b‖₂ / (‖A‖₁ᵉˢᵗ‖x‖₂)`.
        residual: f64,
    },
    /// The solution is finite but its residual exceeds the threshold.
    Suspect {
        /// The offending scaled residual.
        residual: f64,
        /// Condition estimate `κ₁(A) ≈ ‖A‖₁ᵉˢᵗ · ‖A⁻¹‖₁ᵉˢᵗ`
        /// (`f64::INFINITY` when the estimate itself failed).
        cond_est: f64,
    },
    /// The solution (or its residual) contains NaN or infinity.
    NonFinite,
}

impl SolveVerdict {
    /// Whether the solution passed verification.
    pub fn is_verified(&self) -> bool {
        matches!(self, SolveVerdict::Verified { .. })
    }

    /// Whether the solution contains non-finite entries.
    pub fn is_non_finite(&self) -> bool {
        matches!(self, SolveVerdict::NonFinite)
    }

    /// The scaled residual, when one was computable.
    pub fn residual(&self) -> Option<f64> {
        match self {
            SolveVerdict::Verified { residual } | SolveVerdict::Suspect { residual, .. } => {
                Some(*residual)
            }
            SolveVerdict::NonFinite => None,
        }
    }
}

/// Thresholds for [`Solve::verify_solution`](crate::Solve::verify_solution).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct VerifyConfig {
    /// Largest scaled residual accepted as `Verified`.  The default of
    /// `1e-6` sits comfortably above the `1e-8`-ish residuals an exact or
    /// tightly compressed HODLR factorization produces in `f64`, while
    /// catching mixed-precision drift and corrupted factors.
    pub residual_threshold: f64,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            residual_threshold: 1e-6,
        }
    }
}

impl VerifyConfig {
    /// A config accepting residuals up to `threshold`.
    pub fn with_threshold(threshold: f64) -> Self {
        VerifyConfig {
            residual_threshold: threshold,
        }
    }
}

/// The scaled residual `‖ax − b‖₂ / (‖A‖₁ᵉˢᵗ · ‖x‖₂)` from a precomputed
/// operator application `ax = A x`.
///
/// Degenerate denominators are resolved conservatively: a zero `x` (or a
/// zero/non-finite norm estimate) with a nonzero residual yields
/// `f64::INFINITY` (never `Verified`), while an exactly zero residual is
/// `0.0` regardless of scaling.  NaN anywhere propagates into a NaN
/// result, which [`Solve::verify_solution`](crate::Solve::verify_solution)
/// maps to [`SolveVerdict::NonFinite`].
pub fn scaled_residual<T: Scalar>(ax: &[T], x: &[T], b: &[T], norm1_est: f64) -> f64 {
    debug_assert_eq!(ax.len(), b.len());
    let mut rr = 0.0f64;
    for (&a, &bi) in ax.iter().zip(b.iter()) {
        rr += (a - bi).abs_sqr().to_f64();
    }
    let rnorm = rr.sqrt();
    if rnorm.is_nan() {
        return f64::NAN;
    }
    if rnorm == 0.0 {
        return 0.0;
    }
    let xnorm = hodlr_la::norms::norm2(x).to_f64();
    let denom = norm1_est * xnorm;
    if !denom.is_finite() || denom <= 0.0 {
        return f64::INFINITY;
    }
    rnorm / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_accessors() {
        let v = SolveVerdict::Verified { residual: 1e-12 };
        assert!(v.is_verified() && !v.is_non_finite());
        assert_eq!(v.residual(), Some(1e-12));
        let s = SolveVerdict::Suspect {
            residual: 0.5,
            cond_est: 1e9,
        };
        assert!(!s.is_verified());
        assert_eq!(s.residual(), Some(0.5));
        assert_eq!(SolveVerdict::NonFinite.residual(), None);
    }

    #[test]
    fn scaled_residual_basics() {
        // Exact solution: zero residual regardless of scaling.
        assert_eq!(
            scaled_residual(&[1.0, 2.0], &[1.0, 2.0], &[1.0, 2.0], 0.0),
            0.0
        );
        // ‖ax-b‖ = 1, ‖A‖ = 2, ‖x‖ = 5 → 0.1.
        let r = scaled_residual(&[4.0, 0.0], &[3.0, 4.0], &[3.0, 0.0], 2.0);
        assert!((r - 0.1).abs() < 1e-15, "{r}");
        // Zero x with nonzero residual can never verify.
        assert_eq!(
            scaled_residual(&[0.0, 0.0], &[0.0, 0.0], &[1.0, 0.0], 2.0),
            f64::INFINITY
        );
        // NaN propagates.
        assert!(scaled_residual(&[f64::NAN], &[1.0], &[1.0], 1.0).is_nan());
    }
}
