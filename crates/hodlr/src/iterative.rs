//! The [`IterativeSolver`] adapter: GMRES / BiCGStab with a HODLR
//! preconditioner, speaking the same [`Solve`] trait as the direct
//! backends.
//!
//! The paper's Table V(b) use case behind one type: factorize a *loose*
//! HODLR approximation (cheap — ranks shrink with the tolerance), hand it
//! to a Krylov method as a right preconditioner, and amortize it over
//! heavy solve traffic.  Non-convergence is a typed
//! [`HodlrError::NonConvergence`] carrying the iteration report, not a
//! silent flag.

use crate::build::Hodlr;
use crate::scalar::SolveScalar;
use crate::solve::{Factorization, Factorize, Solve};
use hodlr_la::{DenseMatrix, HodlrError, Scalar};
use hodlr_solver::{BiCgStab, Gmres, IterativeSolution, LinearOperator};

/// Which Krylov method drives the iteration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum KrylovMethod {
    /// Restarted GMRES(m) with the given restart length (the paper uses
    /// full-memory GMRES; 50 is a safe default).
    Gmres {
        /// Restart length `m`.
        restart: usize,
    },
    /// The short-recurrence alternative (two operator applications per
    /// iteration, constant memory).
    BiCgStab,
}

impl Default for KrylovMethod {
    fn default() -> Self {
        KrylovMethod::Gmres { restart: 50 }
    }
}

/// A Krylov method, an operator, and a HODLR preconditioner bundled behind
/// the [`Solve`] trait.
///
/// Built with [`Hodlr::iterative`]; by default the HODLR approximation
/// itself is the operator and its factorization (on the configured
/// backend) is the preconditioner.  [`IterativeSolver::with_operator`]
/// swaps in the *exact* operator — e.g. a matrix-free
/// [`SourceOperator`](hodlr_solver::SourceOperator) over the original
/// kernel — so the HODLR approximation only serves as `M^{-1}`.
pub struct IterativeSolver<'m, T: Scalar> {
    operator: &'m dyn LinearOperator<T>,
    precond: Factorization<'m, T>,
    method: KrylovMethod,
    tol: f64,
    max_iters: usize,
}

impl<'m, T: Scalar> IterativeSolver<'m, T> {
    /// Bundle an explicit operator and preconditioner factorization.
    ///
    /// # Errors
    /// [`HodlrError::DimensionMismatch`] when they disagree on dimension.
    pub fn new(
        operator: &'m dyn LinearOperator<T>,
        precond: Factorization<'m, T>,
        method: KrylovMethod,
    ) -> Result<Self, HodlrError> {
        HodlrError::check_dims(
            "iterative operator vs preconditioner",
            Solve::dim(&precond),
            operator.dim(),
        )?;
        Ok(IterativeSolver {
            operator,
            precond,
            method,
            tol: 1e-10,
            max_iters: 500,
        })
    }

    /// Solve against this operator instead of the HODLR approximation
    /// (typically the exact matrix-free source the approximation was
    /// compressed from).
    ///
    /// # Errors
    /// [`HodlrError::DimensionMismatch`] when the dimensions disagree.
    pub fn with_operator(
        mut self,
        operator: &'m dyn LinearOperator<T>,
    ) -> Result<Self, HodlrError> {
        HodlrError::check_dims(
            "iterative operator vs preconditioner",
            Solve::dim(&self.precond),
            operator.dim(),
        )?;
        self.operator = operator;
        Ok(self)
    }

    /// Relative-residual tolerance (default `1e-10`).
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Iteration cap (default 500).
    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// The preconditioner factorization.
    pub fn preconditioner(&self) -> &Factorization<'m, T> {
        &self.precond
    }

    /// Run the configured method, returning the full iteration report
    /// (residual history included) whether or not it converged.
    ///
    /// # Errors
    /// [`HodlrError::DimensionMismatch`] when `b` has the wrong length.
    pub fn run(&self, b: &[T]) -> Result<IterativeSolution<T>, HodlrError> {
        // The factorization IS the `M^{-1}` operator (see the
        // `LinearOperator` impl on `Factorization`); no adapter needed.
        // The whole Krylov loop runs on the factorization's dedicated pool
        // (when one was configured with `threads(..)`), so the operator
        // matvecs parallelize there too, not on the global pool.
        self.precond.run(|| match self.method {
            KrylovMethod::Gmres { restart } => Gmres::new()
                .restart(restart)
                .tol(self.tol)
                .max_iters(self.max_iters)
                .solve_preconditioned(&self.operator, &self.precond, b),
            KrylovMethod::BiCgStab => BiCgStab::new()
                .tol(self.tol)
                .max_iters(self.max_iters)
                .solve_preconditioned(&self.operator, &self.precond, b),
        })
    }
}

impl<T: Scalar> Solve<T> for IterativeSolver<'_, T> {
    fn dim(&self) -> usize {
        Solve::dim(&self.precond)
    }

    fn solve_in_place(&self, x: &mut [T]) -> Result<(), HodlrError> {
        HodlrError::check_dims("right-hand side", self.dim(), x.len())?;
        let out = self.run(x)?;
        // The best iterate is written back even on non-convergence, so the
        // typed error's "partial answer" is actually reachable.
        x.copy_from_slice(&out.x);
        if !out.converged {
            return Err(HodlrError::NonConvergence {
                iterations: out.iterations,
                relative_residual: out.relative_residual,
                context: match self.method {
                    KrylovMethod::Gmres { restart } => format!("gmres({restart})"),
                    KrylovMethod::BiCgStab => "bicgstab".to_string(),
                },
            });
        }
        Ok(())
    }

    fn solve_block_in_place(&self, x: &mut DenseMatrix<T>) -> Result<(), HodlrError> {
        HodlrError::check_dims("right-hand side block rows", self.dim(), x.rows())?;
        // Each right-hand side builds its own Krylov space; the
        // preconditioner applications still run blocked on the backend.
        // Every column is solved (best effort) before the first
        // non-convergence is reported.
        let mut first_err = None;
        for j in 0..x.cols() {
            if let Err(e) = self.solve_in_place(x.col_mut(j)) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl<T: SolveScalar> Hodlr<T> {
    /// An [`IterativeSolver`] over this matrix: the configured backend's
    /// factorization becomes the right preconditioner and the HODLR
    /// apply (`O(N log N)`) the operator.
    ///
    /// # Errors
    /// Factorization errors propagate (see [`Factorize::factorize`]).
    pub fn iterative(&self, method: KrylovMethod) -> Result<IterativeSolver<'_, T>, HodlrError> {
        IterativeSolver::new(self, self.factorize()?, method)
    }
}
