//! # hodlr — the unified façade of the hodlr-rs workspace
//!
//! The workspace implements Chen & Martinsson, *"Solving Linear Systems on
//! a GPU with Hierarchically Off-Diagonal Low-Rank Approximations"*
//! (SC 2022), as a stack of focused crates (`hodlr-la`, `hodlr-compress`,
//! `hodlr-core`, `hodlr-batch`, `hodlr-solver`, ...).  This crate is the one
//! front door: the paper's pitch is that *one* flattened HODLR
//! representation serves every downstream consumer — serial factorization,
//! batched "GPU" factorization, and Krylov preconditioning — so the public
//! API should let callers pick a backend by *value*, not by hunting down a
//! struct in the right crate.
//!
//! * [`Hodlr::builder`] — a fluent builder: entry source or dense input,
//!   tree policy, compression method/tolerance/rank cap, backend
//!   ([`Backend::Serial`] or [`Backend::Batched`]), precision policy
//!   ([`Precision::Full`] or [`Precision::MixedRefine`]), thread count.
//!   Returns `Result<Hodlr<T>, HodlrError>` — no panicking entry points.
//! * [`Factorize`] — anything that can produce a [`Factorization`].
//! * [`Solve`] — backend-agnostic solving: single right-hand side,
//!   blocked multi-RHS, and in-place variants, each returning
//!   `Result<_, HodlrError>`.  Implemented by
//!   [`SerialFactorization`](hodlr_core::SerialFactorization) (Algorithms
//!   1–2), [`GpuSolver`](hodlr_core::GpuSolver) (Algorithms 3–4 on the
//!   virtual batched device), and the [`IterativeSolver`] adapter wrapping
//!   GMRES / BiCGStab with a HODLR preconditioner.
//! * [`HodlrError`] — the workspace-wide typed error enum (dimension
//!   mismatch, singular pivot, compression rank overflow, non-convergence
//!   with an iteration report, invalid configuration).
//! * [`prelude`] — one import for applications.
//!
//! ```
//! use hodlr::prelude::*;
//!
//! // A smooth kernel matrix given by a closure — never formed densely.
//! let n = 256;
//! let source = ClosureSource::new(n, n, move |i, j| {
//!     let d = (i as f64 - j as f64).abs() / n as f64;
//!     1.0 / (1.0 + 8.0 * d) + if i == j { 4.0 } else { 0.0 }
//! });
//!
//! let hodlr = Hodlr::builder()
//!     .source(&source)
//!     .leaf_size(32)
//!     .tolerance(1e-10)
//!     .backend(Backend::Batched)
//!     .build()
//!     .unwrap();
//!
//! let factorization = hodlr.factorize().unwrap();
//! let b = vec![1.0; n];
//! let x = factorization.solve(&b).unwrap();
//! assert!(hodlr.relative_residual(&x, &b) < 1e-8);
//! ```

pub mod build;
mod compact;
pub mod iterative;
pub mod scalar;
pub mod solve;
pub mod verify;

pub use build::{Backend, FactorPrecision, Hodlr, HodlrBuilder, Precision, TreePolicy};
pub use iterative::{IterativeSolver, KrylovMethod};
pub use scalar::SolveScalar;
pub use solve::{Factorization, Factorize, Solve};
pub use verify::{scaled_residual, SolveVerdict, VerifyConfig};

pub use hodlr_core::Symmetry;
pub use hodlr_la::HodlrError;

/// Everything an application needs, in one import.
///
/// ```
/// use hodlr::prelude::*;
///
/// let a = DenseMatrix::from_col_major(2, 2, vec![4.0, 1.0, 1.0, 3.0]);
/// let hodlr = Hodlr::builder().dense(&a).build().unwrap();
/// let x = hodlr.factorize().unwrap().solve(&[1.0, 0.0]).unwrap();
/// assert!((a.matvec(&x)[0] - 1.0).abs() < 1e-12);
/// ```
pub mod prelude {
    pub use crate::build::{Backend, FactorPrecision, Hodlr, HodlrBuilder, Precision, TreePolicy};
    pub use crate::iterative::{IterativeSolver, KrylovMethod};
    pub use crate::scalar::SolveScalar;
    pub use crate::solve::{Factorization, Factorize, Solve};
    pub use crate::verify::{SolveVerdict, VerifyConfig};
    pub use hodlr_batch::Device;
    pub use hodlr_compress::{
        ClosureSource, CompressionConfig, CompressionMethod, DenseSource, MatrixEntrySource,
    };
    pub use hodlr_core::{
        GpuSolver, GpuSymmetricSolver, HodlrMatrix, SerialFactorization,
        SerialSymmetricFactorization, Symmetry,
    };
    pub use hodlr_kernels::{
        ExponentialKernel, GaussianKernel, MaternKernel, RpyKernel, RpyMatrixSource, ScalarKernel,
        ScalarKernelSource,
    };
    pub use hodlr_la::{Complex32, Complex64, DenseMatrix, HodlrError, RealScalar, Scalar};
    pub use hodlr_solver::{
        BiCgStab, Gmres, IterativeSolution, LinearOperator, RefinementOptions, SourceOperator,
    };
    pub use hodlr_tree::{
        partition_points, uniform_cube_points, ClusterTree, PointCloud, PointPartition,
    };
    pub use rand::rngs::StdRng;
    pub use rand::{Rng, SeedableRng};
}
