//! Regularized single-layer surfaces in 2-D and 3-D: the scale-out
//! geometry family.
//!
//! The contour problems of [`laplace`](crate::laplace) and
//! [`helmholtz`](crate::helmholtz) parameterize a 1-D curve, so their
//! nodes are already in spatial order and the natural index tree is the
//! right cluster tree.  To exercise the d-dimensional partitioner (and to
//! reach `n >= 10^5` without a global parameterization) this module
//! discretizes the *single-layer* operator over an unordered point cloud
//! sampled from a closed surface:
//!
//! `(A sigma)_i = 1/2 sigma_i + sum_j w S_delta(|x_i - x_j|) sigma_j`
//!
//! with the vertex-regularized single-layer kernel
//!
//! * 2-D: `S_delta(r) = -log sqrt(r^2 + delta^2) / (2 pi)`,
//! * 3-D: `S_delta(r) = 1 / (4 pi sqrt(r^2 + delta^2))`,
//!
//! equal quadrature weights `w = |Gamma| / n`, and the regularization
//! length `delta` tied to the mean node spacing.  Regularization stands in
//! for a product quadrature rule: it keeps the diagonal finite while
//! preserving the off-diagonal kernel (and hence the low-rank structure
//! HODLR compresses) wherever clusters are separated by more than a few
//! `delta`.  The `1/2 I` shift keeps the operator second-kind-like and
//! well away from singular, so direct factorization is meaningful at any
//! size.
//!
//! The Helmholtz variant multiplies the Laplace kernel by the oscillatory
//! factor `exp(i kappa r)`, giving complex entries and the rank growth
//! with `kappa` that Table V studies on the contour.
//!
//! Construction goes through [`partition_points`]: the sources own the
//! *tree-ordered* cloud and the matching [`ClusterTree`], so row `i` of
//! the matrix is node `i` of the reordered cloud and the HODLR builder can
//! consume the pair directly.

use hodlr_compress::MatrixEntrySource;
use hodlr_la::{Complex64, HodlrError};
use hodlr_tree::{partition_points, ClusterTree, PointCloud};

/// `n` equispaced points on the unit circle (a closed curve in 2-D),
/// deliberately *not* in angular order: indices are bit-reversal shuffled
/// so that the spatial partitioner, not the generator, has to recover
/// locality.
pub fn circle_cloud(n: usize) -> PointCloud {
    let mut coords = Vec::with_capacity(2 * n);
    for k in shuffled_indices(n) {
        let theta = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
        coords.push(theta.cos());
        coords.push(theta.sin());
    }
    PointCloud::new(2, coords)
}

/// `n` points on the unit sphere placed by the Fibonacci (golden-angle)
/// lattice — the standard quasi-uniform sphere sampling — with the same
/// index shuffle as [`circle_cloud`].
pub fn fibonacci_sphere_cloud(n: usize) -> PointCloud {
    let golden_angle = std::f64::consts::PI * (3.0 - 5.0f64.sqrt());
    let mut coords = Vec::with_capacity(3 * n);
    for k in shuffled_indices(n) {
        let z = 1.0 - 2.0 * (k as f64 + 0.5) / n as f64;
        let r = (1.0 - z * z).max(0.0).sqrt();
        let phi = golden_angle * k as f64;
        coords.push(r * phi.cos());
        coords.push(r * phi.sin());
        coords.push(z);
    }
    PointCloud::new(3, coords)
}

/// `0..n` with the bits of each index reversed (within the smallest
/// enclosing power of two), dropping values `>= n`: a deterministic
/// permutation that destroys the generator's spatial ordering.
fn shuffled_indices(n: usize) -> Vec<usize> {
    let bits = usize::BITS - n.next_power_of_two().leading_zeros() - 1;
    if bits == 0 {
        return (0..n).collect();
    }
    (0..n.next_power_of_two())
        .map(|i| i.reverse_bits() >> (usize::BITS - bits.max(1)))
        .filter(|&i| i < n)
        .take(n)
        .collect()
}

/// Shared geometry of the regularized surface discretizations: the
/// tree-ordered cloud, its cluster tree, the uniform quadrature weight and
/// the regularization length.
struct SurfaceGeometry {
    points: PointCloud,
    tree: ClusterTree,
    weight: f64,
    delta: f64,
}

impl SurfaceGeometry {
    fn new(cloud: &PointCloud, leaf_size: usize) -> Result<Self, HodlrError> {
        let dim = cloud.dim();
        if dim != 2 && dim != 3 {
            return Err(HodlrError::config(format!(
                "regularized surface sources support 2-D curves and 3-D \
                 surfaces, got a {dim}-dimensional cloud"
            )));
        }
        let part = partition_points(cloud, leaf_size)?;
        let n = part.points.len() as f64;
        // Total measure of the unit circle / unit sphere; equal weights.
        let (measure, spacing) = if dim == 2 {
            let m = 2.0 * std::f64::consts::PI;
            (m, m / n)
        } else {
            let m = 4.0 * std::f64::consts::PI;
            (m, (m / n).sqrt())
        };
        Ok(SurfaceGeometry {
            points: part.points,
            tree: part.tree,
            weight: measure / n,
            delta: spacing,
        })
    }

    /// The regularized Laplace single-layer kernel at distance `r`.
    fn laplace_kernel(&self, r: f64) -> f64 {
        let pi = std::f64::consts::PI;
        let reg = (r * r + self.delta * self.delta).sqrt();
        if self.points.dim() == 2 {
            -reg.ln() / (2.0 * pi)
        } else {
            1.0 / (4.0 * pi * reg)
        }
    }
}

/// The regularized Laplace single-layer operator `1/2 I + S_delta` over a
/// closed surface point cloud (unit circle in 2-D, unit sphere in 3-D, or
/// any cloud sampled from a closed surface).
///
/// Owns the tree-ordered cloud; feed [`Self::tree`] and the source itself
/// to the HODLR builder.
pub struct LaplaceSurfaceSource {
    geometry: SurfaceGeometry,
}

impl LaplaceSurfaceSource {
    /// Spatially reorder `cloud` (leaves of at least `leaf_size` points)
    /// and discretize the regularized single-layer operator over it.
    ///
    /// # Errors
    /// [`HodlrError::InvalidConfig`] when the cloud is empty or not 2-D /
    /// 3-D.
    pub fn new(cloud: &PointCloud, leaf_size: usize) -> Result<Self, HodlrError> {
        Ok(LaplaceSurfaceSource {
            geometry: SurfaceGeometry::new(cloud, leaf_size)?,
        })
    }

    /// The cluster tree matching the reordered cloud.
    pub fn tree(&self) -> &ClusterTree {
        &self.geometry.tree
    }

    /// The tree-ordered point cloud (row `i` of the matrix is point `i`).
    pub fn points(&self) -> &PointCloud {
        &self.geometry.points
    }

    /// The regularization length `delta` (about one node spacing).
    pub fn delta(&self) -> f64 {
        self.geometry.delta
    }
}

impl MatrixEntrySource<f64> for LaplaceSurfaceSource {
    fn nrows(&self) -> usize {
        self.geometry.points.len()
    }

    fn ncols(&self) -> usize {
        self.geometry.points.len()
    }

    fn entry(&self, i: usize, j: usize) -> f64 {
        let identity = if i == j { 0.5 } else { 0.0 };
        let r = self.geometry.points.distance(i, j);
        identity + self.geometry.weight * self.geometry.laplace_kernel(r)
    }
}

/// The regularized Helmholtz single-layer operator
/// `1/2 I + S_delta^kappa` with `S_delta^kappa(r) = S_delta(r) e^{i kappa r}`
/// over a closed surface point cloud.  Complex-valued; ranks grow with
/// `kappa` exactly as in the contour benchmark.
pub struct HelmholtzSurfaceSource {
    geometry: SurfaceGeometry,
    kappa: f64,
}

impl HelmholtzSurfaceSource {
    /// Spatially reorder `cloud` and discretize the regularized Helmholtz
    /// single-layer operator at wavenumber `kappa`.
    ///
    /// # Errors
    /// [`HodlrError::InvalidConfig`] when the cloud is empty, not 2-D /
    /// 3-D, or `kappa` is not finite and non-negative.
    pub fn new(cloud: &PointCloud, leaf_size: usize, kappa: f64) -> Result<Self, HodlrError> {
        if !kappa.is_finite() || kappa < 0.0 {
            return Err(HodlrError::config(format!(
                "Helmholtz wavenumber must be finite and non-negative, got {kappa}"
            )));
        }
        Ok(HelmholtzSurfaceSource {
            geometry: SurfaceGeometry::new(cloud, leaf_size)?,
            kappa,
        })
    }

    /// The cluster tree matching the reordered cloud.
    pub fn tree(&self) -> &ClusterTree {
        &self.geometry.tree
    }

    /// The tree-ordered point cloud.
    pub fn points(&self) -> &PointCloud {
        &self.geometry.points
    }

    /// The wavenumber.
    pub fn kappa(&self) -> f64 {
        self.kappa
    }
}

impl MatrixEntrySource<Complex64> for HelmholtzSurfaceSource {
    fn nrows(&self) -> usize {
        self.geometry.points.len()
    }

    fn ncols(&self) -> usize {
        self.geometry.points.len()
    }

    fn entry(&self, i: usize, j: usize) -> Complex64 {
        let identity = if i == j { 0.5 } else { 0.0 };
        let r = self.geometry.points.distance(i, j);
        let amplitude = self.geometry.weight * self.geometry.laplace_kernel(r);
        let phase = self.kappa * r;
        Complex64::new(identity + amplitude * phase.cos(), amplitude * phase.sin())
    }
}

/// A wavenumber resolved by `n` quasi-uniform points on the unit sphere /
/// circle: about ten points per wavelength along the surface, capped at
/// the paper's `kappa = 100`.
pub fn surface_resolved_kappa(n: usize, dim: usize) -> f64 {
    let spacing = if dim == 2 {
        2.0 * std::f64::consts::PI / n as f64
    } else {
        (4.0 * std::f64::consts::PI / n as f64).sqrt()
    };
    let kappa = 2.0 * std::f64::consts::PI / (10.0 * spacing);
    kappa.min(100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_cloud_lies_on_the_unit_circle_and_is_shuffled() {
        let cloud = circle_cloud(128);
        assert_eq!(cloud.len(), 128);
        assert_eq!(cloud.dim(), 2);
        for i in 0..cloud.len() {
            let p = cloud.point(i);
            let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            assert!((r - 1.0).abs() < 1e-12);
        }
        // The shuffle did its job: consecutive indices are not neighbours
        // on the circle for at least some pairs.
        let d01 = cloud.distance(0, 1);
        let min = cloud.min_distance();
        assert!(d01 > 10.0 * min, "generator order leaked: {d01} vs {min}");
    }

    #[test]
    fn fibonacci_sphere_is_quasi_uniform() {
        let cloud = fibonacci_sphere_cloud(500);
        assert_eq!(cloud.len(), 500);
        assert_eq!(cloud.dim(), 3);
        for i in 0..cloud.len() {
            let p = cloud.point(i);
            let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
            assert!((r - 1.0).abs() < 1e-12);
        }
        // Quasi-uniform: the minimum spacing is within a small factor of
        // the mean spacing sqrt(4 pi / n).
        let mean = (4.0 * std::f64::consts::PI / 500.0f64).sqrt();
        let min = cloud.min_distance();
        assert!(min > 0.2 * mean, "spacing collapsed: {min} vs mean {mean}");
    }

    #[test]
    fn laplace_surface_source_is_symmetric_and_second_kind() {
        for cloud in [circle_cloud(200), fibonacci_sphere_cloud(200)] {
            let src = LaplaceSurfaceSource::new(&cloud, 32).unwrap();
            assert_eq!(src.nrows(), 200);
            assert_eq!(src.tree().n(), 200);
            for i in (0..200).step_by(37) {
                for j in (0..200).step_by(41) {
                    assert!((src.entry(i, j) - src.entry(j, i)).abs() < 1e-15);
                }
                assert!((src.entry(i, i) - 0.5).abs() < 0.5);
            }
        }
    }

    #[test]
    fn helmholtz_surface_reduces_to_laplace_at_kappa_zero() {
        let cloud = fibonacci_sphere_cloud(150);
        let lap = LaplaceSurfaceSource::new(&cloud, 32).unwrap();
        let helm = HelmholtzSurfaceSource::new(&cloud, 32, 0.0).unwrap();
        for i in (0..150).step_by(13) {
            for j in (0..150).step_by(17) {
                let h = helm.entry(i, j);
                assert!((h.re - lap.entry(i, j)).abs() < 1e-15);
                assert!(h.im.abs() < 1e-15);
            }
        }
    }

    #[test]
    fn invalid_configurations_are_typed_errors() {
        let cloud_1d = PointCloud::new(1, vec![0.0, 1.0, 2.0]);
        assert!(matches!(
            LaplaceSurfaceSource::new(&cloud_1d, 2),
            Err(HodlrError::InvalidConfig { .. })
        ));
        let empty = PointCloud::new(2, vec![]);
        assert!(matches!(
            LaplaceSurfaceSource::new(&empty, 2),
            Err(HodlrError::InvalidConfig { .. })
        ));
        let sphere = fibonacci_sphere_cloud(32);
        assert!(matches!(
            HelmholtzSurfaceSource::new(&sphere, 8, f64::NAN),
            Err(HodlrError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn surface_kappa_is_resolved_and_capped() {
        assert!(surface_resolved_kappa(1 << 22, 3) <= 100.0);
        assert!(surface_resolved_kappa(2000, 3) > 1.0);
        assert!(surface_resolved_kappa(2000, 2) > 1.0);
    }
}
