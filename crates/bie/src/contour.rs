//! Smooth closed contours in the plane.

/// A smooth closed curve `gamma(t)`, `t in [0, 2*pi)`, traversed
/// counter-clockwise (the bounded obstacle lies on the left of the tangent).
pub trait Contour: Sync {
    /// Position `gamma(t)`.
    fn point(&self, t: f64) -> [f64; 2];
    /// First derivative `gamma'(t)`.
    fn derivative(&self, t: f64) -> [f64; 2];
    /// Second derivative `gamma''(t)`.
    fn second_derivative(&self, t: f64) -> [f64; 2];

    /// Speed `|gamma'(t)|`.
    fn speed(&self, t: f64) -> f64 {
        let d = self.derivative(t);
        (d[0] * d[0] + d[1] * d[1]).sqrt()
    }

    /// Unit normal pointing *away* from the bounded obstacle (into the
    /// exterior domain), i.e. the outward normal of the obstacle.
    fn outward_normal(&self, t: f64) -> [f64; 2] {
        let d = self.derivative(t);
        let s = (d[0] * d[0] + d[1] * d[1]).sqrt();
        [d[1] / s, -d[0] / s]
    }

    /// `n(t) . gamma''(t) / |gamma'(t)|^2` — the quantity that appears in the
    /// diagonal limit of the Laplace double-layer kernel.
    fn normal_dot_curvature(&self, t: f64) -> f64 {
        let n = self.outward_normal(t);
        let dd = self.second_derivative(t);
        let s = self.speed(t);
        (n[0] * dd[0] + n[1] * dd[1]) / (s * s)
    }
}

/// The smooth star-shaped contour used for the paper's BIE benchmarks
/// (Fig. 6): `gamma(t) = r(t) (cos t, sin t)` with
/// `r(t) = radius * (1 + amplitude * cos(arms * t))`, stretched by
/// `aspect` along the x axis to match the elongated shape in the figure.
#[derive(Copy, Clone, Debug)]
pub struct StarContour {
    /// Base radius.
    pub radius: f64,
    /// Relative amplitude of the oscillation (must keep `r(t) > 0`).
    pub amplitude: f64,
    /// Number of oscillations ("arms").
    pub arms: usize,
    /// Stretch factor applied to the x coordinate.
    pub aspect: f64,
}

impl Default for StarContour {
    fn default() -> Self {
        StarContour::paper_contour()
    }
}

impl StarContour {
    /// A smooth wavy contour resembling Fig. 6 of the paper: an elongated
    /// blob with gentle oscillations, contained in roughly `[-2, 2] x
    /// [-1.5, 1.5]`.
    pub fn paper_contour() -> Self {
        StarContour {
            radius: 1.0,
            amplitude: 0.3,
            arms: 5,
            aspect: 1.6,
        }
    }

    fn r(&self, t: f64) -> f64 {
        self.radius * (1.0 + self.amplitude * (self.arms as f64 * t).cos())
    }

    fn dr(&self, t: f64) -> f64 {
        -self.radius * self.amplitude * self.arms as f64 * (self.arms as f64 * t).sin()
    }

    fn ddr(&self, t: f64) -> f64 {
        -self.radius * self.amplitude * (self.arms as f64).powi(2) * (self.arms as f64 * t).cos()
    }
}

impl Contour for StarContour {
    fn point(&self, t: f64) -> [f64; 2] {
        let r = self.r(t);
        [self.aspect * r * t.cos(), r * t.sin()]
    }

    fn derivative(&self, t: f64) -> [f64; 2] {
        let (r, dr) = (self.r(t), self.dr(t));
        [
            self.aspect * (dr * t.cos() - r * t.sin()),
            dr * t.sin() + r * t.cos(),
        ]
    }

    fn second_derivative(&self, t: f64) -> [f64; 2] {
        let (r, dr, ddr) = (self.r(t), self.dr(t), self.ddr(t));
        [
            self.aspect * (ddr * t.cos() - 2.0 * dr * t.sin() - r * t.cos()),
            ddr * t.sin() + 2.0 * dr * t.cos() - r * t.sin(),
        ]
    }
}

/// Sample `n` equispaced parameter values `t_i = 2 pi i / n`.
pub fn equispaced_parameters(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 2.0 * std::f64::consts::PI * i as f64 / n as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivatives_match_finite_differences() {
        let c = StarContour::paper_contour();
        let h = 1e-6;
        for &t in &[0.1, 1.0, 2.5, 4.0, 6.0] {
            let p_plus = c.point(t + h);
            let p_minus = c.point(t - h);
            let d = c.derivative(t);
            for k in 0..2 {
                let fd = (p_plus[k] - p_minus[k]) / (2.0 * h);
                assert!((d[k] - fd).abs() < 1e-6, "first derivative at t={t}");
            }
            let d_plus = c.derivative(t + h);
            let d_minus = c.derivative(t - h);
            let dd = c.second_derivative(t);
            for k in 0..2 {
                let fd = (d_plus[k] - d_minus[k]) / (2.0 * h);
                assert!((dd[k] - fd).abs() < 1e-5, "second derivative at t={t}");
            }
        }
    }

    #[test]
    fn normal_is_unit_and_orthogonal_to_tangent_and_points_outward() {
        let c = StarContour::paper_contour();
        for &t in &[0.0, 0.7, 2.0, 3.3, 5.1] {
            let n = c.outward_normal(t);
            let d = c.derivative(t);
            assert!((n[0] * n[0] + n[1] * n[1] - 1.0).abs() < 1e-12);
            assert!((n[0] * d[0] + n[1] * d[1]).abs() < 1e-12);
            // Outward: moving from the boundary along n increases the
            // distance from the origin (the contour is star-shaped).
            let p = c.point(t);
            let outside = [p[0] + 1e-3 * n[0], p[1] + 1e-3 * n[1]];
            let r_p = (p[0] * p[0] + p[1] * p[1]).sqrt();
            let r_o = (outside[0] * outside[0] + outside[1] * outside[1]).sqrt();
            assert!(r_o > r_p, "normal does not point outward at t={t}");
        }
    }

    #[test]
    fn circle_curvature_limit() {
        // For the unit circle (amplitude 0, aspect 1) the double-layer
        // diagonal limit n . gamma'' / |gamma'|^2 equals -1 (radius 1,
        // outward normal).
        let circle = StarContour {
            radius: 1.0,
            amplitude: 0.0,
            arms: 1,
            aspect: 1.0,
        };
        for &t in &[0.2, 1.5, 3.0] {
            assert!((circle.normal_dot_curvature(t) + 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn equispaced_parameters_cover_the_period() {
        let ts = equispaced_parameters(8);
        assert_eq!(ts.len(), 8);
        assert_eq!(ts[0], 0.0);
        assert!((ts[4] - std::f64::consts::PI).abs() < 1e-15);
    }
}
