//! Quadrature rules on a periodic parameter grid.
//!
//! The Laplace equation (21) has a smooth integrand on a smooth contour, so
//! the plain (periodic) trapezoidal rule is used — the paper calls this the
//! "2nd-order quadrature".  The Helmholtz combined-field kernel (24) has a
//! logarithmic singularity at the target point, so the 6th-order
//! Kapur–Rokhlin corrected trapezoidal rule is used: the singular node is
//! dropped and the six nearest nodes on each side receive correction
//! weights.

use crate::contour::Contour;

/// Plain periodic trapezoidal weights `w_j = (2 pi / n) |gamma'(t_j)|`.
pub fn trapezoidal_weights<C: Contour>(contour: &C, params: &[f64]) -> Vec<f64> {
    let h = 2.0 * std::f64::consts::PI / params.len() as f64;
    params.iter().map(|&t| h * contour.speed(t)).collect()
}

/// The 6th-order Kapur–Rokhlin correction coefficients `gamma_1..gamma_6`
/// (Kapur & Rokhlin 1997; also tabulated in Hao, Barnett & Martinsson).
/// The weight of the node at distance `k` grid points from the singular
/// target (on either side) is multiplied by `1 + gamma_k`; the weight of the
/// singular node itself is set to zero.
pub const KAPUR_ROKHLIN_6: [f64; 6] = [
    4.967362978287758,
    -16.20501504859126,
    25.85153761832639,
    -22.22599466791883,
    9.930104998037539,
    -1.817995878141594,
];

/// Kapur–Rokhlin corrected weights for the target node `target`: the plain
/// trapezoidal weights with the singular node zeroed and the 6 neighbours on
/// each side (periodically) corrected.
///
/// # Panics
/// Panics if the grid has fewer than 13 nodes (the correction stencils would
/// wrap onto each other).
pub fn kapur_rokhlin_weights<C: Contour>(contour: &C, params: &[f64], target: usize) -> Vec<f64> {
    let n = params.len();
    assert!(n >= 13, "Kapur-Rokhlin needs at least 13 quadrature nodes");
    let mut w = trapezoidal_weights(contour, params);
    w[target] = 0.0;
    for (k, gamma) in KAPUR_ROKHLIN_6.iter().enumerate() {
        let offset = k + 1;
        let right = (target + offset) % n;
        let left = (target + n - offset) % n;
        w[right] *= 1.0 + gamma;
        w[left] *= 1.0 + gamma;
    }
    w
}

/// The multiplicative correction applied to the node at (periodic) grid
/// distance `dist` from the singular target: `1 + gamma_dist` for
/// `1 <= dist <= 6`, `0` for `dist == 0`, `1` otherwise.  This is the form
/// the Nyström assembly uses entry by entry.
pub fn kapur_rokhlin_factor(dist: usize) -> f64 {
    match dist {
        0 => 0.0,
        d if d <= 6 => 1.0 + KAPUR_ROKHLIN_6[d - 1],
        _ => 1.0,
    }
}

/// Periodic grid distance between nodes `i` and `j` on an `n`-point grid.
pub fn periodic_distance(i: usize, j: usize, n: usize) -> usize {
    let d = i.abs_diff(j);
    d.min(n - d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contour::{equispaced_parameters, StarContour};

    #[test]
    fn trapezoid_integrates_the_circumference_exactly_for_a_circle() {
        let circle = StarContour {
            radius: 2.0,
            amplitude: 0.0,
            arms: 1,
            aspect: 1.0,
        };
        let params = equispaced_parameters(40);
        let w = trapezoidal_weights(&circle, &params);
        let length: f64 = w.iter().sum();
        assert!((length - 4.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_converges_spectrally_for_smooth_periodic_integrands() {
        // Integrate a smooth function over the star contour with two
        // resolutions; the coarse error should already be tiny.
        let c = StarContour::paper_contour();
        let integral = |n: usize| -> f64 {
            let params = equispaced_parameters(n);
            let w = trapezoidal_weights(&c, &params);
            params
                .iter()
                .zip(&w)
                .map(|(&t, &wi)| {
                    let p = c.point(t);
                    (p[0] * p[0] + (2.0 * p[1]).cos()) * wi
                })
                .sum()
        };
        let coarse = integral(400);
        let fine = integral(800);
        assert!((coarse - fine).abs() < 1e-9 * fine.abs().max(1.0));
    }

    #[test]
    fn kapur_rokhlin_coefficients_have_the_known_alternating_structure() {
        // Signs alternate and the magnitudes are the published 6th-order
        // values; their sum is about 0.5 (a well-known sanity check).
        let sum: f64 = KAPUR_ROKHLIN_6.iter().sum();
        assert!((sum - 0.5).abs() < 0.01, "sum {sum}");
        for (k, g) in KAPUR_ROKHLIN_6.iter().enumerate() {
            assert_eq!(g.signum(), if k % 2 == 0 { 1.0 } else { -1.0 });
        }
    }

    #[test]
    fn corrected_weights_zero_the_target_and_touch_twelve_neighbours() {
        let c = StarContour::paper_contour();
        let params = equispaced_parameters(64);
        let plain = trapezoidal_weights(&c, &params);
        let corrected = kapur_rokhlin_weights(&c, &params, 10);
        assert_eq!(corrected[10], 0.0);
        let mut touched = 0;
        for j in 0..64 {
            if j == 10 {
                continue;
            }
            if (corrected[j] - plain[j]).abs() > 1e-14 {
                touched += 1;
                assert!(periodic_distance(10, j, 64) <= 6);
            }
        }
        assert_eq!(touched, 12);
    }

    #[test]
    fn kapur_rokhlin_integrates_a_log_singularity_accurately() {
        // Integral over the unit circle of log|x(t0) - x(t)| ds(t), target at
        // t0 = 0: the exact value for the unit circle is zero
        // (since the mean of log(2 sin(t/2)) over the period vanishes).
        let circle = StarContour {
            radius: 1.0,
            amplitude: 0.0,
            arms: 1,
            aspect: 1.0,
        };
        let run = |n: usize| -> f64 {
            let params = equispaced_parameters(n);
            let w = kapur_rokhlin_weights(&circle, &params, 0);
            let x0 = circle.point(0.0);
            params
                .iter()
                .zip(&w)
                .map(|(&t, &wi)| {
                    if wi == 0.0 {
                        return 0.0;
                    }
                    let p = circle.point(t);
                    let r = ((p[0] - x0[0]).powi(2) + (p[1] - x0[1]).powi(2)).sqrt();
                    r.ln() * wi
                })
                .sum()
        };
        let coarse = (run(100)).abs();
        let fine = (run(400)).abs();
        assert!(fine < 1e-6, "fine-grid error {fine}");
        assert!(fine < coarse, "no convergence: {coarse} -> {fine}");
        // Plain trapezoid (skipping the singular node without correction)
        // is far less accurate.
        let plain = |n: usize| -> f64 {
            let params = equispaced_parameters(n);
            let w = trapezoidal_weights(&circle, &params);
            let x0 = circle.point(0.0);
            params
                .iter()
                .zip(&w)
                .enumerate()
                .map(|(j, (&t, &wi))| {
                    if j == 0 {
                        return 0.0;
                    }
                    let p = circle.point(t);
                    let r = ((p[0] - x0[0]).powi(2) + (p[1] - x0[1]).powi(2)).sqrt();
                    r.ln() * wi
                })
                .sum()
        };
        assert!(fine < plain(400).abs() / 10.0);
    }

    #[test]
    fn periodic_distance_wraps() {
        assert_eq!(periodic_distance(0, 63, 64), 1);
        assert_eq!(periodic_distance(5, 5, 64), 0);
        assert_eq!(periodic_distance(2, 34, 64), 32);
        assert_eq!(kapur_rokhlin_factor(0), 0.0);
        assert_eq!(kapur_rokhlin_factor(7), 1.0);
        assert!((kapur_rokhlin_factor(1) - (1.0 + KAPUR_ROKHLIN_6[0])).abs() < 1e-15);
    }
}
