//! The Helmholtz exterior Dirichlet problem as a combined-field integral
//! equation (Section IV-C, Eq. 24).
//!
//! The BVP (22)–(23) is reformulated with a combined-field representation
//! `u = D_kappa[sigma] + i eta S_kappa[sigma]`, which from the exterior side
//! gives the second-kind equation
//!
//! `1/2 sigma(x) + INT_Gamma ( d_kappa(x, y) + i eta s_kappa(x, y) ) sigma(y) ds(y) = f(x)`
//!
//! with `s_kappa(x, y) = (i/4) H_0^(1)(kappa |x - y|)` and
//! `d_kappa(x, y) = n(y) . grad_y phi_kappa(x - y)`, `n` being the normal
//! that points into the exterior domain (the obstacle's outward normal).
//! The single-layer kernel has a logarithmic singularity at the target, so
//! the matrix is assembled with the 6th-order Kapur–Rokhlin corrected
//! trapezoidal rule, exactly as in the paper.

use crate::contour::{equispaced_parameters, Contour};
use crate::quadrature::{kapur_rokhlin_factor, periodic_distance, trapezoidal_weights};
use hodlr_compress::MatrixEntrySource;
use hodlr_kernels::hankel::{hankel1_0, hankel1_1};
use hodlr_la::Complex64;

/// The Nyström discretization of Eq. (24) on `n` equispaced nodes.
pub struct HelmholtzExteriorBie<C: Contour> {
    contour: C,
    params: Vec<f64>,
    nodes: Vec<[f64; 2]>,
    normals: Vec<[f64; 2]>,
    weights: Vec<f64>,
    /// Wavenumber `kappa`.
    kappa: f64,
    /// Coupling parameter `eta` (the paper uses `eta = kappa`).
    eta: f64,
}

impl<C: Contour> HelmholtzExteriorBie<C> {
    /// Discretize the combined-field equation with wavenumber `kappa` and
    /// coupling `eta` on `n` equispaced nodes.
    pub fn new(contour: C, n: usize, kappa: f64, eta: f64) -> Self {
        let params = equispaced_parameters(n);
        let weights = trapezoidal_weights(&contour, &params);
        let nodes: Vec<[f64; 2]> = params.iter().map(|&t| contour.point(t)).collect();
        let normals: Vec<[f64; 2]> = params.iter().map(|&t| contour.outward_normal(t)).collect();
        HelmholtzExteriorBie {
            contour,
            params,
            nodes,
            normals,
            weights,
            kappa,
            eta,
        }
    }

    /// The paper's configuration: `eta = kappa`.
    pub fn with_paper_parameters(contour: C, n: usize, kappa: f64) -> Self {
        Self::new(contour, n, kappa, kappa)
    }

    /// Contour parameter values of the discretization nodes.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Number of discretization nodes (the matrix size `N`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the discretization has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The wavenumber.
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// The underlying contour.
    pub fn contour(&self) -> &C {
        &self.contour
    }

    /// The discretization nodes on the contour.
    pub fn nodes(&self) -> &[[f64; 2]] {
        &self.nodes
    }

    /// The fundamental solution `phi_kappa(x - y) = (i/4) H_0^(1)(kappa r)`.
    fn single_layer(&self, x: [f64; 2], y: [f64; 2]) -> Complex64 {
        let r = ((x[0] - y[0]).powi(2) + (x[1] - y[1]).powi(2)).sqrt();
        hankel1_0(self.kappa * r).mul_i().scale_by(0.25)
    }

    /// The double-layer kernel `d_kappa(x, y) = n(y) . grad_y phi_kappa(x-y)
    /// = (i kappa / 4) H_1^(1)(kappa r) (n(y) . (x - y)) / r`.
    fn double_layer(&self, x: [f64; 2], y: [f64; 2], n: [f64; 2]) -> Complex64 {
        let dx = [x[0] - y[0], x[1] - y[1]];
        let r = (dx[0] * dx[0] + dx[1] * dx[1]).sqrt();
        let ndotr = n[0] * dx[0] + n[1] * dx[1];
        hankel1_1(self.kappa * r)
            .mul_i()
            .scale_by(0.25 * self.kappa * ndotr / r)
    }

    /// The combined-field kernel `d_kappa + i eta s_kappa` for a pair of
    /// distinct nodes.
    fn combined_kernel(&self, i: usize, j: usize) -> Complex64 {
        let x = self.nodes[i];
        let y = self.nodes[j];
        let n = self.normals[j];
        self.double_layer(x, y, n) + self.single_layer(x, y).mul_i().scale_by(self.eta)
    }

    /// Boundary data produced by interior point sources
    /// `u(x) = sum_k q_k phi_kappa(x - s_k)`; the resulting exterior field is
    /// a valid radiating Helmholtz solution, so it manufactures a problem
    /// with known solution.
    pub fn dirichlet_data_from_sources(&self, sources: &[([f64; 2], f64)]) -> Vec<Complex64> {
        self.nodes
            .iter()
            .map(|&x| self.potential_from_sources(x, sources))
            .collect()
    }

    /// The exact field of the interior sources at a point `x`.
    pub fn potential_from_sources(&self, x: [f64; 2], sources: &[([f64; 2], f64)]) -> Complex64 {
        let mut u = Complex64::new(0.0, 0.0);
        for &(s, q) in sources {
            u += self.single_layer(x, s).scale_by(q);
        }
        u
    }

    /// Evaluate the combined-field representation at an exterior point.
    #[allow(clippy::needless_range_loop)] // j indexes several parallel arrays
    pub fn evaluate_exterior(&self, x: [f64; 2], sigma: &[Complex64]) -> Complex64 {
        let mut u = Complex64::new(0.0, 0.0);
        for j in 0..self.len() {
            let y = self.nodes[j];
            let n = self.normals[j];
            let kernel =
                self.double_layer(x, y, n) + self.single_layer(x, y).mul_i().scale_by(self.eta);
            u += (kernel * sigma[j]).scale_by(self.weights[j]);
        }
        u
    }
}

impl<C: Contour> MatrixEntrySource<Complex64> for HelmholtzExteriorBie<C> {
    fn nrows(&self) -> usize {
        self.len()
    }

    fn ncols(&self) -> usize {
        self.len()
    }

    fn entry(&self, i: usize, j: usize) -> Complex64 {
        let n = self.len();
        let dist = periodic_distance(i, j, n);
        let identity = if i == j {
            Complex64::new(0.5, 0.0)
        } else {
            Complex64::new(0.0, 0.0)
        };
        if dist == 0 {
            // The Kapur-Rokhlin rule drops the singular node entirely.
            return identity;
        }
        let factor = kapur_rokhlin_factor(dist);
        identity + (self.combined_kernel(i, j)).scale_by(self.weights[j] * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contour::StarContour;
    use hodlr_la::lu::solve_dense;
    use hodlr_la::Scalar;

    #[allow(clippy::type_complexity)]
    fn solve_bie(
        n: usize,
        kappa: f64,
    ) -> (
        HelmholtzExteriorBie<StarContour>,
        Vec<Complex64>,
        Vec<([f64; 2], f64)>,
    ) {
        let bie =
            HelmholtzExteriorBie::with_paper_parameters(StarContour::paper_contour(), n, kappa);
        let sources = vec![([0.25, 0.1], 1.0), ([-0.3, -0.1], 0.6)];
        let f = bie.dirichlet_data_from_sources(&sources);
        let a = bie.to_dense();
        let sigma = solve_dense(&a, &f).expect("combined-field operator is invertible");
        (bie, sigma, sources)
    }

    #[test]
    fn exterior_solution_matches_the_manufactured_field() {
        let (bie, sigma, sources) = solve_bie(600, 10.0);
        // One parameter value per node, equispaced on [0, 2 pi).
        assert_eq!(bie.params().len(), bie.len());
        assert!(bie.params().windows(2).all(|w| w[1] > w[0]));
        for &x in &[[3.5, 1.0], [0.0, 4.0], [-4.0, -1.5]] {
            let u = bie.evaluate_exterior(x, &sigma);
            let exact = bie.potential_from_sources(x, &sources);
            let err = (u - exact).abs();
            // The achievable accuracy at this resolution is set by the
            // 6th-order quadrature constant for kappa = 10; a wrong jump or
            // normal convention would give an O(1) relative error here.
            assert!(
                err < 1e-3 * exact.abs().max(1e-2),
                "at {x:?}: error {err}, field magnitude {}",
                exact.abs()
            );
        }
    }

    #[test]
    fn refinement_improves_or_maintains_accuracy() {
        let x = [4.0, 2.0];
        let (bie_c, sigma_c, sources) = solve_bie(300, 10.0);
        let exact = bie_c.potential_from_sources(x, &sources);
        let coarse_err = (bie_c.evaluate_exterior(x, &sigma_c) - exact).abs();
        let (bie_f, sigma_f, _) = solve_bie(600, 10.0);
        let fine_err = (bie_f.evaluate_exterior(x, &sigma_f) - exact).abs();
        assert!(
            fine_err <= coarse_err * 1.5 + 1e-10,
            "{coarse_err} -> {fine_err}"
        );
        assert!(fine_err < 1e-4);
    }

    #[test]
    fn operator_is_second_kind_with_half_on_the_diagonal() {
        let bie =
            HelmholtzExteriorBie::with_paper_parameters(StarContour::paper_contour(), 128, 5.0);
        for i in (0..128).step_by(17) {
            let d = bie.entry(i, i);
            assert!((d - Complex64::new(0.5, 0.0)).abs() < 1e-14);
        }
        assert_eq!(bie.nrows(), 128);
        assert_eq!(bie.kappa(), 5.0);
    }

    #[test]
    fn far_entries_are_smaller_than_near_entries() {
        let bie =
            HelmholtzExteriorBie::with_paper_parameters(StarContour::paper_contour(), 256, 5.0);
        // Off-diagonal decay in magnitude (oscillatory but decaying like
        // 1/sqrt(kappa r)).
        let near = bie.entry(0, 8).abs();
        let far = bie.entry(0, 128).abs();
        assert!(far < near, "near {near}, far {far}");
    }
}
