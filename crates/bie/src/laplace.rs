//! The Laplace exterior Dirichlet problem as a second-kind integral
//! equation (Section IV-B, Eq. 21).
//!
//! The BVP (19)–(20) is reformulated with a double-layer density `sigma` on
//! the contour plus a log-source correction anchored at an interior point
//! `z`:
//!
//! `1/2 sigma(x) + INT_Gamma ( d(x, y) - 1/(2 pi) log|x - z| ) sigma(y) ds(y) = f(x)`
//!
//! where `d(x, y) = n(y) . (x - y) / (2 pi |x - y|^2)` and `n` is the outward
//! normal of the obstacle.  The integrand is smooth on a smooth contour (the
//! diagonal limit of `d` is a curvature term), so the periodic trapezoidal
//! rule gives the discretization the paper calls "2nd-order".

use crate::contour::{equispaced_parameters, Contour};
use crate::quadrature::trapezoidal_weights;
use hodlr_compress::MatrixEntrySource;

/// The Nyström discretization of Eq. (21) on `n` equispaced nodes.
pub struct LaplaceExteriorBie<C: Contour> {
    contour: C,
    params: Vec<f64>,
    nodes: Vec<[f64; 2]>,
    normals: Vec<[f64; 2]>,
    weights: Vec<f64>,
    curvature_terms: Vec<f64>,
    /// Interior anchor point `z` of the log correction (the origin in the
    /// paper).
    anchor: [f64; 2],
}

impl<C: Contour> LaplaceExteriorBie<C> {
    /// Discretize the equation on `n` equispaced parameter nodes.
    pub fn new(contour: C, n: usize) -> Self {
        let params = equispaced_parameters(n);
        let weights = trapezoidal_weights(&contour, &params);
        let nodes: Vec<[f64; 2]> = params.iter().map(|&t| contour.point(t)).collect();
        let normals: Vec<[f64; 2]> = params.iter().map(|&t| contour.outward_normal(t)).collect();
        let curvature_terms: Vec<f64> = params
            .iter()
            .map(|&t| contour.normal_dot_curvature(t))
            .collect();
        LaplaceExteriorBie {
            contour,
            params,
            nodes,
            normals,
            weights,
            curvature_terms,
            anchor: [0.0, 0.0],
        }
    }

    /// Number of discretization nodes (the matrix size `N`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the discretization has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The discretization nodes on the contour.
    pub fn nodes(&self) -> &[[f64; 2]] {
        &self.nodes
    }

    /// The parameter values of the nodes.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// The underlying contour.
    pub fn contour(&self) -> &C {
        &self.contour
    }

    /// The Laplace double-layer kernel `d(x, y)` of the paper, with the
    /// curvature limit on the diagonal.
    fn double_layer(&self, i: usize, j: usize) -> f64 {
        let pi = std::f64::consts::PI;
        if i == j {
            // lim_{y -> x} d(x, y) = n . gamma'' / (4 pi |gamma'|^2).
            return self.curvature_terms[i] / (4.0 * pi);
        }
        let x = self.nodes[i];
        let y = self.nodes[j];
        let n = self.normals[j];
        let dx = [x[0] - y[0], x[1] - y[1]];
        let r2 = dx[0] * dx[0] + dx[1] * dx[1];
        (n[0] * dx[0] + n[1] * dx[1]) / (2.0 * pi * r2)
    }

    /// The log-correction term `-1/(2 pi) log|x_i - z|`.
    fn log_correction(&self, i: usize) -> f64 {
        let x = self.nodes[i];
        let r = ((x[0] - self.anchor[0]).powi(2) + (x[1] - self.anchor[1]).powi(2)).sqrt();
        -(r.ln()) / (2.0 * std::f64::consts::PI)
    }

    /// Evaluate the boundary data `f(x_i) = u_exact(x_i)` produced by a set
    /// of interior point sources `(location, charge)`; used to manufacture
    /// problems with a known exterior solution.
    pub fn dirichlet_data_from_sources(&self, sources: &[([f64; 2], f64)]) -> Vec<f64> {
        self.nodes
            .iter()
            .map(|&x| potential_from_sources(x, sources))
            .collect()
    }

    /// Evaluate the representation
    /// `u(x) = INT ( d(x, y) - 1/(2 pi) log|x - z| ) sigma(y) ds(y)` at an
    /// exterior point `x` given the solved density `sigma`.
    #[allow(clippy::needless_range_loop)] // j indexes several parallel arrays
    pub fn evaluate_exterior(&self, x: [f64; 2], sigma: &[f64]) -> f64 {
        let pi = std::f64::consts::PI;
        let mut u = 0.0;
        for j in 0..self.len() {
            let y = self.nodes[j];
            let n = self.normals[j];
            let dx = [x[0] - y[0], x[1] - y[1]];
            let r2 = dx[0] * dx[0] + dx[1] * dx[1];
            let dlp = (n[0] * dx[0] + n[1] * dx[1]) / (2.0 * pi * r2);
            let rz = ((x[0] - self.anchor[0]).powi(2) + (x[1] - self.anchor[1]).powi(2)).sqrt();
            let log_term = -(rz.ln()) / (2.0 * pi);
            u += (dlp + log_term) * sigma[j] * self.weights[j];
        }
        u
    }
}

/// The exact exterior potential of a set of interior log sources:
/// `u(x) = sum_k q_k * (-1/(2 pi)) log|x - s_k|`.
pub fn potential_from_sources(x: [f64; 2], sources: &[([f64; 2], f64)]) -> f64 {
    let pi = std::f64::consts::PI;
    sources
        .iter()
        .map(|&(s, q)| {
            let r = ((x[0] - s[0]).powi(2) + (x[1] - s[1]).powi(2)).sqrt();
            -q * r.ln() / (2.0 * pi)
        })
        .sum()
}

impl<C: Contour> MatrixEntrySource<f64> for LaplaceExteriorBie<C> {
    fn nrows(&self) -> usize {
        self.len()
    }

    fn ncols(&self) -> usize {
        self.len()
    }

    fn entry(&self, i: usize, j: usize) -> f64 {
        let identity = if i == j { 0.5 } else { 0.0 };
        identity + (self.double_layer(i, j) + self.log_correction(i)) * self.weights[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contour::StarContour;
    use hodlr_la::lu::solve_dense;

    #[allow(clippy::type_complexity)]
    fn solve_bie(
        n: usize,
    ) -> (
        LaplaceExteriorBie<StarContour>,
        Vec<f64>,
        Vec<([f64; 2], f64)>,
    ) {
        let bie = LaplaceExteriorBie::new(StarContour::paper_contour(), n);
        let sources = vec![([0.2, 0.1], 1.3), ([-0.4, 0.05], -0.4), ([0.1, -0.3], 0.7)];
        let f = bie.dirichlet_data_from_sources(&sources);
        let a = bie.to_dense();
        let sigma = solve_dense(&a, &f).expect("second-kind operator is well conditioned");
        (bie, sigma, sources)
    }

    #[test]
    fn exterior_solution_matches_the_manufactured_potential() {
        let (bie, sigma, sources) = solve_bie(400);
        // Evaluate well away from the contour (it fits inside |x| < 2.1).
        for &x in &[[3.5, 0.5], [0.0, 4.0], [-3.0, -2.5], [6.0, 1.0]] {
            let u = bie.evaluate_exterior(x, &sigma);
            let exact = potential_from_sources(x, &sources);
            assert!(
                (u - exact).abs() < 1e-8 * exact.abs().max(1.0),
                "at {x:?}: {u} vs {exact}"
            );
        }
    }

    #[test]
    fn resolution_refinement_does_not_change_the_solution() {
        let (bie_c, sigma_c, sources) = solve_bie(200);
        let (bie_f, sigma_f, _) = solve_bie(400);
        let x = [4.0, 3.0];
        let exact = potential_from_sources(x, &sources);
        let coarse = bie_c.evaluate_exterior(x, &sigma_c);
        let fine = bie_f.evaluate_exterior(x, &sigma_f);
        assert!((coarse - exact).abs() < 1e-6);
        assert!((fine - exact).abs() <= (coarse - exact).abs() + 1e-12);
    }

    #[test]
    fn operator_is_well_conditioned_second_kind() {
        // Diagonal entries are near 1/2 and the operator is far from
        // singular: the solve above succeeded and the density is bounded.
        let (bie, sigma, _) = solve_bie(200);
        let a = bie.to_dense();
        for i in 0..bie.len() {
            assert!((a[(i, i)] - 0.5).abs() < 0.2, "diagonal {}", a[(i, i)]);
        }
        let max_sigma = sigma.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(max_sigma < 100.0);
    }

    #[test]
    fn entry_source_shape() {
        let bie = LaplaceExteriorBie::new(StarContour::paper_contour(), 64);
        assert_eq!(bie.nrows(), 64);
        assert_eq!(bie.ncols(), 64);
        assert_eq!(bie.len(), 64);
        assert!(!bie.is_empty());
    }
}
