//! # hodlr-bie — boundary integral equation substrate
//!
//! The paper's second and third benchmark families (Sections IV-B and IV-C,
//! Tables IV and V) solve dense linear systems obtained by Nyström
//! discretization of boundary integral equations on a smooth closed contour:
//!
//! * the Laplace exterior Dirichlet problem reformulated as the second-kind
//!   equation (21) with the double-layer kernel plus a log correction,
//!   discretized with the (2nd-order, spectrally accurate for smooth
//!   integrands) trapezoidal rule — see [`laplace`];
//! * the Helmholtz exterior Dirichlet problem reformulated as the
//!   combined-field equation (24) with `eta = kappa`, discretized with the
//!   6th-order Kapur–Rokhlin corrected trapezoidal rule — see [`helmholtz`];
//! * the smooth star-shaped contour of Fig. 6 and the quadrature rules
//!   themselves — see [`contour`] and [`quadrature`];
//! * regularized single-layer operators over unordered 2-D / 3-D surface
//!   point clouds (unit circle, Fibonacci sphere), the geometry family of
//!   the `n >= 10^5` scale-out benchmark — see [`surface`].
//!
//! Every discretized operator is exposed as a
//! [`MatrixEntrySource`](hodlr_compress::MatrixEntrySource), so the HODLR
//! builder compresses its off-diagonal blocks directly from the analytic
//! kernel (the paper uses proxy surfaces for this step; we use algebraic
//! compression of the same entries, which preserves the ranks the format is
//! built on — see DESIGN.md).

pub mod contour;
pub mod helmholtz;
pub mod laplace;
pub mod quadrature;
pub mod surface;

pub use contour::{Contour, StarContour};
pub use helmholtz::HelmholtzExteriorBie;
pub use laplace::LaplaceExteriorBie;
pub use quadrature::{kapur_rokhlin_weights, trapezoidal_weights};
pub use surface::{
    circle_cloud, fibonacci_sphere_cloud, surface_resolved_kappa, HelmholtzSurfaceSource,
    LaplaceSurfaceSource,
};
