//! Restarted GMRES(m) with right preconditioning.
//!
//! Arnoldi with modified Gram–Schmidt, Givens rotations on the Hessenberg
//! matrix (complex-capable), and the standard right-preconditioned
//! formulation: solve `A M^{-1} u = b`, then `x = M^{-1} u`, so the
//! residual recurrence tracks the residual of the *original* system and
//! the preconditioner only has to be applied, never transposed.

use crate::operator::LinearOperator;
use crate::precond::IdentityPreconditioner;
use crate::report::IterativeSolution;
use hodlr_la::blas::{axpy_slice, dot_conj};
use hodlr_la::norms::norm2;
use hodlr_la::{HodlrError, RealScalar, Scalar};

/// Restarted GMRES(m).
#[derive(Copy, Clone, Debug)]
pub struct Gmres {
    restart: usize,
    max_iters: usize,
    tol: f64,
}

impl Default for Gmres {
    fn default() -> Self {
        Gmres {
            restart: 50,
            max_iters: 500,
            tol: 1e-10,
        }
    }
}

impl Gmres {
    /// GMRES with the default configuration (restart 50, 500 iterations,
    /// relative tolerance 1e-10).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the restart length `m` (a zero restart is reported as
    /// [`HodlrError::InvalidConfig`] at solve time).
    pub fn restart(mut self, m: usize) -> Self {
        self.restart = m;
        self
    }

    /// Set the total iteration cap (across restarts).
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Set the relative-residual tolerance.
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Solve `A x = b` without preconditioning.
    ///
    /// # Errors
    /// Returns [`HodlrError::DimensionMismatch`] when `b` and the operator
    /// disagree, or [`HodlrError::InvalidConfig`] for a bad configuration.
    /// Non-convergence is *not* an error at this layer: the returned
    /// [`IterativeSolution`] reports it (the `hodlr` façade's `Solve`
    /// implementation converts it into [`HodlrError::NonConvergence`]).
    pub fn solve<T, A>(&self, a: &A, b: &[T]) -> Result<IterativeSolution<T>, HodlrError>
    where
        T: Scalar,
        A: LinearOperator<T>,
    {
        self.solve_preconditioned(a, &IdentityPreconditioner::new(b.len()), b)
    }

    /// Solve `A x = b` with `m` as a right preconditioner (`m` applies
    /// `M^{-1}`, e.g. a [`GpuPreconditioner`](crate::GpuPreconditioner)
    /// over a loose HODLR factorization).
    /// # Errors
    /// See [`Gmres::solve`].
    pub fn solve_preconditioned<T, A, M>(
        &self,
        a: &A,
        m: &M,
        b: &[T],
    ) -> Result<IterativeSolution<T>, HodlrError>
    where
        T: Scalar,
        A: LinearOperator<T>,
        M: LinearOperator<T>,
    {
        let n = b.len();
        HodlrError::check_dims("gmres operator vs right-hand side", a.dim(), n)?;
        HodlrError::check_dims("gmres preconditioner vs right-hand side", m.dim(), n)?;
        if self.restart == 0 {
            return Err(HodlrError::config("gmres restart length must be positive"));
        }
        if self.tol <= 0.0 || !self.tol.is_finite() {
            return Err(HodlrError::config(format!(
                "gmres tolerance must be positive and finite, got {:e}",
                self.tol
            )));
        }
        let bnorm = norm2(b).to_f64();
        let mut x = vec![T::zero(); n];
        let mut history = Vec::new();
        let mut iters = 0usize;
        if bnorm == 0.0 {
            return Ok(IterativeSolution::zero_rhs(n));
        }

        'outer: while iters < self.max_iters {
            // True residual at every (re)start.
            let ax = a.apply_vec(&x);
            let r: Vec<T> = b.iter().zip(&ax).map(|(&bi, &ai)| bi - ai).collect();
            let beta = norm2(&r).to_f64();
            if beta / bnorm <= self.tol {
                break 'outer;
            }

            let m_dim = self.restart.min(self.max_iters - iters);
            let inv_beta = T::Real::from_f64_real(1.0 / beta);
            let mut v: Vec<Vec<T>> = Vec::with_capacity(m_dim + 1);
            v.push(r.iter().map(|&ri| ri.scale(inv_beta)).collect());
            // Hessenberg columns after rotation; column j holds j + 2 rows.
            let mut h: Vec<Vec<T>> = Vec::with_capacity(m_dim);
            let mut cs: Vec<T> = Vec::with_capacity(m_dim);
            let mut sn: Vec<T> = Vec::with_capacity(m_dim);
            let mut g = vec![T::zero(); m_dim + 1];
            g[0] = T::from_f64(beta);
            let mut k = 0usize;

            for j in 0..m_dim {
                // w = A M^{-1} v_j.
                let z = m.apply_vec(&v[j]);
                let mut w = a.apply_vec(&z);

                // Modified Gram–Schmidt against the basis so far.
                let mut hcol = Vec::with_capacity(j + 2);
                for vi in v.iter().take(j + 1) {
                    let hij = dot_conj(vi, &w);
                    axpy_slice(-hij, vi, &mut w);
                    hcol.push(hij);
                }
                let wnorm = norm2(&w).to_f64();
                hcol.push(T::from_f64(wnorm));

                // Apply the accumulated Givens rotations to the new column.
                for i in 0..j {
                    let hi = hcol[i];
                    let hi1 = hcol[i + 1];
                    hcol[i] = cs[i].conj() * hi + sn[i].conj() * hi1;
                    hcol[i + 1] = cs[i] * hi1 - sn[i] * hi;
                }

                // The rotation eliminating the subdiagonal entry.
                let t = (hcol[j].abs_sqr() + hcol[j + 1].abs_sqr()).sqrt_real();
                if t.to_f64() == 0.0 {
                    // Exact breakdown: the Krylov space stopped growing and
                    // the column is zero; solve with the columns we have.
                    break;
                }
                let tinv = T::from_real(t).recip();
                let c = hcol[j] * tinv;
                let s = hcol[j + 1] * tinv;
                cs.push(c);
                sn.push(s);
                hcol[j] = T::from_real(t);
                hcol[j + 1] = T::zero();
                h.push(hcol);
                let gj = g[j];
                g[j] = c.conj() * gj;
                g[j + 1] = -(s * gj);

                k = j + 1;
                iters += 1;
                let res = g[j + 1].abs().to_f64() / bnorm;
                history.push(res);
                if res <= self.tol || wnorm == 0.0 || iters >= self.max_iters {
                    break;
                }
                let inv_wnorm = T::Real::from_f64_real(1.0 / wnorm);
                v.push(w.iter().map(|&wi| wi.scale(inv_wnorm)).collect());
            }

            if k == 0 {
                // Immediate breakdown: no progress is possible.
                break 'outer;
            }

            // Back substitution on the k x k triangle.
            let mut y = vec![T::zero(); k];
            for i in (0..k).rev() {
                let mut acc = g[i];
                for (l, yl) in y.iter().enumerate().take(k).skip(i + 1) {
                    acc -= h[l][i] * *yl;
                }
                y[i] = acc * h[i][i].recip();
            }

            // x += M^{-1} (V y).
            let mut u = vec![T::zero(); n];
            for (l, yl) in y.iter().enumerate() {
                axpy_slice(*yl, &v[l], &mut u);
            }
            let correction = m.apply_vec(&u);
            for (xi, ci) in x.iter_mut().zip(&correction) {
                *xi += *ci;
            }
        }

        // Report against the true residual, not the recurrence.
        Ok(IterativeSolution::from_candidate(
            a, b, bnorm, self.tol, x, iters, history,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::SerialPreconditioner;
    use hodlr_core::matrix::random_hodlr;
    use hodlr_la::{Complex64, DenseMatrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn converges_on_a_small_spd_like_system() {
        // Diagonally dominant dense system: GMRES without restart pressure.
        let mut rng = StdRng::seed_from_u64(10);
        let a: DenseMatrix<f64> = hodlr_la::random::random_diag_dominant(&mut rng, 40);
        let x_true: Vec<f64> = (0..40).map(|i| (i as f64 * 0.21).sin()).collect();
        let b = a.matvec(&x_true);
        let out = Gmres::new()
            .tol(1e-12)
            .solve(&a, &b)
            .unwrap()
            .expect_converged("dense gmres");
        for (xi, ei) in out.x.iter().zip(&x_true) {
            assert!((xi - ei).abs() < 1e-8, "{xi} vs {ei}");
        }
        assert!(out.relative_residual < 1e-12);
        assert!(!out.residual_history.is_empty());
    }

    #[test]
    fn complex_system_converges() {
        let mut rng = StdRng::seed_from_u64(11);
        let a: DenseMatrix<Complex64> = hodlr_la::random::random_diag_dominant(&mut rng, 32);
        let x_true: Vec<Complex64> = (0..32)
            .map(|i| Complex64::new((i as f64).cos(), (i as f64 * 0.4).sin()))
            .collect();
        let b = a.matvec(&x_true);
        let out = Gmres::new()
            .tol(1e-12)
            .solve(&a, &b)
            .unwrap()
            .expect_converged("complex gmres");
        for (xi, ei) in out.x.iter().zip(&x_true) {
            assert!((*xi - *ei).abs() < 1e-8);
        }
    }

    #[test]
    fn exact_hodlr_preconditioner_converges_in_one_iteration() {
        // Preconditioning with an exact factorization of A makes
        // A M^{-1} = I: GMRES must converge in a single iteration.
        let mut rng = StdRng::seed_from_u64(12);
        let matrix = random_hodlr::<f64, _>(&mut rng, 96, 2, 3);
        let b: Vec<f64> = hodlr_la::random::random_vector(&mut rng, 96);
        let precond = SerialPreconditioner::from_matrix(&matrix).unwrap();
        let out = Gmres::new()
            .tol(1e-10)
            .solve_preconditioned(&matrix, &precond, &b)
            .unwrap()
            .expect_converged("exactly preconditioned gmres");
        assert!(out.iterations <= 2, "took {} iterations", out.iterations);
    }

    #[test]
    fn restart_still_converges() {
        let mut rng = StdRng::seed_from_u64(13);
        let a: DenseMatrix<f64> = hodlr_la::random::random_diag_dominant(&mut rng, 60);
        let b: Vec<f64> = hodlr_la::random::random_vector(&mut rng, 60);
        let out = Gmres::new()
            .restart(5)
            .max_iters(400)
            .tol(1e-10)
            .solve(&a, &b)
            .unwrap()
            .expect_converged("restarted gmres");
        assert!(out.relative_residual < 1e-10);
    }

    #[test]
    fn zero_rhs_returns_zero_immediately() {
        let mut rng = StdRng::seed_from_u64(14);
        let a: DenseMatrix<f64> = hodlr_la::random::random_diag_dominant(&mut rng, 8);
        let out = Gmres::new().solve(&a, &[0.0; 8]).unwrap();
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert!(out.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn iteration_cap_is_respected() {
        let mut rng = StdRng::seed_from_u64(15);
        // An ill-conditioned random matrix that will not converge in 3 steps.
        let a: DenseMatrix<f64> = hodlr_la::random::random_matrix(&mut rng, 50, 50);
        let b: Vec<f64> = hodlr_la::random::random_vector(&mut rng, 50);
        let out = Gmres::new().max_iters(3).tol(1e-14).solve(&a, &b).unwrap();
        assert!(!out.converged);
        assert_eq!(out.iterations, 3);
    }
}
