//! Preconditioner adapters: the HODLR factorizations of `hodlr-core`
//! exposed as [`LinearOperator`]s applying `M^{-1}`.
//!
//! The paper's Table V(b) use case: factorize a *loose* HODLR approximation
//! of an ill-conditioned operator (cheap, low ranks) and hand it to a
//! Krylov method as a right preconditioner, amortizing the factorization
//! over many solves.

use crate::operator::LinearOperator;
use hodlr_batch::Device;
use hodlr_core::{GpuSolver, HodlrMatrix, SerialFactorization};
use hodlr_la::{DenseMatrix, HodlrError, Scalar};

/// The identity "preconditioner": turns a preconditioned method into its
/// unpreconditioned variant without a second code path.
pub struct IdentityPreconditioner {
    n: usize,
}

impl IdentityPreconditioner {
    /// Identity on vectors of length `n`.
    pub fn new(n: usize) -> Self {
        IdentityPreconditioner { n }
    }
}

impl<T: Scalar> LinearOperator<T> for IdentityPreconditioner {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.n);
        y.copy_from_slice(x);
    }

    fn apply_to_block(&self, x: &DenseMatrix<T>) -> DenseMatrix<T> {
        x.clone()
    }
}

/// A [`SerialFactorization`] (Algorithms 1–2) applying `M^{-1}`.
pub struct SerialPreconditioner<T: Scalar> {
    factor: SerialFactorization<T>,
}

impl<T: Scalar> SerialPreconditioner<T> {
    /// Wrap an existing factorization.
    pub fn new(factor: SerialFactorization<T>) -> Self {
        SerialPreconditioner { factor }
    }

    /// Factorize `matrix` (typically a loose-tolerance HODLR approximation)
    /// and wrap the result.
    ///
    /// # Errors
    /// Propagates singular leaf / coupling blocks from the factorization.
    pub fn from_matrix(matrix: &HodlrMatrix<T>) -> Result<Self, HodlrError> {
        Ok(Self::new(matrix.factorize_serial()?))
    }

    /// The wrapped factorization.
    pub fn factor(&self) -> &SerialFactorization<T> {
        &self.factor
    }
}

impl<T: Scalar> LinearOperator<T> for SerialPreconditioner<T> {
    fn dim(&self) -> usize {
        self.factor.tree().n()
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        assert_eq!(y.len(), self.dim(), "apply: y has the wrong length");
        y.copy_from_slice(&self.factor.solve(x));
    }

    fn apply_to_block(&self, x: &DenseMatrix<T>) -> DenseMatrix<T> {
        self.factor.solve_matrix(x)
    }
}

/// A factored [`GpuSolver`] (Algorithms 3–4 on the virtual batched device)
/// applying `M^{-1}`.  Every application is metered by the solver's
/// [`Device`] counters, so preconditioner traffic shows up in the same
/// launch/flop accounting as direct solves.
pub struct GpuPreconditioner<'d, T: Scalar> {
    solver: GpuSolver<'d, T>,
    n: usize,
}

impl<'d, T: Scalar> GpuPreconditioner<'d, T> {
    /// Wrap an already factored solver.
    ///
    /// # Panics
    /// Panics if `solver` has not been factorized yet.
    pub fn new(solver: GpuSolver<'d, T>) -> Self {
        assert!(
            solver.is_factored(),
            "GpuPreconditioner requires a factored solver"
        );
        let n = solver.n();
        GpuPreconditioner { solver, n }
    }

    /// Upload `matrix` to `device`, factorize it, and wrap the result.
    ///
    /// # Errors
    /// Propagates singular batch entries from the factorization.
    pub fn from_matrix(device: &'d Device, matrix: &HodlrMatrix<T>) -> Result<Self, HodlrError> {
        let mut solver = GpuSolver::new(device, matrix);
        solver.factorize()?;
        Ok(Self::new(solver))
    }

    /// Consume the adapter, returning the solver.
    pub fn into_inner(self) -> GpuSolver<'d, T> {
        self.solver
    }
}

impl<T: Scalar> LinearOperator<T> for GpuPreconditioner<'_, T> {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.n, "apply: x has the wrong length");
        assert_eq!(y.len(), self.n, "apply: y has the wrong length");
        let solved = self
            .solver
            .solve(x)
            .expect("solver is factored and the right-hand-side length was checked");
        y.copy_from_slice(&solved);
    }

    fn apply_to_block(&self, x: &DenseMatrix<T>) -> DenseMatrix<T> {
        assert_eq!(
            x.rows(),
            self.n,
            "apply_to_block: x has the wrong row count"
        );
        self.solver
            .solve_matrix(x)
            .expect("solver is factored and the right-hand-side shape was checked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr_core::matrix::random_hodlr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preconditioners_invert_an_exact_hodlr_matrix() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = random_hodlr::<f64, _>(&mut rng, 64, 3, 2);
        let x_true: Vec<f64> = (0..64).map(|i| (i as f64 * 0.11).cos()).collect();
        let b = m.matvec(&x_true);

        let serial = SerialPreconditioner::from_matrix(&m).unwrap();
        let x = serial.apply_vec(&b);
        for (a, e) in x.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-9);
        }

        let device = Device::new();
        let gpu = GpuPreconditioner::from_matrix(&device, &m).unwrap();
        let x = gpu.apply_vec(&b);
        for (a, e) in x.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_preconditioner_is_a_copy() {
        let id = IdentityPreconditioner::new(4);
        let x = vec![1.0, -2.0, 3.0, -4.0];
        assert_eq!(LinearOperator::<f64>::apply_vec(&id, &x), x);
    }

    #[test]
    #[should_panic(expected = "factored")]
    fn unfactored_gpu_solver_is_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = random_hodlr::<f64, _>(&mut rng, 32, 2, 1);
        let device = Device::new();
        let solver = GpuSolver::new(&device, &m);
        let _ = GpuPreconditioner::new(solver);
    }
}
