//! BiCGStab with right preconditioning (van der Vorst's stabilised
//! bi-conjugate gradients), the short-recurrence alternative to GMRES:
//! constant memory instead of a growing Krylov basis, at the price of a
//! less monotone residual.

use crate::operator::LinearOperator;
use crate::precond::IdentityPreconditioner;
use crate::report::IterativeSolution;
use hodlr_la::blas::{axpy_slice, dot_conj};
use hodlr_la::norms::norm2;
use hodlr_la::HodlrError;
use hodlr_la::{RealScalar, Scalar};

/// The BiCGStab method.
#[derive(Copy, Clone, Debug)]
pub struct BiCgStab {
    max_iters: usize,
    tol: f64,
}

impl Default for BiCgStab {
    fn default() -> Self {
        BiCgStab {
            max_iters: 500,
            tol: 1e-10,
        }
    }
}

impl BiCgStab {
    /// BiCGStab with the default configuration (500 iterations, relative
    /// tolerance 1e-10).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the iteration cap.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Set the relative-residual tolerance.
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Solve `A x = b` without preconditioning.
    ///
    /// # Errors
    /// Returns [`HodlrError::DimensionMismatch`] when `b` and the operator
    /// disagree.  Non-convergence is reported in the returned
    /// [`IterativeSolution`], not as an error.
    pub fn solve<T, A>(&self, a: &A, b: &[T]) -> Result<IterativeSolution<T>, HodlrError>
    where
        T: Scalar,
        A: LinearOperator<T>,
    {
        self.solve_preconditioned(a, &IdentityPreconditioner::new(b.len()), b)
    }

    /// Solve `A x = b` with `m` applying `M^{-1}` as a right
    /// preconditioner.  One iteration performs two operator and two
    /// preconditioner applications.
    /// # Errors
    /// See [`BiCgStab::solve`].
    pub fn solve_preconditioned<T, A, M>(
        &self,
        a: &A,
        m: &M,
        b: &[T],
    ) -> Result<IterativeSolution<T>, HodlrError>
    where
        T: Scalar,
        A: LinearOperator<T>,
        M: LinearOperator<T>,
    {
        let n = b.len();
        HodlrError::check_dims("bicgstab operator vs right-hand side", a.dim(), n)?;
        HodlrError::check_dims("bicgstab preconditioner vs right-hand side", m.dim(), n)?;
        if self.tol <= 0.0 || !self.tol.is_finite() {
            return Err(HodlrError::config(format!(
                "bicgstab tolerance must be positive and finite, got {:e}",
                self.tol
            )));
        }
        let bnorm = norm2(b).to_f64();
        let mut x = vec![T::zero(); n];
        let mut history = Vec::new();
        if bnorm == 0.0 {
            return Ok(IterativeSolution::zero_rhs(n));
        }

        let mut r: Vec<T> = b.to_vec();
        // Shadow residual, fixed to r0 (the standard choice).
        let r_hat = r.clone();
        let mut rho = T::one();
        let mut alpha = T::one();
        let mut omega = T::one();
        let mut v = vec![T::zero(); n];
        let mut p = vec![T::zero(); n];
        let mut iters = 0usize;
        // Live-residual convergence is handled by the breaks inside the
        // loop (at the half step and after the full update); the loop
        // itself only guards the iteration budget.
        let mut res = norm2(&r).to_f64() / bnorm;

        while res > self.tol && iters < self.max_iters {
            let rho_new = dot_conj(&r_hat, &r);
            if rho_new.abs().to_f64() == 0.0 {
                break; // Lanczos breakdown.
            }
            let beta = (rho_new * rho.recip()) * (alpha * omega.recip());
            rho = rho_new;
            // p = r + beta (p - omega v).
            for i in 0..n {
                p[i] = r[i] + beta * (p[i] - omega * v[i]);
            }
            let p_hat = m.apply_vec(&p);
            v = a.apply_vec(&p_hat);
            let denom = dot_conj(&r_hat, &v);
            if denom.abs().to_f64() == 0.0 {
                break;
            }
            alpha = rho * denom.recip();

            // s = r - alpha v; first convergence check at the half step.
            let mut s = r.clone();
            axpy_slice(-alpha, &v, &mut s);
            iters += 1;
            let s_res = norm2(&s).to_f64() / bnorm;
            if s_res <= self.tol {
                axpy_slice(alpha, &p_hat, &mut x);
                history.push(s_res);
                break;
            }

            let s_hat = m.apply_vec(&s);
            let t = a.apply_vec(&s_hat);
            let t_dot_t = dot_conj(&t, &t);
            if t_dot_t.abs().to_f64() == 0.0 {
                break; // Stagnation.
            }
            omega = dot_conj(&t, &s) * t_dot_t.recip();
            axpy_slice(alpha, &p_hat, &mut x);
            axpy_slice(omega, &s_hat, &mut x);
            r = s;
            axpy_slice(-omega, &t, &mut r);

            res = norm2(&r).to_f64() / bnorm;
            history.push(res);
            if omega.abs().to_f64() == 0.0 {
                break; // omega breakdown: cannot continue the recurrence.
            }
        }

        // Report against the true residual, not the recurrence.
        Ok(IterativeSolution::from_candidate(
            a, b, bnorm, self.tol, x, iters, history,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::SerialPreconditioner;
    use hodlr_core::matrix::random_hodlr;
    use hodlr_la::{Complex64, DenseMatrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn converges_on_a_diagonally_dominant_system() {
        let mut rng = StdRng::seed_from_u64(20);
        let a: DenseMatrix<f64> = hodlr_la::random::random_diag_dominant(&mut rng, 48);
        let x_true: Vec<f64> = (0..48).map(|i| (i as f64 * 0.17).cos()).collect();
        let b = a.matvec(&x_true);
        let out = BiCgStab::new()
            .tol(1e-12)
            .solve(&a, &b)
            .unwrap()
            .expect_converged("bicgstab");
        for (xi, ei) in out.x.iter().zip(&x_true) {
            assert!((xi - ei).abs() < 1e-8);
        }
    }

    #[test]
    fn complex_system_converges() {
        let mut rng = StdRng::seed_from_u64(21);
        let a: DenseMatrix<Complex64> = hodlr_la::random::random_diag_dominant(&mut rng, 36);
        let b: Vec<Complex64> = hodlr_la::random::random_vector(&mut rng, 36);
        let out = BiCgStab::new()
            .tol(1e-11)
            .solve(&a, &b)
            .unwrap()
            .expect_converged("complex bicgstab");
        assert!(out.relative_residual < 1e-11);
    }

    #[test]
    fn exact_preconditioner_converges_immediately() {
        let mut rng = StdRng::seed_from_u64(22);
        let matrix = random_hodlr::<f64, _>(&mut rng, 64, 2, 2);
        let b: Vec<f64> = hodlr_la::random::random_vector(&mut rng, 64);
        let precond = SerialPreconditioner::from_matrix(&matrix).unwrap();
        let out = BiCgStab::new()
            .tol(1e-10)
            .solve_preconditioned(&matrix, &precond, &b)
            .unwrap()
            .expect_converged("preconditioned bicgstab");
        assert!(out.iterations <= 2, "took {} iterations", out.iterations);
    }

    #[test]
    fn zero_rhs_is_trivial() {
        let mut rng = StdRng::seed_from_u64(23);
        let a: DenseMatrix<f64> = hodlr_la::random::random_diag_dominant(&mut rng, 8);
        let out = BiCgStab::new().solve(&a, &[0.0; 8]).unwrap();
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
    }
}
