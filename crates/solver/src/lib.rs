//! # hodlr-solver — Krylov iterative solves with HODLR preconditioning
//!
//! The paper positions the GPU HODLR factorization not only as a fast
//! direct solver but as a *robust preconditioner* for ill-conditioned
//! boundary-integral systems (Table V(b)): factorize a loose-tolerance
//! HODLR approximation once — cheap, because the off-diagonal ranks shrink
//! with the tolerance — and amortize it over heavy solve traffic.  This
//! crate is that subsystem:
//!
//! * [`LinearOperator`] — the matrix-free operator abstraction, with
//!   implementations for [`HodlrMatrix`](hodlr_core::HodlrMatrix)
//!   (`O(N log N)` apply), dense matrices, and arbitrary
//!   [`MatrixEntrySource`](hodlr_compress::MatrixEntrySource)s via
//!   [`SourceOperator`];
//! * [`Gmres`] — restarted GMRES(m) with right preconditioning, generic
//!   over real and complex [`Scalar`](hodlr_la::Scalar)s;
//! * [`BiCgStab`] — the short-recurrence alternative;
//! * [`iterative_refinement`] — preconditioned refinement sweeps;
//! * [`SerialPreconditioner`] / [`GpuPreconditioner`] — the workspace's
//!   HODLR factorizations (Algorithms 1–2 and 3–4) as `M^{-1}` operators;
//!   the GPU adapter's applications are metered by the
//!   [`Device`](hodlr_batch::Device) counters like any other batched work;
//! * [`MixedPrecisionPreconditioner`] / [`mixed_precision_solve`] —
//!   factorize the HODLR approximation in f32 (half the memory), refine to
//!   f64 accuracy, with flop accounting for both phases.
//!
//! Multi-RHS *direct* traffic goes through the blocked `solve_block`
//! entry points on [`GpuSolver`](hodlr_core::GpuSolver) and
//! [`SerialFactorization`](hodlr_core::SerialFactorization), which sweep
//! all right-hand sides through every tree level in one batched launch per
//! kernel instead of a per-RHS loop.  The Krylov methods themselves solve
//! one right-hand side per call (each RHS builds its own Krylov space);
//! their preconditioner applications still land on the batched device and
//! are metered there.
//!
//! # Threading
//!
//! The Krylov iterations in this crate are sequential — a Krylov space is
//! a serial recurrence — but every heavy operation they invoke lands on
//! the rayon work-stealing pool: the HODLR matrix-vector product's gemms,
//! the batched preconditioner applications of [`GpuPreconditioner`], and
//! the blocked multi-RHS sweeps of `solve_block`.  The pool size comes
//! from `HODLR_NUM_THREADS`; iteration counts, residuals, and the metered
//! [`Device`](hodlr_batch::Device) counters are identical at every thread
//! count because each parallel task computes into its own output slot in a
//! fixed order.
//!
//! ```
//! use hodlr_batch::Device;
//! use hodlr_core::matrix::random_hodlr;
//! use hodlr_solver::{Gmres, GpuPreconditioner};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let matrix = random_hodlr::<f64, _>(&mut rng, 128, 3, 2);
//! let b = vec![1.0; 128];
//!
//! let device = Device::new();
//! let precond = GpuPreconditioner::from_matrix(&device, &matrix).unwrap();
//! let out = Gmres::new()
//!     .tol(1e-10)
//!     .solve_preconditioned(&matrix, &precond, &b)
//!     .unwrap();
//! assert!(out.converged);
//! ```

pub mod bicgstab;
pub mod gmres;
pub mod mixed;
pub mod operator;
pub mod precond;
pub mod refine;
pub mod report;

pub use bicgstab::BiCgStab;
pub use gmres::Gmres;
pub use mixed::{
    demote_hodlr, mixed_precision_solve, DemoteScalar, MixedPrecisionGpuPreconditioner,
    MixedPrecisionPreconditioner, MixedPrecisionSolve,
};
pub use operator::{LinearOperator, SourceOperator};
pub use precond::{GpuPreconditioner, IdentityPreconditioner, SerialPreconditioner};
pub use refine::{iterative_refinement, RefinementOptions};
pub use report::IterativeSolution;
