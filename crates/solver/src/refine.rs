//! Preconditioned iterative refinement: the simplest way to turn an
//! approximate factorization into full-accuracy solves,
//! `x_{k+1} = x_k + M^{-1} (b - A x_k)`.
//!
//! Converges whenever `||I - A M^{-1}|| < 1`, i.e. whenever the HODLR
//! approximation behind `M` is accurate enough; the contraction factor is
//! the approximation error, so a 1e-3 preconditioner gains roughly three
//! digits per sweep.  This is also the outer loop of the mixed-precision
//! path (see [`crate::mixed`]).

use crate::operator::LinearOperator;
use crate::report::IterativeSolution;
use hodlr_la::norms::norm2;
use hodlr_la::{HodlrError, RealScalar, Scalar};

/// Configuration for [`iterative_refinement`].
#[derive(Copy, Clone, Debug)]
pub struct RefinementOptions {
    /// Relative-residual target.
    pub tol: f64,
    /// Sweep cap.
    pub max_iters: usize,
}

impl Default for RefinementOptions {
    fn default() -> Self {
        RefinementOptions {
            tol: 1e-12,
            max_iters: 50,
        }
    }
}

/// Solve `A x = b` by refinement sweeps with `m` applying `M^{-1}`.
///
/// Each iteration costs one operator and one preconditioner application.
///
/// # Errors
/// Returns [`HodlrError::DimensionMismatch`] when the operator, the
/// preconditioner and `b` disagree on their dimension.  Non-convergence is
/// reported in the returned [`IterativeSolution`], not as an error.
pub fn iterative_refinement<T, A, M>(
    a: &A,
    m: &M,
    b: &[T],
    options: RefinementOptions,
) -> Result<IterativeSolution<T>, HodlrError>
where
    T: Scalar,
    A: LinearOperator<T>,
    M: LinearOperator<T>,
{
    let n = b.len();
    HodlrError::check_dims("refinement operator vs right-hand side", a.dim(), n)?;
    HodlrError::check_dims("refinement preconditioner vs right-hand side", m.dim(), n)?;
    let bnorm = norm2(b).to_f64();
    let mut x = vec![T::zero(); n];
    let mut history = Vec::new();
    if bnorm == 0.0 {
        return Ok(IterativeSolution::zero_rhs(n));
    }

    let mut iters = 0usize;
    let mut relative_residual = 1.0;
    // Best iterate seen so far, so a correction that made things worse (a
    // non-contracting preconditioner) is rolled back instead of returned.
    let mut best_x = x.clone();
    let mut best_res = f64::INFINITY;
    while iters < options.max_iters {
        let ax = a.apply_vec(&x);
        let r: Vec<T> = b.iter().zip(&ax).map(|(&bi, &ai)| bi - ai).collect();
        let res = norm2(&r).to_f64() / bnorm;
        relative_residual = res;
        if res < best_res {
            best_res = res;
            best_x.copy_from_slice(&x);
        }
        if res <= options.tol {
            break;
        }
        // Stop when the residual stopped improving at all (approximation
        // error of M too large to gain further digits, or a
        // non-contracting preconditioner).  Slow but genuine contraction
        // is left to run against the iteration cap.
        if let Some(&prev) = history.last() {
            if res >= prev {
                break;
            }
        }
        history.push(res);
        let correction = m.apply_vec(&r);
        for (xi, ci) in x.iter_mut().zip(&correction) {
            *xi += *ci;
        }
        iters += 1;
    }

    // `best_x` lags `x` by one correction when the loop exited on the
    // iteration cap; its residual is the last one actually measured.
    relative_residual = relative_residual.min(best_res);
    Ok(IterativeSolution {
        x: best_x,
        iterations: iters,
        converged: relative_residual <= options.tol,
        relative_residual,
        residual_history: history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::SerialPreconditioner;
    use hodlr_core::matrix::random_hodlr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_preconditioner_converges_in_one_sweep() {
        let mut rng = StdRng::seed_from_u64(30);
        let matrix = random_hodlr::<f64, _>(&mut rng, 64, 2, 2);
        let b: Vec<f64> = hodlr_la::random::random_vector(&mut rng, 64);
        let m = SerialPreconditioner::from_matrix(&matrix).unwrap();
        let out = iterative_refinement(&matrix, &m, &b, RefinementOptions::default()).unwrap();
        assert!(out.converged, "relres {}", out.relative_residual);
        assert!(out.iterations <= 2);
    }

    #[test]
    fn stalls_gracefully_when_the_preconditioner_does_not_contract() {
        use crate::operator::LinearOperator;
        use hodlr_la::DenseMatrix;

        // M^{-1} = -2 I against A = I: the iteration matrix I - A M^{-1} =
        // 3 I expands the residual, so refinement must stop early instead
        // of burning its full iteration budget.
        struct Expanding(usize);
        impl LinearOperator<f64> for Expanding {
            fn dim(&self) -> usize {
                self.0
            }
            fn apply(&self, x: &[f64], y: &mut [f64]) {
                for (yi, &xi) in y.iter_mut().zip(x) {
                    *yi = -2.0 * xi;
                }
            }
        }

        let a = DenseMatrix::<f64>::identity(16);
        let b = vec![1.0; 16];
        let out = iterative_refinement(
            &a,
            &Expanding(16),
            &b,
            RefinementOptions {
                tol: 1e-12,
                max_iters: 50,
            },
        )
        .unwrap();
        assert!(!out.converged);
        assert!(out.iterations < 5, "stall detection did not trigger");
        // The harmful correction is rolled back: the returned iterate is the
        // best one measured (here the zero initial guess, residual 1).
        assert!(out.relative_residual <= 1.0 + 1e-12);
        assert!(out.x.iter().all(|&v| v == 0.0));
    }
}
