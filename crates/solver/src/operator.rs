//! The [`LinearOperator`] abstraction every Krylov method is written
//! against.
//!
//! An operator only needs to apply `y = A x`; the HODLR matrix applies in
//! `O(N log N)`, a dense baseline in `O(N^2)`, and a matrix-free kernel
//! source in `O(N^2)` entry evaluations without ever materialising the
//! matrix.  Preconditioners are the same trait applied to `M^{-1}` — see
//! [`crate::precond`].

use hodlr_compress::MatrixEntrySource;
use hodlr_core::HodlrMatrix;
use hodlr_la::{gemv, DenseMatrix, Op, Scalar};

/// A square linear operator `A: C^n -> C^n` (or real), applied without
/// exposing its representation.
pub trait LinearOperator<T: Scalar> {
    /// The dimension `n` of the (square) operator.
    fn dim(&self) -> usize;

    /// `y = A x`.
    ///
    /// # Panics
    /// Implementations panic when `x` or `y` have length != `dim()`.
    fn apply(&self, x: &[T], y: &mut [T]);

    /// `A x` into a fresh vector.
    fn apply_vec(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::zero(); self.dim()];
        self.apply(x, &mut y);
        y
    }

    /// `Y = A X` for a block of vectors.  The default loops over columns;
    /// implementations with a faster blocked path (one gemm sweep, one
    /// batched launch) override it.
    fn apply_to_block(&self, x: &DenseMatrix<T>) -> DenseMatrix<T> {
        assert_eq!(x.rows(), self.dim(), "block has the wrong row count");
        let mut y = DenseMatrix::zeros(self.dim(), x.cols());
        for j in 0..x.cols() {
            self.apply(x.col(j), y.col_mut(j));
        }
        y
    }
}

impl<T: Scalar, A: LinearOperator<T> + ?Sized> LinearOperator<T> for &A {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn apply(&self, x: &[T], y: &mut [T]) {
        (**self).apply(x, y)
    }
    fn apply_to_block(&self, x: &DenseMatrix<T>) -> DenseMatrix<T> {
        (**self).apply_to_block(x)
    }
}

impl<T: Scalar> LinearOperator<T> for HodlrMatrix<T> {
    fn dim(&self) -> usize {
        self.n()
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        self.matvec_into(x, y);
    }

    fn apply_to_block(&self, x: &DenseMatrix<T>) -> DenseMatrix<T> {
        self.matmat(x)
    }
}

impl<T: Scalar> LinearOperator<T> for DenseMatrix<T> {
    fn dim(&self) -> usize {
        assert_eq!(self.rows(), self.cols(), "operator matrices are square");
        self.rows()
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        gemv(T::one(), self.as_ref(), Op::None, x, T::zero(), y);
    }

    fn apply_to_block(&self, x: &DenseMatrix<T>) -> DenseMatrix<T> {
        self.matmul(x)
    }
}

/// Matrix-free operator over any [`MatrixEntrySource`] — in particular the
/// kernel [`BlockSource`](hodlr_core::BlockSource)s the HODLR builder
/// compresses from.  Applies in `O(n^2)` entry evaluations; the honest
/// baseline the HODLR-accelerated apply is measured against.
pub struct SourceOperator<'a, T: Scalar, S: MatrixEntrySource<T> + ?Sized> {
    source: &'a S,
    _marker: std::marker::PhantomData<T>,
}

impl<'a, T: Scalar, S: MatrixEntrySource<T> + ?Sized> SourceOperator<'a, T, S> {
    /// Wrap a square entry source.
    ///
    /// # Panics
    /// Panics if the source is not square.
    pub fn new(source: &'a S) -> Self {
        assert_eq!(
            source.nrows(),
            source.ncols(),
            "operator sources are square"
        );
        SourceOperator {
            source,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Scalar, S: MatrixEntrySource<T> + ?Sized> LinearOperator<T> for SourceOperator<'_, T, S> {
    fn dim(&self) -> usize {
        self.source.nrows()
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        let n = self.dim();
        assert_eq!(x.len(), n, "apply: x has the wrong length");
        assert_eq!(y.len(), n, "apply: y has the wrong length");
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = T::zero();
            for (j, &xj) in x.iter().enumerate() {
                acc += self.source.entry(i, j) * xj;
            }
            *yi = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr_compress::ClosureSource;
    use hodlr_core::matrix::random_hodlr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hodlr_and_dense_operators_agree() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = random_hodlr::<f64, _>(&mut rng, 48, 2, 3);
        let dense = m.to_dense();
        let x: Vec<f64> = (0..48).map(|i| (i as f64 * 0.3).sin()).collect();
        let y_h = m.apply_vec(&x);
        let y_d = dense.apply_vec(&x);
        for (a, b) in y_h.iter().zip(&y_d) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn source_operator_matches_dense_apply() {
        let src = ClosureSource::new(20, 20, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let op = SourceOperator::new(&src);
        assert_eq!(op.dim(), 20);
        let dense = src.to_dense();
        let x: Vec<f64> = (0..20).map(|i| i as f64 - 10.0).collect();
        let y_s = op.apply_vec(&x);
        let y_d = dense.apply_vec(&x);
        for (a, b) in y_s.iter().zip(&y_d) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn block_apply_matches_column_apply() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = random_hodlr::<f64, _>(&mut rng, 32, 2, 2);
        let x = hodlr_la::random::random_matrix(&mut rng, 32, 4);
        let y = m.apply_to_block(&x);
        for j in 0..4 {
            let yj = m.apply_vec(x.col(j));
            for i in 0..32 {
                assert!((y[(i, j)] - yj[i]).abs() < 1e-12);
            }
        }
    }
}
