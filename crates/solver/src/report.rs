//! The solution-plus-convergence-report type shared by every iterative
//! method in this crate.

use crate::operator::LinearOperator;
use hodlr_la::norms::norm2;
use hodlr_la::{RealScalar, Scalar};

/// The outcome of an iterative solve.
#[derive(Clone, Debug)]
pub struct IterativeSolution<T: Scalar> {
    /// The computed solution.
    pub x: Vec<T>,
    /// Operator applications consumed (one per Krylov iteration; BiCGStab
    /// counts its two applications per step as one iteration, as usual).
    pub iterations: usize,
    /// Whether the requested tolerance was reached within the iteration cap.
    pub converged: bool,
    /// Final relative residual `||b - A x|| / ||b||` of the *original*
    /// (unpreconditioned) system.
    pub relative_residual: f64,
    /// Relative residual after every iteration, for convergence plots and
    /// iteration-count tables.
    pub residual_history: Vec<f64>,
}

impl<T: Scalar> IterativeSolution<T> {
    /// Panic with `context` unless the solve converged; returns the
    /// solution otherwise.  Convenience for examples and tests.
    pub fn expect_converged(self, context: &str) -> Self {
        assert!(
            self.converged,
            "{context}: no convergence in {} iterations (relres {:.3e})",
            self.iterations, self.relative_residual
        );
        self
    }

    /// Assemble the report from a candidate solution, judging convergence
    /// against the *true* residual `||b - A x|| / ||b||` (never the
    /// method's recurrence).  Shared by every method in the crate.
    pub(crate) fn from_candidate<A: LinearOperator<T>>(
        a: &A,
        b: &[T],
        bnorm: f64,
        tol: f64,
        x: Vec<T>,
        iterations: usize,
        residual_history: Vec<f64>,
    ) -> Self {
        let ax = a.apply_vec(&x);
        let r: Vec<T> = b.iter().zip(&ax).map(|(&bi, &ai)| bi - ai).collect();
        let relative_residual = norm2(&r).to_f64() / bnorm;
        IterativeSolution {
            x,
            iterations,
            converged: relative_residual <= tol,
            relative_residual,
            residual_history,
        }
    }

    /// The trivial report for a zero right-hand side.
    pub(crate) fn zero_rhs(n: usize) -> Self {
        IterativeSolution {
            x: vec![T::zero(); n],
            iterations: 0,
            converged: true,
            relative_residual: 0.0,
            residual_history: Vec::new(),
        }
    }
}
