//! Mixed precision: factorize the HODLR approximation in the *lower*
//! precision (half the memory, half the flop width — the regime the
//! paper's Table IV(b) single-precision runs target), then recover
//! full-precision accuracy by iterative refinement in the working
//! precision.  The factorization error of an f32 factorization is ~1e-7,
//! so refinement gains ~7 digits per sweep and reaches 1e-12 in two or
//! three sweeps.

use crate::operator::LinearOperator;
use crate::refine::{iterative_refinement, RefinementOptions};
use crate::report::IterativeSolution;
use hodlr_batch::Device;
use hodlr_core::{ComplexityReport, GpuSolver, HodlrMatrix, SerialFactorization};
use hodlr_la::{HodlrError, Scalar};
// The demotion vocabulary lives in `hodlr-la` (the bottom of the
// dependency graph) so the compact-storage build path in `hodlr-core` can
// share it; re-exported here for backwards compatibility.
pub use hodlr_la::{demote_dense, DemoteScalar};

/// Round every stored entry of a HODLR matrix to the lower precision,
/// preserving the tree, layout and rank bookkeeping.
pub fn demote_hodlr<T: DemoteScalar>(matrix: &HodlrMatrix<T>) -> HodlrMatrix<T::Lower> {
    let tree = matrix.tree().clone();
    let node_ranks = (0..=tree.num_nodes())
        .map(|id| matrix.node_rank(id))
        .collect();
    HodlrMatrix::from_parts(
        tree,
        matrix.layout().clone(),
        node_ranks,
        demote_dense(matrix.ubig()),
        demote_dense(matrix.vbig()),
        matrix.diag_blocks().iter().map(demote_dense).collect(),
    )
    .expect("demotion preserves the shapes of every part")
}

/// A lower-precision serial HODLR factorization applying `M^{-1}` in the
/// working precision: residuals are demoted, solved, and the correction
/// promoted back.
pub struct MixedPrecisionPreconditioner<T: DemoteScalar> {
    factor: SerialFactorization<T::Lower>,
    /// Analytic flop model of the factorized matrix, for reporting.
    report: ComplexityReport,
    n: usize,
}

impl<T: DemoteScalar> MixedPrecisionPreconditioner<T> {
    /// Demote `matrix` and factorize it in the lower precision.
    ///
    /// # Errors
    /// Propagates singular blocks from the lower-precision factorization.
    pub fn factorize(matrix: &HodlrMatrix<T>) -> Result<Self, HodlrError> {
        let demoted = demote_hodlr(matrix);
        let report = ComplexityReport::for_matrix(&demoted);
        let factor = demoted.factorize_serial()?;
        Ok(MixedPrecisionPreconditioner {
            factor,
            report,
            n: matrix.n(),
        })
    }

    /// The analytic cost model of the lower-precision factorization
    /// (factorization and per-solve flops).
    pub fn complexity(&self) -> &ComplexityReport {
        &self.report
    }

    /// The wrapped lower-precision factorization.
    pub fn factor(&self) -> &SerialFactorization<T::Lower> {
        &self.factor
    }
}

impl<T: DemoteScalar> LinearOperator<T> for MixedPrecisionPreconditioner<T> {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.n, "apply: x has the wrong length");
        assert_eq!(y.len(), self.n, "apply: y has the wrong length");
        let demoted: Vec<T::Lower> = x.iter().map(|&v| v.demote()).collect();
        let solved = self.factor.solve(&demoted);
        for (yi, lo) in y.iter_mut().zip(solved) {
            *yi = T::promote(lo);
        }
    }
}

/// The batched counterpart of [`MixedPrecisionPreconditioner`]: demote the
/// HODLR approximation and factorize it on the virtual batched device
/// (Algorithms 3–4 in the lower precision), applying `M^{-1}` in the
/// working precision.
///
/// Unlike the host-serial variant, every refinement sweep's
/// lower-precision solve is a metered launch sequence on the
/// [`Device`], so mixed-precision rows in the scenario benchmarks carry
/// the same real launch/flop accounting as the direct batched rows — this
/// is also the regime the paper's single-precision GPU runs (Table IV(b))
/// actually operate in.
pub struct MixedPrecisionGpuPreconditioner<'d, T: DemoteScalar> {
    solver: GpuSolver<'d, T::Lower>,
    /// Analytic flop model of the demoted matrix, for reporting.
    report: ComplexityReport,
    n: usize,
}

impl<'d, T: DemoteScalar> MixedPrecisionGpuPreconditioner<'d, T> {
    /// Demote `matrix`, upload it to `device`, and factorize it there in
    /// the lower precision.
    ///
    /// # Errors
    /// Propagates singular batch entries from the lower-precision
    /// factorization.
    pub fn factorize(device: &'d Device, matrix: &HodlrMatrix<T>) -> Result<Self, HodlrError> {
        let demoted = demote_hodlr(matrix);
        let report = ComplexityReport::for_matrix(&demoted);
        let mut solver = GpuSolver::new(device, &demoted);
        solver.factorize()?;
        Ok(MixedPrecisionGpuPreconditioner {
            solver,
            report,
            n: matrix.n(),
        })
    }

    /// The analytic cost model of the lower-precision factorization.
    pub fn complexity(&self) -> &ComplexityReport {
        &self.report
    }

    /// The wrapped lower-precision batched solver.
    pub fn solver(&self) -> &GpuSolver<'d, T::Lower> {
        &self.solver
    }
}

impl<T: DemoteScalar> LinearOperator<T> for MixedPrecisionGpuPreconditioner<'_, T> {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.n, "apply: x has the wrong length");
        assert_eq!(y.len(), self.n, "apply: y has the wrong length");
        let demoted: Vec<T::Lower> = x.iter().map(|&v| v.demote()).collect();
        let solved = self
            .solver
            .solve(&demoted)
            .expect("preconditioner is factored and dimensions agree by construction");
        for (yi, lo) in y.iter_mut().zip(solved) {
            *yi = T::promote(lo);
        }
    }
}

/// The outcome of a mixed-precision solve: the refined solution plus the
/// flop accounting of the lower-precision factorization it leaned on.
#[derive(Clone, Debug)]
pub struct MixedPrecisionSolve<T: Scalar> {
    /// Solution and refinement convergence report.
    pub solution: IterativeSolution<T>,
    /// Flops of the one-time lower-precision factorization (analytic
    /// model, Theorem 3).
    pub factorization_flops: u64,
    /// Flops spent in refinement: per sweep one lower-precision solve
    /// (Theorem 4) plus one working-precision HODLR apply.
    pub refinement_flops: u64,
}

/// Factorize-low / refine-high in one call: solve `A x = b` to `tol` using
/// a lower-precision factorization of `matrix` (usually `matrix` is the
/// HODLR approximation of `A` itself, and `A` is either the same matrix or
/// the exact operator).
///
/// # Errors
/// Propagates singular blocks from the lower-precision factorization.
pub fn mixed_precision_solve<T, A>(
    a: &A,
    matrix: &HodlrMatrix<T>,
    b: &[T],
    options: RefinementOptions,
) -> Result<MixedPrecisionSolve<T>, HodlrError>
where
    T: DemoteScalar,
    A: LinearOperator<T>,
{
    let precond = MixedPrecisionPreconditioner::factorize(matrix)?;
    let solution = iterative_refinement(a, &precond, b, options)?;
    let model = precond.complexity();
    // Each sweep: one lower-precision HODLR solve plus one apply of A,
    // approximated by two flops per stored entry of the HODLR operand.
    let apply_flops = 2 * matrix.storage_entries() as u64;
    let refinement_flops = solution.iterations as u64 * (model.solve_flops + apply_flops);
    Ok(MixedPrecisionSolve {
        solution,
        factorization_flops: model.factorization_flops,
        refinement_flops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hodlr_core::matrix::random_hodlr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn demoted_matrix_halves_storage_and_stays_close() {
        let mut rng = StdRng::seed_from_u64(40);
        let m = random_hodlr::<f64, _>(&mut rng, 64, 2, 2);
        let lo = demote_hodlr(&m);
        assert_eq!(lo.storage_bytes() * 2, m.storage_bytes());
        let x: Vec<f32> = (0..64).map(|i| (i as f64 * 0.2).sin() as f32).collect();
        let x64: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let y_lo = lo.matvec(&x);
        let y_hi = m.matvec(&x64);
        for (a, b) in y_lo.iter().zip(&y_hi) {
            // f32 arithmetic against f64 arithmetic on O(100)-sized sums.
            assert!((*a as f64 - b).abs() < 1e-2 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn refinement_reaches_double_precision_from_a_single_precision_factorization() {
        let mut rng = StdRng::seed_from_u64(41);
        let m = random_hodlr::<f64, _>(&mut rng, 128, 3, 2);
        let b: Vec<f64> = hodlr_la::random::random_vector(&mut rng, 128);
        let out = mixed_precision_solve(
            &m,
            &m,
            &b,
            RefinementOptions {
                tol: 1e-12,
                max_iters: 20,
            },
        )
        .unwrap();
        assert!(
            out.solution.converged,
            "relres {}",
            out.solution.relative_residual
        );
        assert!(out.solution.relative_residual <= 1e-12);
        // Few sweeps: each gains the ~7 digits of the f32 factorization.
        assert!(
            out.solution.iterations <= 6,
            "{} sweeps",
            out.solution.iterations
        );
        assert!(out.factorization_flops > 0);
        assert!(out.refinement_flops > 0);
    }

    #[test]
    fn complex_mixed_precision_works() {
        use hodlr_la::Complex64;
        let mut rng = StdRng::seed_from_u64(42);
        let m = random_hodlr::<Complex64, _>(&mut rng, 64, 2, 2);
        let b: Vec<Complex64> = hodlr_la::random::random_vector(&mut rng, 64);
        let out = mixed_precision_solve(
            &m,
            &m,
            &b,
            RefinementOptions {
                tol: 1e-11,
                max_iters: 20,
            },
        )
        .unwrap();
        assert!(
            out.solution.converged,
            "relres {}",
            out.solution.relative_residual
        );
    }
}
