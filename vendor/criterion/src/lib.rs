//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the bench targets use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId::new`], [`black_box`] and the `criterion_group!` /
//! `criterion_main!` macros — as a plain wall-clock harness: each benchmark
//! is warmed up once, timed for `sample_size` iterations, and reported as
//! mean time per iteration on stdout.  No statistics, plots or baselines;
//! the workspace's quantitative claims are made by the `hodlr-bench`
//! binaries, not by these micro-benchmarks.

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Opaque value barrier, re-exported like criterion's `black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The benchmark driver handed to every `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }
}

/// A named benchmark identifier (`function_name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed_secs: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Run one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed_secs: 0.0,
            iters: 0,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Finish the group (prints a terminating line, like criterion's report).
    pub fn finish(&mut self) {
        println!("group {} done", self.name);
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    elapsed_secs: f64,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, called once for warmup and `sample_size` times for
    /// measurement.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed_secs = start.elapsed().as_secs_f64();
        self.iters = self.samples as u64;
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters == 0 {
            println!("  {group}/{id}: no samples");
            return;
        }
        let mean = self.elapsed_secs / self.iters as f64;
        println!("  {group}/{id}: {:.3e} s/iter ({} iters)", mean, self.iters);
    }
}

/// Mirror of `criterion_group!`: builds a function running all listed
/// benchmarks against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`: the `main` for a `harness = false` bench.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut count = 0u32;
        group.bench_function("counting", |b| b.iter(|| count += 1));
        // One warmup + three samples.
        assert_eq!(count, 4);
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
