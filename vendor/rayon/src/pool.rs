//! The work-stealing execution engine behind [`join`](crate::join) and the
//! parallel iterators.
//!
//! # Architecture
//!
//! A [`Registry`] owns `num_threads - 1` worker threads (the thread that
//! submits work is always the `num_threads`-th participant).  Each worker
//! owns a double-ended job queue; work it pushes itself is popped LIFO from
//! the back (cache-warm, depth-first), while other workers *steal* FIFO from
//! the front (breadth-first, the classic work-stealing discipline).  Threads
//! that are not workers submit through a shared injector queue.
//!
//! Two kinds of jobs exist:
//!
//! * [`IndexedBatch`] — a parallel loop over `0..len`, split into chunks
//!   whose size depends **only on `len`** (never on the thread count), so
//!   that order-sensitive reductions built on top of it are bitwise
//!   deterministic at every thread count.  The batch is driven by an atomic
//!   claim counter: every participating thread (the submitter plus any
//!   worker that picked the batch up) grabs the next unclaimed chunk until
//!   none remain, which load-balances without per-chunk allocations.
//! * [`JoinJob`] — the second arm of a `join`, claimed either by a thief or
//!   by the submitting thread itself when it finishes the first arm first.
//!
//! # Blocking and deadlock freedom
//!
//! A thread that waits for a batch or a join arm never sleeps: it first
//! claims chunks of its own batch, then *helps* — pops or steals unrelated
//! jobs and executes them — and only yields when every queue is empty.
//! Because a blocked thread can always execute the work it is waiting for
//! (or the work that work is waiting for, recursively), nested parallelism
//! cannot deadlock.
//!
//! # Panic propagation
//!
//! Panics inside a chunk or a join arm are caught on the executing thread,
//! stored, and re-thrown on the submitting thread once the whole batch has
//! completed (the remaining chunks still run, so buffers shared with the
//! batch are never left with outstanding writers).
//!
//! # Safety
//!
//! Jobs are reference-counted ([`Arc`]) and type-erased into [`JobRef`]s.
//! A job may be executed *stale* — popped from a queue after its batch has
//! logically completed — in which case it must not touch borrowed caller
//! state.  `IndexedBatch` guarantees this by re-checking the claim counter
//! (a completed batch has no unclaimed chunks, and the borrowed `body` is
//! only reachable through a successful claim); `JoinJob` by an atomic
//! state machine whose closure slot is emptied by whichever side wins the
//! claim.  The submitting thread never returns before every chunk / the
//! join arm has finished executing, so borrowed state outlives every access.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Job representation
// ---------------------------------------------------------------------------

/// A unit of schedulable work.  `run` must tolerate being called at any time
/// between enqueue and pool shutdown, including after the logical completion
/// of the operation it belongs to (see the module docs on stale execution).
trait Job: Send + Sync {
    fn run(&self);
}

/// A type-erased, reference-counted job pointer (an `Arc<J>` turned into a
/// raw pointer plus a monomorphized trampoline).  Executing it reconstitutes
/// and consumes the `Arc`.
pub(crate) struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: the pointee is an `Arc<J>` with `J: Job` (`Send + Sync`).
unsafe impl Send for JobRef {}

impl JobRef {
    fn new<J: Job>(job: Arc<J>) -> JobRef {
        JobRef {
            data: Arc::into_raw(job) as *const (),
            execute_fn: execute_job::<J>,
        }
    }

    fn execute(self) {
        // SAFETY: `data`/`execute_fn` were paired by `new`.
        unsafe { (self.execute_fn)(self.data) }
    }
}

unsafe fn execute_job<J: Job>(data: *const ()) {
    // SAFETY: reverses the `Arc::into_raw` in `JobRef::new`; called once.
    let job = unsafe { Arc::from_raw(data as *const J) };
    job.run();
}

// ---------------------------------------------------------------------------
// Registry: worker threads, queues, sleeping
// ---------------------------------------------------------------------------

/// One worker's double-ended job queue.
struct WorkerQueue {
    jobs: Mutex<VecDeque<JobRef>>,
}

/// Wake/sleep coordination: a generation counter bumped on every job push
/// (so a worker that finds all queues empty can re-check that nothing
/// arrived between its scan and its decision to sleep) plus the shutdown
/// flag consulted by the worker loop.
struct Sleep {
    state: Mutex<SleepState>,
    condvar: Condvar,
}

struct SleepState {
    generation: u64,
    shutdown: bool,
}

/// The shared state of one thread pool: worker queues, the injector used by
/// non-worker threads, and the sleep machinery.
pub(crate) struct Registry {
    workers: Vec<WorkerQueue>,
    injector: Mutex<VecDeque<JobRef>>,
    sleep: Sleep,
    /// Configured parallelism, *including* the submitting thread; the pool
    /// spawns `num_threads - 1` workers.
    num_threads: usize,
}

thread_local! {
    /// Stack of (registry, worker index) contexts for the current thread.
    /// Workers push their own registry permanently; `ThreadPool::install`
    /// pushes a temporary entry.  Empty means "use the global pool".
    static CURRENT: std::cell::RefCell<Vec<(Arc<Registry>, Option<usize>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
static GLOBAL_HANDLES: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());

/// Parse a thread-count environment value: positive integers pass through,
/// anything else (absent, empty, junk, zero) yields `None`.
pub(crate) fn parse_thread_env(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The default thread count of the global pool: `HODLR_NUM_THREADS`, then
/// `RAYON_NUM_THREADS`, then the machine's logical parallelism.
pub(crate) fn default_num_threads() -> usize {
    parse_thread_env(std::env::var("HODLR_NUM_THREADS").ok().as_deref())
        .or_else(|| parse_thread_env(std::env::var("RAYON_NUM_THREADS").ok().as_deref()))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .clamp(1, MAX_THREADS)
}

/// Hard cap on configured parallelism, guarding against absurd env values.
const MAX_THREADS: usize = 1024;

/// The registry the current thread submits to: the innermost installed pool
/// (or the worker's own pool), else the lazily created global pool.
pub(crate) fn current_registry() -> Arc<Registry> {
    CURRENT
        .with(|c| c.borrow().last().map(|(r, _)| r.clone()))
        .unwrap_or_else(global_registry)
}

/// The global pool, created on first use with [`default_num_threads`] (or
/// earlier by `ThreadPoolBuilder::build_global`).
pub(crate) fn global_registry() -> Arc<Registry> {
    GLOBAL
        .get_or_init(|| {
            let (registry, handles) = Registry::new(default_num_threads());
            GLOBAL_HANDLES.lock().unwrap().extend(handles);
            registry
        })
        .clone()
}

/// Install the global registry explicitly; fails if it already exists.
pub(crate) fn set_global_registry(num_threads: usize) -> Result<(), ()> {
    let mut installed = false;
    GLOBAL.get_or_init(|| {
        installed = true;
        let (registry, handles) = Registry::new(num_threads);
        GLOBAL_HANDLES.lock().unwrap().extend(handles);
        registry
    });
    if installed {
        Ok(())
    } else {
        Err(())
    }
}

/// If the current thread is a worker of `registry`, its worker index.
fn current_worker_index(registry: &Arc<Registry>) -> Option<usize> {
    CURRENT.with(|c| {
        c.borrow().last().and_then(
            |(r, idx)| {
                if Arc::ptr_eq(r, registry) {
                    *idx
                } else {
                    None
                }
            },
        )
    })
}

impl Registry {
    /// Create a registry with `num_threads` logical participants, spawning
    /// `num_threads - 1` OS worker threads.
    pub(crate) fn new(num_threads: usize) -> (Arc<Registry>, Vec<std::thread::JoinHandle<()>>) {
        let num_threads = num_threads.clamp(1, MAX_THREADS);
        let workers = (0..num_threads.saturating_sub(1))
            .map(|_| WorkerQueue {
                jobs: Mutex::new(VecDeque::new()),
            })
            .collect();
        let registry = Arc::new(Registry {
            workers,
            injector: Mutex::new(VecDeque::new()),
            sleep: Sleep {
                state: Mutex::new(SleepState {
                    generation: 0,
                    shutdown: false,
                }),
                condvar: Condvar::new(),
            },
            num_threads,
        });
        let handles = (0..registry.workers.len())
            .map(|index| {
                let registry = registry.clone();
                std::thread::Builder::new()
                    .name(format!("hodlr-worker-{index}"))
                    .spawn(move || worker_loop(registry, index))
                    .expect("failed to spawn pool worker thread")
            })
            .collect();
        (registry, handles)
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Enqueue a job: onto the current worker's own queue when submitting
    /// from inside this pool (stealable LIFO locality), else the injector.
    /// One job became available, so one sleeper is woken — waking the whole
    /// pool per push would stampede the queue mutexes on join-heavy paths.
    fn push_job(self: &Arc<Self>, job: JobRef) {
        match current_worker_index(self) {
            Some(idx) => self.workers[idx].jobs.lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        self.bump_generation();
        self.sleep.condvar.notify_one();
    }

    /// Record an event (job pushed / batch completed) so that threads about
    /// to sleep re-scan instead; see [`Registry::sleep_unless_event`].
    fn bump_generation(&self) {
        let mut state = self.sleep.state.lock().unwrap();
        state.generation = state.generation.wrapping_add(1);
    }

    /// Wake *every* sleeping thread: used when a batch or join arm
    /// completes (several threads may be blocked on that one event).
    pub(crate) fn notify_all(&self) {
        self.bump_generation();
        self.sleep.condvar.notify_all();
    }

    /// Current event generation; pass to [`Registry::sleep_unless_event`].
    fn generation(&self) -> u64 {
        self.sleep.state.lock().unwrap().generation
    }

    /// Whether [`Registry::terminate`] has been called.
    fn is_shutdown(&self) -> bool {
        self.sleep.state.lock().unwrap().shutdown
    }

    /// Sleep until the next event, unless one happened since `snapshot` was
    /// taken (then return immediately).  Every event — job push, batch or
    /// join-arm completion, shutdown — bumps the generation under the same
    /// lock before signalling, so the snapshot re-check makes a lost wakeup
    /// impossible and the wait needs no timeout; spurious wake-ups are
    /// harmless because every caller loops on its own completion condition.
    fn sleep_unless_event(&self, snapshot: u64) {
        let guard = self.sleep.state.lock().unwrap();
        if guard.shutdown || guard.generation != snapshot {
            return;
        }
        let _unused = self.sleep.condvar.wait(guard).unwrap();
    }

    /// Find a job from worker `idx`'s perspective: own queue LIFO, then the
    /// injector, then steal FIFO from the other workers.
    fn find_job(&self, idx: usize) -> Option<JobRef> {
        if let Some(job) = self.workers[idx].jobs.lock().unwrap().pop_back() {
            return Some(job);
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        let w = self.workers.len();
        for k in 1..w {
            let victim = (idx + k) % w;
            if let Some(job) = self.workers[victim].jobs.lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Find a job from a non-worker thread's perspective (the submitting
    /// thread helping while it waits): injector first, then steal.
    fn find_job_external(&self) -> Option<JobRef> {
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        for worker in &self.workers {
            if let Some(job) = worker.jobs.lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Execute one queued job on the calling thread, if any is available.
    /// Used by waiting threads so that blocking always makes progress.
    fn help_one(self: &Arc<Self>) -> bool {
        let job = match current_worker_index(self) {
            Some(idx) => self.find_job(idx),
            None => self.find_job_external(),
        };
        match job {
            Some(job) => {
                job.execute();
                true
            }
            None => false,
        }
    }

    /// Signal shutdown; workers drain their queues and exit.
    pub(crate) fn terminate(&self) {
        self.sleep.state.lock().unwrap().shutdown = true;
        self.sleep.condvar.notify_all();
    }
}

/// `ThreadPool::install` support: run `op` with `registry` as the current
/// thread's submission target, restoring the previous target afterwards
/// (also on panic).
pub(crate) fn with_registry<R>(registry: &Arc<Registry>, op: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            CURRENT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
    CURRENT.with(|c| c.borrow_mut().push((registry.clone(), None)));
    let _guard = Guard;
    op()
}

fn worker_loop(registry: Arc<Registry>, index: usize) {
    CURRENT.with(|c| c.borrow_mut().push((registry.clone(), Some(index))));
    loop {
        // Snapshot the generation *before* scanning, so a push that races
        // with the scan is caught by the sleep helper's re-check.
        let snapshot = registry.generation();
        if let Some(job) = registry.find_job(index) {
            // Jobs catch panics from user code internally; this outer guard
            // only keeps a worker alive should that invariant ever break.
            let _ = catch_unwind(AssertUnwindSafe(|| job.execute()));
            continue;
        }
        if registry.is_shutdown() {
            return;
        }
        registry.sleep_unless_event(snapshot);
    }
}

// ---------------------------------------------------------------------------
// Indexed batches (parallel loops)
// ---------------------------------------------------------------------------

/// Upper bound on the number of chunks an indexed batch is split into.  The
/// chunk size is a function of `len` **only** — never of the thread count —
/// so chunk boundaries (and therefore any chunk-ordered reduction) are
/// identical at 1, 2 or 64 threads.
const MAX_CHUNKS: usize = 256;

struct IndexedBatch {
    /// The pool the batch runs on; used to broadcast completion so blocked
    /// waiters can sleep instead of busy-spinning.
    registry: Arc<Registry>,
    /// The loop body, called as `body(chunk_start, chunk_end)`.  Lifetime is
    /// erased; see the module safety notes — the body is only dereferenced
    /// through a successful chunk claim, which cannot happen after the
    /// submitting thread (which owns the referent) has returned.
    body: *const (dyn Fn(usize, usize) + Sync),
    len: usize,
    chunk: usize,
    /// Next unclaimed index (claims advance in `chunk` steps).
    next: AtomicUsize,
    /// Completed item count; the batch is done when this reaches `len`.
    finished: AtomicUsize,
    /// First panic payload raised by any chunk.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: the body pointer is only dereferenced while the submitting thread
// is blocked in `run_indexed` (argued above); everything else is atomics.
unsafe impl Send for IndexedBatch {}
unsafe impl Sync for IndexedBatch {}

impl Job for IndexedBatch {
    fn run(&self) {
        self.work();
    }
}

impl IndexedBatch {
    /// Claim and execute chunks until none remain.
    fn work(&self) {
        loop {
            let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.len {
                return;
            }
            let end = (start + self.chunk).min(self.len);
            // SAFETY: a successful claim implies the submitter is still
            // blocked in `run_indexed`, so the referent is alive.
            let body = unsafe { &*self.body };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(start, end))) {
                let mut slot = self.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            // Release pairs with the Acquire load in the submitter's wait
            // loop, publishing the chunk's writes before completion is seen.
            let done = self.finished.fetch_add(end - start, Ordering::Release) + (end - start);
            if done == self.len {
                // Last chunk: wake every thread blocked on this batch.
                self.registry.notify_all();
            }
        }
    }
}

/// Execute `body(start, end)` over disjoint chunks covering `0..len`, in
/// parallel on the current pool.  Returns when every chunk has completed;
/// re-throws the first panic any chunk raised.
pub(crate) fn run_indexed(len: usize, body: &(dyn Fn(usize, usize) + Sync)) {
    if len == 0 {
        return;
    }
    let registry = current_registry();
    if registry.num_threads() <= 1 || len == 1 {
        body(0, len);
        return;
    }

    let chunk = len.div_ceil(len.min(MAX_CHUNKS));
    let num_chunks = len.div_ceil(chunk);

    // Erase the body's lifetime so it can be stored in the Arc-owned batch;
    // validity is enforced by blocking below until `finished == len`.
    let body_ptr: *const (dyn Fn(usize, usize) + Sync) = unsafe { std::mem::transmute(body) };
    let batch = Arc::new(IndexedBatch {
        registry: registry.clone(),
        body: body_ptr,
        len,
        chunk,
        next: AtomicUsize::new(0),
        finished: AtomicUsize::new(0),
        panic: Mutex::new(None),
    });

    // One stealable handle per potential helper; the submitting thread is
    // the remaining participant.
    let helpers = (registry.num_threads() - 1).min(num_chunks.saturating_sub(1));
    for _ in 0..helpers {
        registry.push_job(JobRef::new(batch.clone()));
    }

    // Claim chunks on this thread too, then help with unrelated work until
    // stragglers (chunks claimed by other threads) have finished.
    batch.work();
    while batch.finished.load(Ordering::Acquire) < len {
        // Snapshot before re-checking: if the last straggler broadcasts
        // completion after this point, the sleep helper will not block.
        let snapshot = registry.generation();
        if batch.finished.load(Ordering::Acquire) >= len {
            break;
        }
        if !registry.help_one() {
            registry.sleep_unless_event(snapshot);
        }
    }

    let payload = batch.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

const PENDING: u8 = 0;
const TAKEN: u8 = 1;
const DONE: u8 = 2;

/// The second arm of a `join`, claimable exactly once: by a thief worker or
/// by the submitting thread taking it back.
struct JoinJob<B, RB> {
    registry: Arc<Registry>,
    state: AtomicU8,
    task: Mutex<Option<B>>,
    result: Mutex<Option<std::thread::Result<RB>>>,
}

impl<B, RB> JoinJob<B, RB>
where
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    fn new(registry: Arc<Registry>, task: B) -> Self {
        JoinJob {
            registry,
            state: AtomicU8::new(PENDING),
            task: Mutex::new(Some(task)),
            result: Mutex::new(None),
        }
    }

    /// Run the arm if nobody has claimed it yet.
    fn try_run(&self) {
        if self
            .state
            .compare_exchange(PENDING, TAKEN, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            let task = self.task.lock().unwrap().take().expect("join arm present");
            let result = catch_unwind(AssertUnwindSafe(task));
            *self.result.lock().unwrap() = Some(result);
            self.state.store(DONE, Ordering::Release);
            // Wake the submitter if it went to sleep waiting for this arm.
            self.registry.notify_all();
        }
    }

    /// Wait (helping with other pool work) until the arm has run, and return
    /// its result.
    fn wait(&self, registry: &Arc<Registry>) -> std::thread::Result<RB> {
        self.try_run();
        while self.state.load(Ordering::Acquire) != DONE {
            let snapshot = registry.generation();
            if self.state.load(Ordering::Acquire) == DONE {
                break;
            }
            if !registry.help_one() {
                registry.sleep_unless_event(snapshot);
            }
        }
        self.result
            .lock()
            .unwrap()
            .take()
            .expect("join result present")
    }
}

impl<B, RB> Job for JoinJob<B, RB>
where
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    fn run(&self) {
        self.try_run();
    }
}

/// Run two closures, potentially in parallel, and return both results.  See
/// [`crate::join`] for the public documentation.
pub(crate) fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = current_registry();
    if registry.num_threads() <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }

    let job = Arc::new(JoinJob::new(registry.clone(), oper_b));
    registry.push_job(JobRef::new(job.clone()));

    // Even if the first arm panics we must wait for the second: it may
    // borrow state from our caller's frame.
    let ra = catch_unwind(AssertUnwindSafe(oper_a));
    let rb = job.wait(&registry);
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) => std::panic::resume_unwind(payload),
        (_, Err(payload)) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_accepts_only_positive_integers() {
        assert_eq!(parse_thread_env(None), None);
        assert_eq!(parse_thread_env(Some("")), None);
        assert_eq!(parse_thread_env(Some("zero")), None);
        assert_eq!(parse_thread_env(Some("0")), None);
        assert_eq!(parse_thread_env(Some("-3")), None);
        assert_eq!(parse_thread_env(Some("8")), Some(8));
        assert_eq!(parse_thread_env(Some(" 12 ")), Some(12));
    }

    #[test]
    fn chunking_depends_only_on_len() {
        // For a given len, the chunk size must be the same whatever the
        // thread count, so chunk-ordered reductions stay deterministic.
        for len in [1usize, 2, 7, 255, 256, 257, 1000, 1 << 20] {
            let chunk = len.div_ceil(len.min(MAX_CHUNKS));
            assert!(chunk >= 1);
            assert!(len.div_ceil(chunk) <= MAX_CHUNKS);
        }
    }

    #[test]
    fn run_indexed_covers_every_index_exactly_once() {
        let (registry, handles) = Registry::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        with_registry(&registry, || {
            run_indexed(hits.len(), &|start, end| {
                for h in &hits[start..end] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
        registry.terminate();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn run_indexed_propagates_panics_after_completion() {
        let (registry, handles) = Registry::new(3);
        let completed = AtomicUsize::new(0);
        let result = with_registry(&registry, || {
            catch_unwind(AssertUnwindSafe(|| {
                run_indexed(100, &|start, end| {
                    for i in start..end {
                        if i == 37 {
                            panic!("chunk failure");
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }))
        });
        assert!(result.is_err());
        // Every non-panicking index still ran: the pool drains the batch
        // before re-throwing, so no chunk is abandoned mid-buffer.
        assert_eq!(completed.load(Ordering::Relaxed), 99);
        // The pool stays usable after a panic.
        let ok = AtomicUsize::new(0);
        with_registry(&registry, || {
            run_indexed(10, &|s, e| {
                ok.fetch_add(e - s, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 10);
        registry.terminate();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn single_thread_registry_runs_inline() {
        let (registry, handles) = Registry::new(1);
        assert!(handles.is_empty());
        let count = AtomicUsize::new(0);
        with_registry(&registry, || {
            run_indexed(17, &|s, e| {
                count.fetch_add(e - s, Ordering::Relaxed);
            });
            let (a, b) = join(|| 1, || 2);
            assert_eq!((a, b), (1, 2));
        });
        assert_eq!(count.load(Ordering::Relaxed), 17);
    }
}
