//! Offline stand-in for the `rayon` crate, with a **real work-stealing
//! thread pool** behind the same API surface.
//!
//! The build container has no crates.io access, so this vendored crate
//! provides the subset of rayon the workspace uses — but, unlike the
//! early sequential shim, the parallel operations now actually execute in
//! parallel:
//!
//! * [`join`] — fork-join on the pool, with the second arm stealable by
//!   idle workers and taken back by the caller when it finishes first;
//! * the parallel iterators of [`prelude`] (`par_iter`, `par_iter_mut`,
//!   `into_par_iter` over slices/vectors/ranges, `par_chunks_mut`, with
//!   `map` / `enumerate` / `for_each` / `collect` / `sum`), driven over
//!   chunked index ranges by the work-stealing pool in the private `pool`
//!   module;
//! * [`ThreadPool`] / [`ThreadPoolBuilder`] — explicit pools with a chosen
//!   thread count, and a process-global pool configured by the
//!   `HODLR_NUM_THREADS` environment variable (falling back to
//!   `RAYON_NUM_THREADS`, then to the machine's logical parallelism).
//!
//! # Thread count
//!
//! `num_threads` counts *participants*: the pool spawns `num_threads - 1`
//! workers and the submitting thread always takes part, so
//! `HODLR_NUM_THREADS=1` runs strictly on the calling thread (no worker
//! threads are spawned at all) and `HODLR_NUM_THREADS=8` uses at most 8
//! threads of compute.
//!
//! # Determinism
//!
//! Parallel loops split `0..len` into chunks whose boundaries depend only
//! on `len`, `collect` writes item `i` into slot `i`, and `sum` reduces in
//! index order — so every operation built on this crate returns bitwise
//! identical results at 1, 2 or 64 threads (the workspace's determinism
//! tests assert this end to end).  Panics in parallel bodies are caught,
//! the batch is drained, and the first panic is re-thrown on the caller.

mod iter;
mod pool;

pub use iter::{
    ChunksParIterMut, Enumerate, FromParallelIterator, IntoParallelIterator,
    IntoParallelRefIterator, IntoParallelRefMutIterator, Map, ParallelIterator, ParallelSliceMut,
    RangeParIter, SliceParIter, SliceParIterMut, VecParIter,
};

use std::sync::Arc;

/// Run two closures, potentially in parallel, and return both results.
///
/// The second closure is published to the pool where an idle worker may
/// steal it; if none does by the time the first closure finishes, the
/// calling thread runs it inline (so `join` never waits on a busy pool to
/// make progress).  If either closure panics, the other still runs to
/// completion before the panic is propagated.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    pool::join(oper_a, oper_b)
}

/// Number of threads (participants) of the current pool: the innermost
/// [`ThreadPool::install`] scope, the worker's own pool, or the global pool.
pub fn current_num_threads() -> usize {
    pool::current_registry().num_threads()
}

/// Error returned when a pool cannot be built (currently only when the
/// global pool is initialized twice).
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    message: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`]s (and for the global pool).
///
/// ```
/// use rayon::prelude::*;
///
/// let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
/// let squares: Vec<u64> = pool.install(|| (0u64..64).into_par_iter().map(|i| i * i).collect());
/// assert_eq!(squares[63], 63 * 63);
/// ```
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (thread count from the environment:
    /// `HODLR_NUM_THREADS`, then `RAYON_NUM_THREADS`, then the machine).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Set the number of participating threads (0 = use the default).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = if num_threads == 0 {
            None
        } else {
            Some(num_threads)
        };
        self
    }

    fn resolved_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(pool::default_num_threads)
    }

    /// Build an explicit pool.  Dropping the returned [`ThreadPool`] shuts
    /// its workers down.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let (registry, handles) = pool::Registry::new(self.resolved_num_threads());
        Ok(ThreadPool { registry, handles })
    }

    /// Initialize the process-global pool with this configuration.
    ///
    /// # Errors
    /// Fails if the global pool has already been created (explicitly or by
    /// first use).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        pool::set_global_registry(self.resolved_num_threads()).map_err(|()| ThreadPoolBuildError {
            message: "the global thread pool has already been initialized",
        })
    }
}

/// An explicit work-stealing thread pool; see [`ThreadPoolBuilder`].
///
/// Parallel operations run inside [`install`](ThreadPool::install) execute
/// on this pool instead of the global one — the workspace's determinism
/// tests use this to compare runs at 1, 2 and 8 threads within a single
/// process.
pub struct ThreadPool {
    registry: Arc<pool::Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Run `op` with this pool as the current thread's submission target.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        pool::with_registry(&self.registry, op)
    }

    /// Number of participating threads of this pool.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

pub mod prelude {
    //! The adapter traits, mirroring `rayon::prelude`.
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn adapters_match_sequential_semantics() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = (0i32..5).into_par_iter().sum();
        assert_eq!(sum, 10);
        let indexed: Vec<(usize, i32)> = v.into_par_iter().enumerate().collect();
        assert_eq!(indexed, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn collect_preserves_order_at_scale() {
        let n = 10_000usize;
        let out: Vec<usize> = (0..n).into_par_iter().map(|i| i * 3).collect();
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, i * 3);
        }
    }

    #[test]
    fn collect_into_result_short_circuits_on_first_error() {
        let ok: Result<Vec<usize>, String> = (0..100usize).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<usize>, usize> = (0..100usize)
            .into_par_iter()
            .map(|i| if i >= 40 { Err(i) } else { Ok(i) })
            .collect();
        // Index order: the smallest failing index wins, as in a sequential
        // short-circuiting collect.
        assert_eq!(err.unwrap_err(), 40);
    }

    #[test]
    fn par_iter_mut_hands_out_disjoint_elements() {
        let mut v = vec![0usize; 257];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i + 1);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i + 1);
        }
    }

    #[test]
    fn par_chunks_mut_covers_the_slice() {
        let mut v = vec![0u32; 1000];
        v.par_chunks_mut(64).enumerate().for_each(|(c, chunk)| {
            for x in chunk.iter_mut() {
                *x = c as u32;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[63], 0);
        assert_eq!(v[64], 1);
        assert_eq!(v[999], (999 / 64) as u32);
    }

    #[test]
    fn join_runs_both_closures() {
        let (a, b) = super::join(|| 1 + 1, || "ok");
        assert_eq!(a, 2);
        assert_eq!(b, "ok");
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn deeply_nested_joins_stay_bounded() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = super::join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }

    #[test]
    fn join_propagates_panics_from_either_arm() {
        let r = std::panic::catch_unwind(|| super::join(|| panic!("arm a"), || 2));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| super::join(|| 1, || panic!("arm b")));
        assert!(r.is_err());
        // Pool remains usable.
        assert_eq!(super::join(|| 1, || 2), (1, 2));
    }

    #[test]
    fn for_each_panic_propagates_and_pool_survives() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..100usize).into_par_iter().for_each(|i| {
                    if i == 13 {
                        panic!("boom");
                    }
                });
            })
        }));
        assert!(r.is_err());
        let total: usize = pool.install(|| (0..100usize).into_par_iter().sum());
        assert_eq!(total, 4950);
    }

    #[test]
    fn explicit_pools_control_thread_count() {
        let pool1 = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        assert_eq!(pool1.current_num_threads(), 1);
        assert_eq!(pool1.install(super::current_num_threads), 1);
        let pool3 = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool3.install(super::current_num_threads), 3);
        // Nested installs: innermost wins, outer is restored afterwards.
        let nested = pool3.install(|| pool1.install(super::current_num_threads));
        assert_eq!(nested, 1);
    }

    #[test]
    fn work_actually_runs_on_multiple_threads() {
        // With 8 participants and 64 sleepy items, at least one worker
        // thread (distinct from the caller) must execute something.  This
        // holds even on a single-core machine: workers are real OS threads.
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap();
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        pool.install(|| {
            (0..64usize).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_micros(200));
            });
        });
        let distinct = ids.lock().unwrap().len();
        assert!(
            distinct > 1,
            "only {distinct} distinct threads participated"
        );
    }

    #[test]
    fn single_thread_pool_spawns_no_workers_and_stays_on_caller() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let caller = std::thread::current().id();
        pool.install(|| {
            (0..32usize).into_par_iter().for_each(|_| {
                assert_eq!(std::thread::current().id(), caller);
            });
        });
    }

    #[test]
    fn float_sums_are_bitwise_identical_across_thread_counts() {
        let values: Vec<f64> = (0..4097).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let sequential: f64 = values.iter().sum();
        for threads in [1, 2, 8] {
            let pool = super::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let parallel: f64 = pool.install(|| values.par_iter().map(|&x| x).sum::<f64>());
            assert_eq!(
                parallel.to_bits(),
                sequential.to_bits(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let count = AtomicUsize::new(0);
        pool.install(|| {
            (0..8usize).into_par_iter().for_each(|_| {
                (0..8usize).into_par_iter().for_each(|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }
}
