//! Offline stand-in for the `rayon` crate.
//!
//! The workspace uses rayon only as a data-parallel executor for batched
//! kernels and per-level node loops; every call site is correct under
//! sequential execution (that is what `Device::sequential()` tests assert).
//! With no crates.io access in the build container, this crate provides:
//!
//! * [`join`] — real fork-join parallelism on `std::thread::scope`, with a
//!   global cap on concurrently spawned threads so recursive fork trees
//!   stay bounded;
//! * the parallel-iterator adapters mapped onto plain **sequential**
//!   iterators.  Rows labelled "parallel" in the bench tables therefore
//!   measure the same single-threaded execution as their serial
//!   counterparts wherever the parallelism came from `par_iter` (the
//!   README states this limitation).  The paper-facing metering (launch
//!   counts, flop counters, batch sizes) is unaffected either way: it is
//!   recorded by the virtual device, not by the execution strategy.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Concurrently spawned [`join`] arms, bounded to keep recursive fork
/// trees from exhausting OS threads.
static ACTIVE_JOINS: AtomicUsize = AtomicUsize::new(0);

/// Run two closures, potentially in parallel, and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let cap = 2 * current_num_threads();
    if ACTIVE_JOINS.fetch_add(1, Ordering::Relaxed) < cap {
        let out = std::thread::scope(|scope| {
            let handle = scope.spawn(b);
            let ra = a();
            let rb = handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            (ra, rb)
        });
        ACTIVE_JOINS.fetch_sub(1, Ordering::Relaxed);
        out
    } else {
        ACTIVE_JOINS.fetch_sub(1, Ordering::Relaxed);
        (a(), b())
    }
}

/// Number of worker threads the pool would have; used only to pick panel
/// sizes, so the machine's logical parallelism is a faithful answer.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

pub mod prelude {
    //! The adapter traits, mirroring `rayon::prelude`.

    /// `into_par_iter()` for owned collections and ranges; hands back the
    /// plain sequential iterator.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in for rayon's `into_par_iter`.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// `par_iter()` for borrowed collections.
    pub trait IntoParallelRefIterator<'data> {
        /// The sequential iterator type standing in for the parallel one.
        type Iter: Iterator;

        /// Sequential stand-in for rayon's `par_iter`.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `par_iter_mut()` for mutably borrowed collections.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The sequential iterator type standing in for the parallel one.
        type Iter: Iterator;

        /// Sequential stand-in for rayon's `par_iter_mut`.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_behave_like_sequential_iterators() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = (0..5).into_par_iter().sum();
        assert_eq!(sum, 10);
        let mut out = Vec::new();
        v.into_par_iter()
            .enumerate()
            .for_each(|(i, x)| out.push((i, x)));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn join_runs_both_closures() {
        let (a, b) = super::join(|| 1 + 1, || "ok");
        assert_eq!(a, 2);
        assert_eq!(b, "ok");
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn deeply_nested_joins_stay_bounded() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = super::join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }
}
