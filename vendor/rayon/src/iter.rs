//! Parallel iterators over indexable sources, executed on the work-stealing
//! pool of [`crate::pool`].
//!
//! Everything this workspace parallelizes is *indexed*: slices, vectors,
//! integer ranges, and chunkings thereof.  A [`ParallelIterator`] here is
//! therefore a length plus a shared producer that materializes the item at
//! a given index; adapters ([`map`](ParallelIterator::map),
//! [`enumerate`](ParallelIterator::enumerate)) compose producers, and the
//! terminal operations ([`for_each`](ParallelIterator::for_each),
//! [`collect`](ParallelIterator::collect), [`sum`](ParallelIterator::sum))
//! drive the composed producer over chunked index ranges on the pool.
//!
//! # Determinism
//!
//! Terminal operations preserve sequential semantics exactly:
//!
//! * `collect` writes the item for index `i` into slot `i` of the output,
//!   so the collected order is the source order at every thread count;
//! * `sum` materializes all items and reduces them **in index order** on
//!   the calling thread, so floating-point reductions are bitwise identical
//!   to the sequential result at every thread count (at the cost of one
//!   intermediate buffer — acceptable for this workspace, where hot-path
//!   reductions live inside the batched kernels, not in iterator sums).
//!
//! # Panics
//!
//! A panic in user code (a `map` closure, a `for_each` body) is caught on
//! the executing thread and re-thrown on the calling thread after the whole
//! batch has drained.  Items already produced into a `collect` buffer are
//! leaked in that case (never dropped twice, never observed uninitialized).

use crate::pool;

/// A parallel iterator: a fixed-length, index-addressable item producer that
/// can be shared across worker threads.
///
/// # Safety contract of `produce`
///
/// `produce(i)` must be called **at most once per index** across all
/// threads; producers hand out owned items or disjoint `&mut` borrows under
/// that contract.  The terminal operations in this module uphold it by
/// partitioning `0..len` into disjoint chunks.
pub trait ParallelIterator: Send + Sync + Sized {
    /// The element type.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// `true` if the iterator has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the item at `index`.
    ///
    /// # Safety
    /// Each index must be produced at most once across all threads, and
    /// `index < self.len()`.
    unsafe fn produce(&self, index: usize) -> Self::Item;

    /// Transform every item with `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Pair every item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Run `f` on every item, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let len = self.len();
        let this = &self;
        let f = &f;
        pool::run_indexed(len, &|start, end| {
            for i in start..end {
                // SAFETY: chunks partition 0..len, so each index is
                // produced exactly once.
                f(unsafe { this.produce(i) });
            }
        });
    }

    /// Collect the items into a container, preserving source order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sum the items in index order (bitwise deterministic for floats at
    /// every thread count; see the module docs).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        let items: Vec<Self::Item> = self.collect();
        items.into_iter().sum()
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// Parallel `map`; see [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    unsafe fn produce(&self, index: usize) -> R {
        // SAFETY: forwarded contract.
        (self.f)(unsafe { self.base.produce(index) })
    }
}

/// Parallel `enumerate`; see [`ParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    unsafe fn produce(&self, index: usize) -> (usize, P::Item) {
        // SAFETY: forwarded contract.
        (index, unsafe { self.base.produce(index) })
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel iterator over `&[T]` (the `par_iter` source).
pub struct SliceParIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync + 'data> ParallelIterator for SliceParIter<'data, T> {
    type Item = &'data T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    unsafe fn produce(&self, index: usize) -> &'data T {
        &self.slice[index]
    }
}

/// Parallel iterator over `&mut [T]` (the `par_iter_mut` source).  Raw
/// pointer based: distinct indices alias distinct elements, so handing out
/// one `&mut` per index is sound under the produce-once contract.
pub struct SliceParIterMut<'data, T> {
    ptr: *mut T,
    len: usize,
    marker: std::marker::PhantomData<&'data mut [T]>,
}

// SAFETY: access is partitioned per index by the produce-once contract.
unsafe impl<T: Send> Send for SliceParIterMut<'_, T> {}
unsafe impl<T: Send> Sync for SliceParIterMut<'_, T> {}

impl<'data, T: Send + 'data> ParallelIterator for SliceParIterMut<'data, T> {
    type Item = &'data mut T;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn produce(&self, index: usize) -> &'data mut T {
        assert!(index < self.len);
        // SAFETY: in-bounds (asserted) and exclusive by the contract.
        unsafe { &mut *self.ptr.add(index) }
    }
}

/// Owning parallel iterator over a `Vec<T>` (the `into_par_iter` source).
/// Items are moved out by raw reads; the allocation is freed on drop.  Items
/// never produced (possible only if a sibling chunk panicked) are leaked —
/// safe, and the price of not tracking per-item liveness.
pub struct VecParIter<T> {
    ptr: *mut T,
    len: usize,
    cap: usize,
}

// SAFETY: items are moved out at most once per index (produce contract).
unsafe impl<T: Send> Send for VecParIter<T> {}
unsafe impl<T: Send> Sync for VecParIter<T> {}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn produce(&self, index: usize) -> T {
        assert!(index < self.len);
        // SAFETY: in-bounds; each element is read (moved) at most once.
        unsafe { std::ptr::read(self.ptr.add(index)) }
    }
}

impl<T> Drop for VecParIter<T> {
    fn drop(&mut self) {
        // SAFETY: reconstitute the allocation with length 0: the buffer is
        // freed without dropping elements (moved-out ones must not drop
        // again; never-produced ones leak, which is safe).
        unsafe {
            drop(Vec::from_raw_parts(self.ptr, 0, self.cap));
        }
    }
}

/// Parallel iterator over an integer range (the `(a..b).into_par_iter()`
/// source).
pub struct RangeParIter<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeParIter<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                self.len
            }

            unsafe fn produce(&self, index: usize) -> $t {
                assert!(index < self.len);
                self.start + index as $t
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeParIter<$t>;

            fn into_par_iter(self) -> RangeParIter<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeParIter { start: self.start, len }
            }
        }
    )*};
}

impl_range_par_iter!(usize, u32, u64, i32, i64);

/// Parallel iterator over disjoint mutable chunks of a slice (the
/// `par_chunks_mut` source).
pub struct ChunksParIterMut<'data, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    marker: std::marker::PhantomData<&'data mut [T]>,
}

// SAFETY: chunks at distinct indices are disjoint element ranges.
unsafe impl<T: Send> Send for ChunksParIterMut<'_, T> {}
unsafe impl<T: Send> Sync for ChunksParIterMut<'_, T> {}

impl<'data, T: Send + 'data> ParallelIterator for ChunksParIterMut<'data, T> {
    type Item = &'data mut [T];

    fn len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }

    unsafe fn produce(&self, index: usize) -> &'data mut [T] {
        let start = index * self.chunk;
        assert!(start < self.len);
        let size = self.chunk.min(self.len - start);
        // SAFETY: [start, start + size) ranges of distinct indices are
        // disjoint and in-bounds; exclusivity per the produce contract.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), size) }
    }
}

// ---------------------------------------------------------------------------
// Conversion traits (the `rayon::prelude` surface)
// ---------------------------------------------------------------------------

/// Types convertible into an owning parallel iterator
/// (`vec.into_par_iter()`, `(0..n).into_par_iter()`).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        let mut vec = std::mem::ManuallyDrop::new(self);
        VecParIter {
            ptr: vec.as_mut_ptr(),
            len: vec.len(),
            cap: vec.capacity(),
        }
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data [T] {
    type Item = &'data T;
    type Iter = SliceParIter<'data, T>;

    fn into_par_iter(self) -> SliceParIter<'data, T> {
        SliceParIter { slice: self }
    }
}

impl<'data, T: Sync> IntoParallelIterator for &'data Vec<T> {
    type Item = &'data T;
    type Iter = SliceParIter<'data, T>;

    fn into_par_iter(self) -> SliceParIter<'data, T> {
        SliceParIter { slice: self }
    }
}

/// `par_iter()` for borrowed collections.
pub trait IntoParallelRefIterator<'data> {
    /// The element type (a shared reference).
    type Item: Send + 'data;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Iterate over `&self` in parallel.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = SliceParIter<'data, T>;

    fn par_iter(&'data self) -> SliceParIter<'data, T> {
        SliceParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = SliceParIter<'data, T>;

    fn par_iter(&'data self) -> SliceParIter<'data, T> {
        SliceParIter { slice: self }
    }
}

/// `par_iter_mut()` for mutably borrowed collections.
pub trait IntoParallelRefMutIterator<'data> {
    /// The element type (an exclusive reference).
    type Item: Send + 'data;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Iterate over `&mut self` in parallel.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Iter = SliceParIterMut<'data, T>;

    fn par_iter_mut(&'data mut self) -> SliceParIterMut<'data, T> {
        SliceParIterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            marker: std::marker::PhantomData,
        }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Iter = SliceParIterMut<'data, T>;

    fn par_iter_mut(&'data mut self) -> SliceParIterMut<'data, T> {
        self.as_mut_slice().par_iter_mut()
    }
}

/// `par_chunks_mut()` for slices: disjoint mutable chunks processed in
/// parallel (used e.g. to scatter multi-RHS columns into a packed buffer).
pub trait ParallelSliceMut<T: Send> {
    /// Split into chunks of `chunk_size` (last one possibly shorter).
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksParIterMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ChunksParIterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            chunk: chunk_size,
            marker: std::marker::PhantomData,
        }
    }
}

// ---------------------------------------------------------------------------
// Collection
// ---------------------------------------------------------------------------

/// A raw pointer wrapper shareable across workers; each worker writes a
/// disjoint index range.
struct SendPtr<T>(*mut T);
impl<T> Copy for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Containers buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the container, preserving source order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Vec<T> {
        let len = par.len();
        let mut out: Vec<T> = Vec::with_capacity(len);
        let base = SendPtr(out.as_mut_ptr());
        let par_ref = &par;
        pool::run_indexed(len, &move |start, end| {
            let base = base;
            for i in start..end {
                // SAFETY: chunks partition 0..len (produce-once), slot `i`
                // is within the reserved capacity and written exactly once.
                unsafe { base.0.add(i).write(par_ref.produce(i)) };
            }
        });
        // SAFETY: all `len` slots were initialized (a panic would have
        // propagated out of `run_indexed` before this point, leaving the
        // vector at length 0 and leaking the initialized items).
        unsafe { out.set_len(len) };
        out
    }
}

impl<T: Send, E: Send> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_iter<P: ParallelIterator<Item = Result<T, E>>>(par: P) -> Self {
        let results: Vec<Result<T, E>> = Vec::from_par_iter(par);
        // Sequential fold in index order: the error returned is the one at
        // the smallest index, matching the sequential short-circuit.
        results.into_iter().collect()
    }
}
