//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! small slice of `rand`'s API the workspace actually uses is reimplemented
//! here: [`rngs::StdRng`] (a xoshiro256** generator), [`SeedableRng`] with
//! `seed_from_u64`, and the [`Rng`] extension methods `gen_range` (over
//! floating-point and integer ranges) and `gen_bool`.  Sequences are
//! deterministic for a given seed, which is all the tests and workload
//! generators rely on; they do not depend on matching upstream `rand`'s
//! stream bit-for-bit.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A value uniformly distributed over `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open range values can be drawn from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The unit-interval double `[0, 1)` built from the top 53 bits of a word.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free bounded sampling (Lemire);
                // the tiny modulo bias is irrelevant for test workloads.
                let word = rng.next_u64() as u128;
                let offset = (word * span) >> 64;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

pub mod rngs {
    //! Concrete generators, mirroring `rand::rngs`.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded through
    /// SplitMix64 (the reference seeding procedure for the xoshiro family).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(-1.0..1.0), b.gen_range(-1.0..1.0));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let y: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(y > 0.0 && y < 1.0);
        }
    }

    #[test]
    fn integer_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let k: usize = rng.gen_range(0..8usize);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0..u64::MAX) == b.gen_range(0..u64::MAX))
            .count();
        assert_eq!(same, 0);
    }
}
