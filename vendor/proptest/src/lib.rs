//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the API this workspace's tests use: the
//! [`proptest!`] macro with `arg in range` bindings, an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.  Each test
//! runs `cases` iterations with arguments drawn from the given ranges by a
//! generator seeded from the test name, so failures are reproducible.
//! There is no shrinking; a failing case panics with its inputs printed by
//! the assertion message.

#[doc(hidden)]
pub use rand as __rand;

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Copy, Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream default is 256; 64 keeps the deterministic stand-in fast
        // while still sweeping the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic seed derived from the test name (FNV-1a).
#[doc(hidden)]
pub fn __seed_from_name(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    hash
}

/// Mirror of proptest's `proptest!` macro over `arg in range` strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $range:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::__rand::{Rng as _, SeedableRng as _};
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::__rand::rngs::StdRng::seed_from_u64(
                    $crate::__seed_from_name(stringify!($name)),
                );
                for _ in 0..config.cases {
                    $(let $arg = rng.gen_range($range);)*
                    // One closure per case so `prop_assume!`'s early return
                    // rejects only that case.
                    #[allow(clippy::redundant_closure_call)]
                    (|| $body)();
                }
            }
        )*
    };
}

/// Mirror of `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Mirror of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Mirror of `prop_assume!`: reject the current case when the condition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` imports.
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_respected(n in 1usize..50, x in -1.0f64..1.0) {
            prop_assert!((1..50).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn assume_rejects_cases(n in 0usize..10) {
            prop_assume!(n >= 5);
            prop_assert!(n >= 5);
            prop_assert_eq!(n, n);
        }
    }
}
