//! Offline stand-in for the `parking_lot` crate: a [`Mutex`] with
//! `parking_lot`'s `lock() -> guard` signature (no `Result`), implemented on
//! `std::sync::Mutex`.  Poisoning is translated to a panic, matching
//! `parking_lot`'s behaviour of not having poisoning at all.

use std::sync::MutexGuard as StdMutexGuard;

/// A mutual-exclusion primitive with `parking_lot`'s API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// The guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
