//! The spectral subsystem end to end over the `hodlr` façade: bitwise
//! determinism of Lanczos / shift-invert / SLQ across 1-, 2- and 8-thread
//! pools and across the serial and batched backends, dense-oracle
//! agreement of the shift-invert eigenpairs, and the typed error paths
//! (bad configs, indefinite operands, mismatched operator dimensions).

use hodlr::prelude::*;
use hodlr_la::{symmetric_evd, HodlrError};
use hodlr_spectral::{
    lanczos_report, shift_invert_report, slq_log_det, slq_trace, LanczosConfig, SlqConfig,
    SpectrumTarget,
};

const N: usize = 256;
const K: usize = 4;

/// A smooth, diagonally shifted SPD kernel source (same family as the
/// façade round-trip tests): HODLR-compressible, eigenvalues clear of
/// zero.
fn kernel_source(n: usize) -> ClosureSource<f64, impl Fn(usize, usize) -> f64 + Sync> {
    ClosureSource::new(n, n, move |i, j| {
        let x = i as f64 / n as f64;
        let y = j as f64 / n as f64;
        let k = 1.0 / (1.0 + (x - y).abs() * n as f64 / 8.0);
        if i == j {
            k + 4.0
        } else {
            k
        }
    })
}

fn build(n: usize, backend: Backend) -> Hodlr<f64> {
    let source = kernel_source(n);
    Hodlr::builder()
        .source(&source)
        .leaf_size(32)
        .tolerance(1e-10)
        .backend(backend)
        .symmetry(Symmetry::PositiveDefinite)
        .build()
        .unwrap()
}

fn lanczos_cfg() -> LanczosConfig {
    LanczosConfig {
        subspace: 64,
        ..LanczosConfig::default()
    }
}

fn slq_cfg() -> SlqConfig {
    SlqConfig {
        probes: 8,
        steps: 40,
        seed: 7,
    }
}

/// Everything the spectral pipeline produces at one thread count, as one
/// bitwise-comparable signature: Lanczos largest, shift-invert smallest
/// (through the SPD factorization) and the SLQ log-determinant.
fn pipeline_signature(backend: Backend) -> Vec<u64> {
    let hodlr = build(N, backend);
    let largest = lanczos_report(&hodlr, K, SpectrumTarget::Largest, &lanczos_cfg()).unwrap();
    let factorization = hodlr.factorize().unwrap();
    let smallest = shift_invert_report(&hodlr, &factorization, 0.0, K, &lanczos_cfg()).unwrap();
    let slq = slq_log_det(&hodlr, &slq_cfg()).unwrap();
    let mut sig: Vec<u64> = Vec::new();
    for report in [&largest, &smallest] {
        sig.extend(report.values.iter().map(|v| v.to_bits()));
        sig.extend(report.vectors.data().iter().map(|v| v.to_bits()));
        sig.extend(report.residuals.iter().map(|v| v.to_bits()));
    }
    sig.push(slq.value.to_bits());
    sig.push(slq.stderr.to_bits());
    sig.push(slq.min_ritz.to_bits());
    sig
}

/// The README's determinism contract extended to the spectral subsystem:
/// construction, factorization, both Lanczos scenarios and SLQ are
/// bitwise identical inside 1-, 2- and 8-thread pools.
#[test]
fn spectral_pipeline_is_bitwise_identical_across_thread_counts() {
    let signatures: Vec<Vec<u64>> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool")
                .install(|| {
                    assert_eq!(rayon::current_num_threads(), threads);
                    pipeline_signature(Backend::Serial)
                })
        })
        .collect();
    assert_eq!(signatures[0], signatures[1], "1 vs 2 threads");
    assert_eq!(signatures[1], signatures[2], "2 vs 8 threads");
}

/// The backend only decides who factorizes and solves; the HODLR matvec
/// is the same arithmetic either way, so the matvec-driven estimators —
/// Lanczos over the forward operator and SLQ — agree **bitwise** between
/// `Backend::Serial` and `Backend::Batched`.
#[test]
fn matvec_driven_estimators_are_bitwise_identical_across_backends() {
    let serial = build(N, Backend::Serial);
    let batched = build(N, Backend::Batched);

    let ls = lanczos_report(&serial, K, SpectrumTarget::Largest, &lanczos_cfg()).unwrap();
    let lb = lanczos_report(&batched, K, SpectrumTarget::Largest, &lanczos_cfg()).unwrap();
    assert_eq!(
        ls.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        lb.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
    assert_eq!(ls.vectors.data(), lb.vectors.data());

    let ss = slq_log_det(&serial, &slq_cfg()).unwrap();
    let sb = slq_log_det(&batched, &slq_cfg()).unwrap();
    assert_eq!(ss.value.to_bits(), sb.value.to_bits());
    assert_eq!(ss.stderr.to_bits(), sb.stderr.to_bits());
}

/// Shift-invert through the façade factorization recovers the smallest
/// eigenpairs the dense EVD oracle reports.  The smallest eigenvalues of
/// this kernel cluster just above the `+4` diagonal shift, so the test
/// runs a full-dimension Krylov basis (Lanczos is then exact up to the
/// factorization's own solve accuracy) rather than asking a small basis
/// to resolve the cluster member by member.
#[test]
fn shift_invert_agrees_with_the_dense_oracle() {
    let hodlr = build(N, Backend::Serial);
    let factorization = hodlr.factorize().unwrap();
    let cfg = LanczosConfig {
        subspace: N,
        ..LanczosConfig::default()
    };
    let got = shift_invert_report(&hodlr, &factorization, 0.0, K, &cfg).unwrap();

    let evd = symmetric_evd(&hodlr.matrix().unwrap().to_dense()).unwrap();
    let scale = evd.values[N - 1].abs();
    for (i, &value) in got.values.iter().enumerate() {
        assert!(
            (value - evd.values[i]).abs() <= 1e-7 * scale,
            "pair {i}: {value} vs dense {}",
            evd.values[i]
        );
    }
    for &r in &got.residuals {
        assert!(r.is_finite() && r <= 1e-7, "residual {r}");
    }
}

/// Config and operand failures surface as typed errors, not panics.
#[test]
fn spectral_typed_errors_surface_through_the_facade() {
    let hodlr = build(64, Backend::Serial);

    let err = lanczos_report(
        &hodlr,
        0,
        SpectrumTarget::Largest,
        &LanczosConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, HodlrError::InvalidConfig { .. }), "{err}");

    let err = slq_trace(
        &hodlr,
        |x| x,
        &SlqConfig {
            probes: 0,
            ..SlqConfig::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, HodlrError::InvalidConfig { .. }), "{err}");

    // Operator and inverse of different sizes.
    let small = build(32, Backend::Serial);
    let factorization = small.factorize().unwrap();
    let err =
        shift_invert_report(&hodlr, &factorization, 0.0, 2, &LanczosConfig::default()).unwrap_err();
    assert!(matches!(err, HodlrError::DimensionMismatch { .. }), "{err}");

    // An indefinite operand with an even negative-eigenvalue count: the
    // determinant sign stays positive, SLQ's node inspection still
    // refuses it.
    let n = 64;
    let indefinite = ClosureSource::new(n, n, move |i, j| {
        if i != j {
            0.0
        } else if i < 2 {
            -1.0
        } else {
            2.0
        }
    });
    let hodlr = Hodlr::<f64>::builder()
        .source(&indefinite)
        .leaf_size(16)
        .tolerance(1e-12)
        .build()
        .unwrap();
    let err = slq_log_det(&hodlr, &SlqConfig::default()).unwrap_err();
    assert!(
        matches!(err, HodlrError::NotPositiveDefinite { .. }),
        "{err}"
    );
}
