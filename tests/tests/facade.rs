//! Integration tests for the `hodlr` façade: round-trip
//! build → factorize → solve across every backend × precision combination,
//! bitwise parity with the pre-redesign direct calls, and the typed error
//! paths (wrong-size RHS, zero-size tree, non-positive tolerance, strict
//! rank caps, solving before factorizing).

use hodlr::prelude::*;

/// A smooth, diagonally shifted 1-D kernel source: HODLR-compressible and
/// well conditioned.
fn kernel_source(n: usize) -> ClosureSource<f64, impl Fn(usize, usize) -> f64 + Sync> {
    ClosureSource::new(n, n, move |i, j| {
        let x = i as f64 / n as f64;
        let y = j as f64 / n as f64;
        let k = 1.0 / (1.0 + (x - y).abs() * n as f64 / 8.0);
        if i == j {
            k + 4.0
        } else {
            k
        }
    })
}

fn complex_source(n: usize) -> ClosureSource<Complex64, impl Fn(usize, usize) -> Complex64 + Sync> {
    ClosureSource::new(n, n, move |i, j| {
        let x = i as f64 / n as f64;
        let y = j as f64 / n as f64;
        let k = 1.0 / (1.0 + (x - y).abs() * n as f64 / 8.0);
        let phase = 0.3 * (x - y);
        let base = Complex64::new(k * phase.cos(), k * phase.sin());
        if i == j {
            base + Complex64::new(6.0, 0.0)
        } else {
            base
        }
    })
}

fn rhs_f64(n: usize) -> Vec<f64> {
    (0..n).map(|i| (0.11 * i as f64).sin()).collect()
}

fn rhs_c64(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new((0.07 * i as f64).cos(), (0.13 * i as f64).sin()))
        .collect()
}

/// Round trip through every backend × precision combination, real scalars.
#[test]
fn backend_precision_matrix_round_trips_f64() {
    let n = 256;
    let source = kernel_source(n);
    let b = rhs_f64(n);
    for backend in [Backend::Serial, Backend::Batched] {
        for precision in [Precision::Full, Precision::MixedRefine] {
            let hodlr = Hodlr::builder()
                .source(&source)
                .leaf_size(32)
                .tolerance(1e-10)
                .backend(backend)
                .precision(precision)
                .build()
                .unwrap();
            let f = hodlr.factorize().unwrap();
            assert_eq!(f.backend(), backend);
            assert_eq!(f.precision(), precision);
            let x = f.solve(&b).unwrap();
            let res = hodlr.relative_residual(&x, &b);
            let tol = match precision {
                Precision::Full => 1e-8,
                Precision::MixedRefine => 1e-11,
            };
            assert!(res < tol, "{backend:?} / {precision:?}: residual {res:.3e}");
        }
    }
}

/// The same matrix for complex scalars.
#[test]
fn backend_precision_matrix_round_trips_complex64() {
    let n = 192;
    let source = complex_source(n);
    let b = rhs_c64(n);
    for backend in [Backend::Serial, Backend::Batched] {
        for precision in [Precision::Full, Precision::MixedRefine] {
            let hodlr = Hodlr::builder()
                .source(&source)
                .leaf_size(32)
                .tolerance(1e-10)
                .backend(backend)
                .precision(precision)
                .build()
                .unwrap();
            let x = hodlr.factorize().unwrap().solve(&b).unwrap();
            let res = hodlr.relative_residual(&x, &b).to_f64();
            let tol = match precision {
                Precision::Full => 1e-8,
                Precision::MixedRefine => 1e-11,
            };
            assert!(res < tol, "{backend:?} / {precision:?}: residual {res:.3e}");
        }
    }
}

/// Acceptance criterion: both backend paths through the `Solve` trait
/// produce solutions matching the pre-redesign direct calls *bitwise*.
#[test]
fn facade_solves_match_direct_backend_calls_bitwise() {
    let n = 320;
    let source = kernel_source(n);
    let b = rhs_f64(n);

    let hodlr = Hodlr::builder()
        .source(&source)
        .leaf_size(32)
        .tolerance(1e-10)
        .build()
        .unwrap();

    // Pre-redesign serial spelling: factorize_serial + solve.
    let direct_serial = hodlr
        .matrix()
        .unwrap()
        .factorize_serial()
        .unwrap()
        .solve(&b);
    let facade_serial = hodlr.factorize().unwrap().solve(&b).unwrap();
    assert_eq!(facade_serial, direct_serial, "serial path must be bitwise");

    // Pre-redesign batched spelling: GpuSolver::new + factorize + solve.
    let device = Device::new();
    let mut gpu = GpuSolver::new(&device, hodlr.matrix().unwrap());
    gpu.factorize().unwrap();
    let direct_gpu = gpu.solve(&b).unwrap();
    let batched = Hodlr::builder()
        .source(&source)
        .leaf_size(32)
        .tolerance(1e-10)
        .backend(Backend::Batched)
        .build()
        .unwrap();
    let facade_gpu = batched.factorize().unwrap().solve(&b).unwrap();
    assert_eq!(facade_gpu, direct_gpu, "batched path must be bitwise");

    // And the block variants, column for column.
    let k = 3;
    let mut bm = DenseMatrix::<f64>::zeros(n, k);
    for j in 0..k {
        let col: Vec<f64> = (0..n)
            .map(|i| ((j + 1) as f64 * 0.05 * i as f64).cos())
            .collect();
        bm.col_mut(j).copy_from_slice(&col);
    }
    let direct_block = gpu.solve_matrix(&bm).unwrap();
    let facade_block = batched.factorize().unwrap().solve_block(&bm).unwrap();
    for j in 0..k {
        assert_eq!(facade_block.col(j), direct_block.col(j), "column {j}");
    }
}

/// `solve_many` packs, runs one blocked sweep, and unpacks — identical to
/// per-RHS solves on the same factorization.
#[test]
fn solve_many_matches_per_rhs_solves() {
    let n = 256;
    let source = kernel_source(n);
    let hodlr = Hodlr::builder()
        .source(&source)
        .leaf_size(32)
        .tolerance(1e-10)
        .backend(Backend::Batched)
        .build()
        .unwrap();
    let f = hodlr.factorize().unwrap();
    let rhs: Vec<Vec<f64>> = (0..4)
        .map(|j| {
            (0..n)
                .map(|i| ((j + 1) as f64 * 0.03 * i as f64).sin())
                .collect()
        })
        .collect();
    let many = f.solve_many(&rhs).unwrap();
    for (j, b) in rhs.iter().enumerate() {
        assert_eq!(many[j], f.solve(b).unwrap(), "column {j}");
    }
}

/// The `IterativeSolver` adapter speaks `Solve` too, and converges through
/// a loose preconditioner.
#[test]
fn iterative_adapter_solves_through_a_loose_preconditioner() {
    let n = 384;
    let source = kernel_source(n);
    let b = rhs_f64(n);

    let loose = Hodlr::builder()
        .source(&source)
        .leaf_size(32)
        .tolerance(1e-3)
        .backend(Backend::Batched)
        .build()
        .unwrap();
    for method in [KrylovMethod::Gmres { restart: 30 }, KrylovMethod::BiCgStab] {
        let solver = loose.iterative(method).unwrap().tol(1e-10);
        let x = solver.solve(&b).unwrap();
        let res = loose.relative_residual(&x, &b);
        assert!(res < 1e-9, "{method:?}: residual {res:.3e}");
        // The full report is available through `run`.
        let report = solver.run(&b).unwrap();
        assert!(report.converged);
        assert!(!report.residual_history.is_empty());
    }
}

/// Krylov non-convergence is a typed error carrying the iteration report.
#[test]
fn iterative_non_convergence_is_a_typed_error() {
    let n = 256;
    // A pseudo-random (full-rank off-diagonal) matrix: a rank-1-capped
    // HODLR preconditioner is a genuinely poor M^{-1} for it.
    let source = ClosureSource::new(n, n, |i, j| {
        // sin(c * i * j) is non-separable: effectively full-rank blocks.
        let noise = ((i * j) as f64 * 0.7 + i as f64 * 0.3).sin();
        if i == j {
            noise + 8.0
        } else {
            noise * 0.5
        }
    });
    let loose = Hodlr::builder()
        .source(&source)
        .leaf_size(32)
        .tolerance(1e-1)
        .max_rank(1)
        .build()
        .unwrap();
    // Solve the *exact* operator, not its loose approximation, so the
    // rank-1 preconditioner cannot make GMRES converge in two steps.
    let exact = SourceOperator::new(&source);
    let solver = loose
        .iterative(KrylovMethod::Gmres { restart: 5 })
        .unwrap()
        .with_operator(&exact)
        .unwrap()
        .tol(1e-15)
        .max_iters(2);
    let err = solver.solve(&rhs_f64(n)).unwrap_err();
    match err {
        HodlrError::NonConvergence {
            iterations,
            relative_residual,
            context,
        } => {
            assert_eq!(iterations, 2);
            assert!(relative_residual > 1e-14);
            assert!(context.contains("gmres"), "{context}");
        }
        other => panic!("unexpected error {other}"),
    }
}

/// Error path: a wrong-size right-hand side names itself.
#[test]
fn wrong_size_rhs_is_a_dimension_mismatch() {
    let n = 128;
    let source = kernel_source(n);
    for backend in [Backend::Serial, Backend::Batched] {
        let hodlr = Hodlr::builder()
            .source(&source)
            .leaf_size(32)
            .backend(backend)
            .build()
            .unwrap();
        let f = hodlr.factorize().unwrap();
        let err = f.solve(&vec![1.0; n - 1]).unwrap_err();
        assert!(
            matches!(
                err,
                HodlrError::DimensionMismatch {
                    expected: 128,
                    found: 127,
                    ..
                }
            ),
            "{backend:?}: {err}"
        );
        // Multi-RHS: the offending column is named.
        let rhs = vec![vec![1.0; n], vec![1.0; n + 2]];
        let err = f.solve_many(&rhs).unwrap_err();
        assert!(err.to_string().contains("right-hand side 1"), "{err}");
    }
}

/// Error path: a zero-size problem is rejected with a typed error.
#[test]
fn zero_size_tree_is_rejected() {
    let a = DenseMatrix::<f64>::zeros(0, 0);
    let err = Hodlr::builder().dense(&a).build().err().unwrap();
    assert!(matches!(err, HodlrError::InvalidConfig { .. }), "{err}");
    assert!(err.to_string().contains("zero-size tree"), "{err}");
}

/// Error path: non-positive tolerances are rejected before any work.
#[test]
fn non_positive_tolerance_is_rejected() {
    let source = kernel_source(64);
    for bad in [0.0, -1e-8, f64::NAN] {
        let err = Hodlr::builder()
            .source(&source)
            .tolerance(bad)
            .build()
            .err()
            .unwrap();
        assert!(
            matches!(err, HodlrError::InvalidConfig { .. }),
            "tol {bad}: {err}"
        );
        // The refinement tolerance is validated the same way.
        let err = Hodlr::builder()
            .source(&source)
            .refine_tolerance(bad)
            .build()
            .err()
            .unwrap();
        assert!(
            matches!(err, HodlrError::InvalidConfig { .. }),
            "refine tol {bad}: {err}"
        );
    }
    let err = Hodlr::builder()
        .source(&source)
        .refine_max_iters(0)
        .build()
        .err()
        .unwrap();
    assert!(err.to_string().contains("sweep cap"), "{err}");
}

/// Error path: missing input, zero leaf size, zero threads, too-deep trees.
#[test]
fn builder_configuration_errors_are_typed() {
    let source = kernel_source(64);
    let err = Hodlr::<f64>::builder().build().err().unwrap();
    assert!(err.to_string().contains("no input"), "{err}");

    let err = Hodlr::builder()
        .source(&source)
        .leaf_size(0)
        .build()
        .err()
        .unwrap();
    assert!(err.to_string().contains("leaf size"), "{err}");

    let err = Hodlr::builder()
        .source(&source)
        .threads(0)
        .build()
        .err()
        .unwrap();
    assert!(err.to_string().contains("thread count"), "{err}");

    let err = Hodlr::builder()
        .source(&source)
        .levels(12)
        .build()
        .err()
        .unwrap();
    assert!(err.to_string().contains("12 levels"), "{err}");

    // A level count at the shift-overflow boundary must be a typed error,
    // not a panic or a wrapped shift.
    let err = Hodlr::builder()
        .source(&source)
        .levels(usize::BITS as usize)
        .build()
        .err()
        .unwrap();
    assert!(matches!(err, HodlrError::InvalidConfig { .. }), "{err}");
}

/// Error path: a strict rank cap that cannot certify the tolerance fails
/// the build with `CompressionRankOverflow` naming the block.
#[test]
fn strict_rank_cap_overflow_fails_the_build() {
    let source = kernel_source(128);
    let err = Hodlr::builder()
        .source(&source)
        .leaf_size(32)
        .tolerance(1e-14)
        .max_rank(1)
        .strict_rank()
        .build()
        .err()
        .unwrap();
    assert!(
        matches!(err, HodlrError::CompressionRankOverflow { max_rank: 1, .. }),
        "{err}"
    );
    assert!(err.to_string().contains("node"), "{err}");
}

/// Error path: `MixedRefine` on a single-precision scalar is a typed
/// configuration error, not a compile failure or a panic.
#[test]
fn mixed_refine_on_f32_is_rejected() {
    let source = ClosureSource::new(64, 64, |i, j| {
        let k = 1.0f32 / (1.0 + (i as f32 - j as f32).abs());
        if i == j {
            k + 4.0
        } else {
            k
        }
    });
    let hodlr = Hodlr::builder()
        .source(&source)
        .leaf_size(16)
        .precision(Precision::MixedRefine)
        .build()
        .unwrap();
    let err = hodlr.factorize().err().unwrap();
    assert!(err.to_string().contains("double-precision"), "{err}");
}

/// A bare `HodlrMatrix` factorizes through the same trait (serial backend).
#[test]
fn hodlr_matrix_implements_factorize_directly() {
    let n = 128;
    let source = kernel_source(n);
    let hodlr = Hodlr::builder()
        .source(&source)
        .leaf_size(32)
        .tolerance(1e-10)
        .build()
        .unwrap();
    let b = rhs_f64(n);
    let via_matrix = hodlr
        .matrix()
        .unwrap()
        .factorize()
        .unwrap()
        .solve(&b)
        .unwrap();
    let via_handle = hodlr.factorize().unwrap().solve(&b).unwrap();
    assert_eq!(via_matrix, via_handle);
}

/// A dedicated `.threads(..)` pool produces bitwise-identical results to
/// the global pool (the workspace determinism contract) and in-place
/// variants match their allocating twins.
#[test]
fn dedicated_pool_and_in_place_variants_are_consistent() {
    let n = 256;
    let source = kernel_source(n);
    let b = rhs_f64(n);

    let on_global = Hodlr::builder()
        .source(&source)
        .leaf_size(32)
        .tolerance(1e-10)
        .backend(Backend::Batched)
        .build()
        .unwrap();
    let on_pool = Hodlr::builder()
        .source(&source)
        .leaf_size(32)
        .tolerance(1e-10)
        .backend(Backend::Batched)
        .threads(2)
        .build()
        .unwrap();

    let f_global = on_global.factorize().unwrap();
    let f_pool = on_pool.factorize().unwrap();
    let x_global = f_global.solve(&b).unwrap();
    let x_pool = f_pool.solve(&b).unwrap();
    assert_eq!(x_global, x_pool, "thread count must not change results");

    let mut x_in_place = b.clone();
    f_pool.solve_in_place(&mut x_in_place).unwrap();
    assert_eq!(x_in_place, x_pool);
}

/// Solving through an unfactorized batched solver is `NotFactorized`, not
/// a panic (trait path; the low-level inherent method still panics).
#[test]
fn unfactorized_gpu_solver_is_a_typed_error_through_the_trait() {
    let n = 64;
    let source = kernel_source(n);
    let hodlr = Hodlr::builder()
        .source(&source)
        .leaf_size(16)
        .build()
        .unwrap();
    let device = Device::new();
    let gpu = GpuSolver::new(&device, hodlr.matrix().unwrap());
    let err = Solve::solve(&gpu, &rhs_f64(n)).unwrap_err();
    assert!(matches!(err, HodlrError::NotFactorized), "{err}");
}

/// The build peak is metered on every facade build and a generous memory
/// budget does not change the result bitwise.
#[test]
fn memory_budget_meters_peaks_and_is_bitwise_invisible() {
    let n = 256;
    let source = kernel_source(n);
    let unbudgeted = Hodlr::builder()
        .source(&source)
        .leaf_size(32)
        .tolerance(1e-10)
        .build()
        .unwrap();
    assert!(unbudgeted.build_peak_bytes() > 0, "build was not metered");
    assert!(unbudgeted.build_peak_bytes() >= unbudgeted.storage_bytes());

    let budgeted = Hodlr::builder()
        .source(&source)
        .leaf_size(32)
        .tolerance(1e-10)
        .memory_budget(1 << 30)
        .build()
        .unwrap();
    let a = unbudgeted.matrix().expect("working precision");
    let b = budgeted.matrix().expect("working precision");
    assert_eq!(a.rank_profile(), b.rank_profile());
    let bits =
        |m: &DenseMatrix<f64>| -> Vec<u64> { m.data().iter().map(|v| v.to_bits()).collect() };
    assert_eq!(bits(a.ubig()), bits(b.ubig()));
}

/// An impossible budget fails the build with the typed error carrying the
/// budget and the size that broke it.
#[test]
fn exhausted_memory_budget_is_a_typed_error() {
    let n = 512;
    let source = kernel_source(n);
    let err = Hodlr::builder()
        .source(&source)
        .leaf_size(32)
        .tolerance(1e-10)
        .memory_budget(4 * 1024)
        .build()
        .err()
        .expect("budget must fail the build");
    match err {
        HodlrError::BudgetExceeded {
            budget_bytes,
            needed_bytes,
            ..
        } => {
            assert_eq!(budget_bytes, 4 * 1024);
            assert!(needed_bytes > budget_bytes);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

/// Compact (`f32`-storage) builds halve the stored bytes, hide the
/// working-precision matrix, and still solve to working accuracy through
/// iterative refinement.
#[test]
fn compact_storage_halves_bytes_and_refines_to_working_accuracy() {
    let n = 384;
    let source = kernel_source(n);
    let full = Hodlr::builder()
        .source(&source)
        .leaf_size(32)
        .tolerance(1e-10)
        .build()
        .unwrap();
    let compact = Hodlr::builder()
        .source(&source)
        .leaf_size(32)
        .tolerance(1e-10)
        .factor_precision(FactorPrecision::CompactLower)
        .build()
        .unwrap();
    assert!(compact.is_compact());
    assert!(!full.is_compact());
    assert!(compact.matrix().is_none());
    assert_eq!(compact.n(), n);
    assert!(compact.max_rank() > 0);
    // f32 entries: exactly half the bytes of the same-shape f64 store
    // would be ideal; ranks can differ slightly at f32 tolerance, so
    // assert a strict reduction with headroom.
    assert!(
        2 * compact.storage_bytes() <= full.storage_bytes() + full.storage_bytes() / 4,
        "compact {} vs full {}",
        compact.storage_bytes(),
        full.storage_bytes()
    );
    assert!(compact.storage_bytes() < full.storage_bytes());
    assert!(compact.build_peak_bytes() > 0);

    let b = rhs_f64(n);
    for backend in [Backend::Serial, Backend::Batched] {
        let compact = Hodlr::builder()
            .source(&source)
            .leaf_size(32)
            .tolerance(1e-10)
            .backend(backend)
            .factor_precision(FactorPrecision::CompactLower)
            .build()
            .unwrap();
        let f = compact.factorize().unwrap();
        let x = f.solve(&b).unwrap();
        let relres = compact.relative_residual(&x, &b);
        assert!(
            relres < 1e-9,
            "{backend:?}: refinement left relres {relres}"
        );
    }
}

/// Compact storage is rejected, typed, where it cannot work: f32 scalars
/// (no lower precision to demote to), symmetric structure-exploiting
/// builds, and adopted working-precision matrices.
#[test]
fn compact_storage_rejections_are_typed() {
    let n = 128;
    let source_f32 = ClosureSource::new(n, n, move |i: usize, j: usize| {
        let k = 1.0f32 / (1.0 + (i as f32 - j as f32).abs() / 8.0);
        if i == j {
            k + 4.0
        } else {
            k
        }
    });
    let err = Hodlr::builder()
        .source(&source_f32)
        .leaf_size(32)
        .tolerance(1e-5)
        .factor_precision(FactorPrecision::CompactLower)
        .build()
        .err()
        .expect("f32 compact build must fail");
    assert!(matches!(err, HodlrError::InvalidConfig { .. }), "{err:?}");

    let source = kernel_source(n);
    let err = Hodlr::builder()
        .source(&source)
        .leaf_size(32)
        .tolerance(1e-10)
        .symmetry(Symmetry::Hermitian)
        .factor_precision(FactorPrecision::CompactLower)
        .build()
        .err()
        .expect("symmetric compact build must fail");
    assert!(matches!(err, HodlrError::InvalidConfig { .. }), "{err:?}");

    let matrix = Hodlr::builder()
        .source(&source)
        .leaf_size(32)
        .tolerance(1e-10)
        .build()
        .unwrap()
        .into_matrix()
        .unwrap();
    let err = Hodlr::builder()
        .matrix(matrix)
        .factor_precision(FactorPrecision::CompactLower)
        .build()
        .err()
        .expect("adopted-matrix compact build must fail");
    assert!(matches!(err, HodlrError::InvalidConfig { .. }), "{err:?}");
}

/// Complex compact storage (Complex64 stored as Complex32) works through
/// the same refinement path.
#[test]
fn compact_storage_supports_complex_scalars() {
    let n = 256;
    let source = complex_source(n);
    let compact = Hodlr::builder()
        .source(&source)
        .leaf_size(32)
        .tolerance(1e-8)
        .factor_precision(FactorPrecision::CompactLower)
        .build()
        .unwrap();
    assert!(compact.is_compact());
    let b = rhs_c64(n);
    let f = compact.factorize().unwrap();
    let x = f.solve(&b).unwrap();
    assert!(compact.relative_residual(&x, &b) < 1e-9);
}
