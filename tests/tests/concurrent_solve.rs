//! One shared `Factorization`, many solver threads.
//!
//! The façade guarantees (and `crates/serve` relies on) a concurrency
//! contract: a completed [`Factorization`] is `Send + Sync`, every
//! [`Solve`] entry point takes `&self`, and a solve's result is a pure
//! function of its right-hand side — so N threads hammering one shared
//! factorization must produce answers **bitwise identical** to the serial
//! single-thread run, and the owning device's launch/flop counters must
//! total exactly N times one solve's bill (the counters are atomics fed by
//! per-entry flop counts that are pure functions of block shapes).

use hodlr::prelude::*;
use std::sync::Barrier;
use std::thread;

const N: usize = 384;
const THREADS: usize = 8;

// Compile-time half of the satellite: the shared-state types are
// Send + Sync by construction, not by accident.
const _: () = {
    const fn assert_send_sync<S: Send + Sync>() {}
    assert_send_sync::<Factorization<'static, f64>>();
    assert_send_sync::<Factorization<'static, Complex64>>();
    assert_send_sync::<Hodlr<f64>>();
    assert_send_sync::<Device>();
};

fn build(backend: Backend) -> Hodlr<f64> {
    let source = ClosureSource::new(N, N, |i, j| {
        let d = (i as f64 - j as f64).abs() / N as f64;
        (-4.0 * d).exp() + if i == j { 3.0 } else { 0.0 }
    });
    Hodlr::builder()
        .source(&source)
        .leaf_size(48)
        .tolerance(1e-10)
        .backend(backend)
        .build()
        .unwrap()
}

fn rhs(seed: usize) -> Vec<f64> {
    (0..N)
        .map(|i| ((i * 3 + seed * 17) as f64 * 0.02).cos())
        .collect()
}

#[test]
fn shared_factorization_is_bitwise_deterministic_under_threads() {
    for backend in [Backend::Serial, Backend::Batched] {
        let hodlr = build(backend);
        let factorization = hodlr.factorize().unwrap();

        // Serial ground truth, one thread, one right-hand side at a time.
        let expected: Vec<Vec<f64>> = (0..THREADS)
            .map(|s| factorization.solve(&rhs(s)).unwrap())
            .collect();

        // The same requests from THREADS threads at once, released
        // together through a barrier to maximise interleaving.
        let barrier = Barrier::new(THREADS);
        let got: Vec<(usize, Vec<f64>)> = thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|s| {
                    let factorization = &factorization;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        (s, factorization.solve(&rhs(s)).unwrap())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for (s, x) in got {
            assert_eq!(
                x, expected[s],
                "{backend:?}: thread {s} diverged from the serial answer"
            );
        }
    }
}

#[test]
fn device_counters_are_exact_under_concurrency() {
    let hodlr = build(Backend::Batched);
    let factorization = hodlr.factorize().unwrap();

    // The bill of one solve, metered alone.
    let (_, one) = hodlr
        .device()
        .meter(|| factorization.solve(&rhs(0)).unwrap());
    assert!(one.kernel_launches > 0 && one.flops > 0);

    // N concurrent solves must total exactly N bills: no lost updates, no
    // double counting, no schedule-dependent flop attribution.
    let barrier = Barrier::new(THREADS);
    let (_, total) = hodlr.device().meter(|| {
        thread::scope(|scope| {
            for s in 0..THREADS {
                let factorization = &factorization;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    factorization.solve(&rhs(s)).unwrap();
                });
            }
        });
    });
    assert_eq!(total.kernel_launches, one.kernel_launches * THREADS as u64);
    assert_eq!(total.flops, one.flops * THREADS as u64);
    assert_eq!(total.batch_entries, one.batch_entries * THREADS as u64);
}

#[test]
fn shared_blocked_solves_match_per_column_answers() {
    // Blocked solves from several threads at once: each thread's block
    // must equal the column-by-column serial answers, i.e. batching and
    // concurrency compose without changing bits.
    let hodlr = build(Backend::Batched);
    let factorization = hodlr.factorize().unwrap();

    let per_column: Vec<Vec<f64>> = (0..4)
        .map(|s| factorization.solve(&rhs(s)).unwrap())
        .collect();

    thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let factorization = &factorization;
                scope.spawn(move || {
                    let rhs_vecs: Vec<Vec<f64>> = (0..4).map(rhs).collect();
                    factorization.solve_many(&rhs_vecs).unwrap()
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), per_column);
        }
    });
}
