//! End-to-end integration tests: kernel matrices and boundary integral
//! equations solved through every solver in the workspace, cross-checked
//! against each other and against dense references.

use hodlr::prelude::{Backend, Factorize, Hodlr, Solve};
use hodlr_baselines::{DenseLuSolver, HodlrlibStyleSolver};
use hodlr_batch::Device;
use hodlr_bie::laplace::potential_from_sources;
use hodlr_bie::{HelmholtzExteriorBie, LaplaceExteriorBie, StarContour};
use hodlr_compress::{CompressionConfig, CompressionMethod, MatrixEntrySource};
use hodlr_core::{build_from_source, solve_recursive, ComplexityReport, GpuSolver};
use hodlr_kernels::{GaussianKernel, RpyKernel, RpyMatrixSource, ScalarKernelSource};
use hodlr_la::{Complex64, DenseMatrix, RealScalar};
use hodlr_sparse::ExtendedSystem;
use hodlr_tree::{partition_points, uniform_cube_points, ClusterTree};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every solver on one Gaussian kernel matrix: all agree with each other and
/// with the dense reference.
#[test]
fn all_solvers_agree_on_a_kernel_matrix() {
    let n = 600;
    let mut rng = StdRng::seed_from_u64(1);
    let cloud = uniform_cube_points(&mut rng, n, 3);
    let part = partition_points(&cloud, 48).unwrap();
    let source =
        ScalarKernelSource::with_shift(GaussianKernel { length_scale: 0.8 }, &part.points, 2.0);
    // The façade is the front door: one builder, backends by enum value.
    let hodlr = Hodlr::builder()
        .source(&source)
        .tree(part.tree.clone())
        .tolerance(1e-10)
        .build()
        .unwrap();
    let matrix = hodlr.matrix().expect("full-precision store");

    let dense = source.to_dense();
    let b: Vec<f64> = (0..n).map(|i| (0.1 * i as f64).cos()).collect();
    let x_dense = DenseLuSolver::new(&dense).unwrap().solve(&b);

    // Serial flattened solver, through the Solve trait.
    let x_serial = hodlr.factorize().unwrap().solve(&b).unwrap();
    // Batched solver on the virtual device, same trait, other enum value.
    let batched = Hodlr::builder()
        .source(&source)
        .tree(part.tree.clone())
        .tolerance(1e-10)
        .backend(Backend::Batched)
        .build()
        .unwrap();
    let x_gpu = batched.factorize().unwrap().solve(&b).unwrap();
    // Recursive oracle.
    let x_rec = hodlr_core::recursive::solve_recursive_vec(matrix, &b).unwrap();
    // HODLRlib-style baseline.
    let x_lib = HodlrlibStyleSolver::factorize(matrix).unwrap().solve(&b);
    // Block-sparse comparator.
    let x_bs = ExtendedSystem::new(matrix)
        .factorize(true)
        .unwrap()
        .solve(&b);

    for (label, x) in [
        ("serial", &x_serial),
        ("gpu", &x_gpu),
        ("recursive", &x_rec),
        ("hodlrlib", &x_lib),
        ("block-sparse", &x_bs),
    ] {
        let err: f64 = x
            .iter()
            .zip(&x_dense)
            .map(|(a, r)| (a - r).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-6, "{label}: max deviation from dense {err}");
    }
}

/// The RPY kernel system of Table III at a reduced size: solve and verify
/// the residual, and check that the off-diagonal ranks are modest.
#[test]
fn rpy_kernel_system_solves_accurately() {
    let particles = 400;
    let mut rng = StdRng::seed_from_u64(2);
    let cloud = uniform_cube_points(&mut rng, particles, 3);
    let part = partition_points(&cloud, 24).unwrap();
    let kernel = RpyKernel::paper_benchmark(part.points.min_distance());
    let source = RpyMatrixSource::new(kernel, &part.points);
    let n = 3 * particles;
    let tree = ClusterTree::with_leaf_size(n, 64);
    let matrix = build_from_source(&source, tree, &CompressionConfig::with_tol(1e-10)).unwrap();
    // Off-diagonal blocks are compressible but, with weak admissibility in
    // 3-D, not tiny: well below half the block size is what matters.
    assert!(
        matrix.max_rank() < matrix.n() / 2,
        "max rank {}",
        matrix.max_rank()
    );

    let f = matrix.factorize_serial().unwrap();
    let b = vec![1.0; n];
    let x = f.solve(&b);
    assert!(matrix.relative_residual(&x, &b) < 1e-7);
}

/// Laplace BIE end to end: HODLR-solve the discretized equation and verify
/// the exterior field against the manufactured potential (the physics-level
/// accuracy check, not just the linear-algebra residual).
#[test]
fn laplace_bie_reconstructs_the_exterior_field() {
    let n = 1024;
    let bie = LaplaceExteriorBie::new(StarContour::paper_contour(), n);
    let tree = ClusterTree::with_leaf_size(n, 64);
    let matrix = build_from_source(&bie, tree, &CompressionConfig::with_tol(1e-11)).unwrap();
    let sources = vec![([0.2, 0.1], 1.0), ([-0.3, 0.2], -0.5)];
    let f = bie.dirichlet_data_from_sources(&sources);

    let device = Device::new();
    let mut gpu = GpuSolver::new(&device, &matrix);
    gpu.factorize().unwrap();
    let sigma = gpu.solve(&f).unwrap();

    for x in [[3.0, 2.0], [-4.0, 0.5]] {
        let u = bie.evaluate_exterior(x, &sigma);
        let exact = potential_from_sources(x, &sources);
        assert!(
            (u - exact).abs() < 1e-6,
            "field error {}",
            (u - exact).abs()
        );
    }
}

/// Helmholtz BIE end to end with the complex-valued batched solver.
#[test]
fn helmholtz_bie_solves_with_complex_arithmetic() {
    let n = 900;
    let kappa = 8.0;
    let bie = HelmholtzExteriorBie::with_paper_parameters(StarContour::paper_contour(), n, kappa);
    let tree = ClusterTree::with_leaf_size(n, 64);
    let matrix = build_from_source(&bie, tree, &CompressionConfig::with_tol(1e-9)).unwrap();

    let sources = vec![([0.2, 0.0], 1.0)];
    let f = bie.dirichlet_data_from_sources(&sources);
    let device = Device::new();
    let mut gpu = GpuSolver::new(&device, &matrix);
    gpu.factorize().unwrap();
    let sigma = gpu.solve(&f).unwrap();
    assert!(matrix.relative_residual(&sigma, &f) < 1e-6);

    let x = [4.0, 1.0];
    let u = bie.evaluate_exterior(x, &sigma);
    let exact = bie.potential_from_sources(x, &sources);
    assert!((u - exact).modulus() < 1e-3 * exact.modulus().max(1e-2));
}

/// Tunable accuracy (the paper's "fast direct solver vs robust
/// preconditioner" trade-off): looser compression gives lower ranks, less
/// memory and a worse but still useful residual.
#[test]
fn accuracy_is_tunable_through_the_compression_tolerance() {
    let n = 800;
    let bie = LaplaceExteriorBie::new(StarContour::paper_contour(), n);
    let tree = ClusterTree::with_leaf_size(n, 64);
    let tight = build_from_source(&bie, tree.clone(), &CompressionConfig::with_tol(1e-12)).unwrap();
    let loose = build_from_source(&bie, tree, &CompressionConfig::with_tol(1e-4)).unwrap();
    assert!(loose.max_rank() <= tight.max_rank());
    assert!(loose.storage_entries() <= tight.storage_entries());

    let b: Vec<f64> = (0..n).map(|i| (0.05 * i as f64).sin()).collect();
    let x_tight = tight.factorize_serial().unwrap().solve(&b);
    let x_loose = loose.factorize_serial().unwrap().solve(&b);
    // Residuals are measured against the *discretized operator* (the dense
    // Nystrom matrix), mirroring the paper's relres column.
    let dense = bie.to_dense();
    let res = |x: &[f64]| -> f64 {
        let ax = dense.matvec(x);
        let num: f64 = ax.iter().zip(&b).map(|(a, bi)| (a - bi) * (a - bi)).sum();
        let den: f64 = b.iter().map(|bi| bi * bi).sum();
        (num / den).sqrt()
    };
    assert!(res(&x_tight) < 1e-9);
    assert!(res(&x_loose) > res(&x_tight));
    assert!(res(&x_loose) < 1e-2);
}

/// Single precision works through the same generic code paths and roughly
/// doubles neither accuracy nor memory (Table IV(b) runs in f32).
#[test]
fn single_precision_solver_runs_and_halves_memory() {
    let mut rng = StdRng::seed_from_u64(3);
    let m64 = hodlr_core::matrix::random_hodlr::<f64, _>(&mut rng, 256, 3, 4);
    let mut rng = StdRng::seed_from_u64(3);
    let m32 = hodlr_core::matrix::random_hodlr::<f32, _>(&mut rng, 256, 3, 4);
    assert_eq!(m32.storage_bytes() * 2, m64.storage_bytes());

    let b32 = vec![1.0f32; 256];
    let x32 = m32.factorize_serial().unwrap().solve(&b32);
    assert!(m32.relative_residual(&x32, &b32) < 1e-4);
}

/// The analytic complexity model tracks the metered flops of the batched
/// factorization across problem sizes (Theorem 3 vs the device counters).
#[test]
fn complexity_model_tracks_metered_flops_across_sizes() {
    let mut rng = StdRng::seed_from_u64(4);
    for &n in &[256usize, 512, 1024] {
        let matrix = hodlr_core::matrix::random_hodlr::<f64, _>(&mut rng, n, 3, 4);
        let report = ComplexityReport::for_matrix(&matrix);
        let device = Device::new();
        let mut gpu = GpuSolver::new(&device, &matrix);
        gpu.factorize().unwrap();
        let measured = device.counters().flops as f64;
        let ratio = measured / report.factorization_flops as f64;
        assert!((0.2..5.0).contains(&ratio), "N = {n}: ratio {ratio}");
    }
}

/// Multi-RHS solves through the recursive oracle and the batched solver give
/// the same answer for a complex HODLR matrix.
#[test]
fn complex_multi_rhs_solvers_agree() {
    let mut rng = StdRng::seed_from_u64(5);
    let matrix = hodlr_core::matrix::random_hodlr::<Complex64, _>(&mut rng, 192, 2, 3);
    let b: DenseMatrix<Complex64> = hodlr_la::random::random_matrix(&mut rng, 192, 3);
    let x_rec = solve_recursive(&matrix, &b).unwrap();
    let device = Device::new();
    let mut gpu = GpuSolver::new(&device, &matrix);
    gpu.factorize().unwrap();
    let x_gpu = gpu.solve_matrix(&b).unwrap();
    let diff = x_rec.sub(&x_gpu).norm_max();
    assert!(diff.to_f64() < 1e-8, "max difference {diff}");
}

/// Failure injection: a kernel matrix without diagonal regularisation over
/// coincident points produces a singular leaf, and every factorization path
/// reports it instead of returning garbage.
#[test]
fn singular_systems_are_reported_by_every_path() {
    // Two identical points give two identical rows -> singular leaf block.
    let coords = vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.1, 0.2, 0.3, 0.9, 0.8, 0.7];
    let cloud = hodlr_tree::PointCloud::new(3, coords);
    let source = ScalarKernelSource::new(GaussianKernel { length_scale: 1.0 }, &cloud);
    let tree = ClusterTree::uniform(4, 1);
    let cfg = CompressionConfig::with_tol(1e-12).method(CompressionMethod::TruncatedSvd);
    let matrix = build_from_source(&source, tree, &cfg).unwrap();
    assert!(matrix.factorize_serial().is_err());
    let device = Device::new();
    let mut gpu = GpuSolver::new(&device, &matrix);
    assert!(gpu.factorize().is_err());
    assert!(HodlrlibStyleSolver::factorize(&matrix).is_err());
}
