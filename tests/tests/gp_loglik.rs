//! The Gaussian-process log-likelihood subsystem, end to end: bitwise
//! serial-vs-batched `log_det` parity (the product form of Section
//! III-E(a) on both backends), GP log-marginal likelihood against the
//! dense Cholesky oracle, and the façade's `log_det` capability across
//! backends and precision policies.

use hodlr::prelude::*;
use hodlr_core::matrix::random_hodlr;
use hodlr_gp::{
    best_row, dense_log_likelihood, regular_grid_1d, GpConfig, GpModel, GridScan, KernelFamily,
    Matern, SquaredExponential,
};

/// Serial and batched `log_det` agree **bitwise**: same product-form
/// recursion over bitwise-identical LU factors (acceptance criterion).
#[test]
fn log_det_is_bitwise_identical_across_backends() {
    fn check<T: Scalar>(n: usize, levels: usize, rank: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let matrix: HodlrMatrix<T> = random_hodlr(&mut rng, n, levels, rank);
        let (log_serial, sign_serial) = matrix.factorize_serial().unwrap().log_det();
        let device = Device::new();
        let mut gpu = GpuSolver::new(&device, &matrix);
        gpu.factorize().unwrap();
        let (log_gpu, sign_gpu) = gpu.log_det().unwrap();
        assert_eq!(
            log_serial.to_f64().to_bits(),
            log_gpu.to_f64().to_bits(),
            "log|det| differs: {log_serial:?} vs {log_gpu:?}"
        );
        assert_eq!(sign_serial, sign_gpu, "sign differs");
    }
    check::<f64>(128, 3, 3, 0xd37);
    check::<f64>(257, 4, 2, 0xd38); // non-power-of-two
    check::<Complex64>(96, 3, 2, 0xd39);
    check::<Complex64>(64, 2, 4, 0xd3a);
}

/// Bitwise parity holds with *asymmetric* sibling ranks too (rank-1
/// upper-right vs rank-3 lower-left blocks, recovered by truncated SVD),
/// and both backends agree with the dense LU log-determinant.
#[test]
fn log_det_parity_with_asymmetric_sibling_ranks() {
    let n = 64;
    let h = n / 2;
    let mut a: DenseMatrix<f64> = DenseMatrix::zeros(n, n);
    for i in 0..n {
        a[(i, i)] = 10.0 + i as f64;
    }
    // Upper-right block: exactly rank 1; lower-left: exactly rank 3.
    for i in 0..h {
        for j in 0..h {
            a[(i, h + j)] = (1.0 + i as f64) * (2.0 + j as f64) / 256.0;
            let (x, y) = (i as f64, j as f64);
            a[(h + i, j)] = (x * y + (x * x) * (y * y) / 8.0 + 1.0) / 512.0;
        }
    }
    let hodlr = Hodlr::builder()
        .dense(&a)
        .levels(1)
        .tolerance(1e-12)
        .method(CompressionMethod::TruncatedSvd)
        .build()
        .unwrap();
    let matrix = hodlr.matrix().expect("full-precision store");
    let (alpha, beta) = matrix.tree().children(matrix.tree().root()).unwrap();
    assert_ne!(
        matrix.node_rank(alpha),
        0,
        "asymmetric blocks must compress to a nonzero rank"
    );
    assert_eq!(matrix.node_rank(alpha), matrix.node_rank(beta));

    let (log_serial, sign_serial) = matrix.factorize_serial().unwrap().log_det();
    let device = Device::new();
    let mut gpu = GpuSolver::new(&device, matrix);
    gpu.factorize().unwrap();
    let (log_gpu, sign_gpu) = gpu.log_det().unwrap();
    assert_eq!(log_serial.to_bits(), log_gpu.to_bits());
    assert_eq!(sign_serial, sign_gpu);

    // Both agree with the dense reference (through the 1e-12 compression).
    let (log_dense, sign_dense) = hodlr_la::LuFactor::new(&a).unwrap().log_det();
    assert!(
        (log_serial - log_dense).abs() < 1e-8,
        "{log_serial} vs {log_dense}"
    );
    assert!((sign_serial - sign_dense).abs() < 1e-12);
}

/// The façade's `log_det` capability: bitwise across `Backend::Serial`
/// and `Backend::Batched`, lower-precision-accurate under
/// `Precision::MixedRefine`, and a typed error on iterative solvers.
#[test]
fn facade_log_det_across_backends_and_precisions() {
    let n = 192;
    let source = ClosureSource::new(n, n, move |i, j| {
        1.0 / (1.0 + (i as f64 - j as f64).abs()) + if i == j { 4.0 } else { 0.0 }
    });
    let build = |backend, precision| {
        Hodlr::builder()
            .source(&source)
            .leaf_size(32)
            .tolerance(1e-11)
            .backend(backend)
            .precision(precision)
            .build()
            .unwrap()
    };

    let serial = build(Backend::Serial, Precision::Full);
    let serial_f = serial.factorize().unwrap();
    let (log_serial, sign_serial) = serial_f.log_det().unwrap();
    assert!(sign_serial > 0.0 && log_serial.is_finite());

    let batched = build(Backend::Batched, Precision::Full);
    let batched_f = batched.factorize().unwrap();
    let (log_batched, sign_batched) = batched_f.log_det().unwrap();
    assert_eq!(log_serial.to_bits(), log_batched.to_bits());
    assert_eq!(sign_serial, sign_batched);

    // MixedRefine promotes the f32 factors' log-determinant: ~7 digits.
    let mixed = build(Backend::Batched, Precision::MixedRefine);
    let mixed_f = mixed.factorize().unwrap();
    let (log_mixed, sign_mixed) = mixed_f.log_det().unwrap();
    // The sign is a product of normalized phases, exact only to rounding.
    assert!((sign_mixed - 1.0).abs() < 1e-5);
    assert!(
        (log_mixed - log_serial).abs() < 1e-3 * log_serial.abs().max(1.0),
        "{log_mixed} vs {log_serial}"
    );

    // Iterative solvers have no determinant: typed error, not a panic.
    let gmres = serial
        .iterative(KrylovMethod::Gmres { restart: 30 })
        .unwrap();
    let err = gmres.log_det().unwrap_err();
    assert!(matches!(err, HodlrError::InvalidConfig { .. }), "{err}");
}

/// Acceptance criterion: the GP log-marginal likelihood matches the dense
/// Cholesky oracle to `1e-8` at `n = 512` on both backends.
#[test]
fn gp_loglik_matches_dense_oracle_at_512_on_both_backends() {
    let n = 512;
    let points = regular_grid_1d(n, 0.0, 4.0);
    let kernel = Matern::three_halves(1.2, 0.4);
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let x = 4.0 * i as f64 / (n - 1) as f64;
            (2.0 * x).sin() + 0.3 * (5.0 * x).cos()
        })
        .collect();
    let noise = 1e-2;
    let dense = hodlr_compress::MatrixEntrySource::to_dense(&hodlr_gp::covariance_source(
        &kernel, &points, noise,
    ));
    let oracle = dense_log_likelihood(&dense, &y).unwrap();

    for backend in [Backend::Serial, Backend::Batched] {
        let config = GpConfig {
            backend,
            tolerance: 1e-12,
            ..GpConfig::default()
        };
        let model = GpModel::build(&kernel, &points, noise, &config).unwrap();
        let ll = model.log_likelihood(&y).unwrap();
        assert!(
            (ll.value - oracle.value).abs() < 1e-8,
            "{backend:?}: loglik {} vs oracle {}",
            ll.value,
            oracle.value
        );
        assert!((ll.log_det - oracle.log_det).abs() < 1e-8);
        assert!((ll.quadratic_form - oracle.quadratic_form).abs() < 1e-8);
    }
}

/// The hyperparameter grid scan drives the whole subsystem end to end on
/// the batched backend and recovers the generating length scale.
#[test]
fn grid_scan_on_the_batched_backend_recovers_hyperparameters() {
    let n = 256;
    let points = regular_grid_1d(n, 0.0, 4.0);
    let y: Vec<f64> = (0..n)
        .map(|i| (2.0 * (4.0 * i as f64 / (n - 1) as f64)).sin())
        .collect();
    let scan = GridScan {
        family: KernelFamily::SquaredExponential,
        length_scales: vec![0.05, 0.5, 5.0],
        variances: vec![0.5, 1.0],
        noises: vec![1e-4],
    };
    let config = GpConfig {
        backend: Backend::Batched,
        leaf_size: 32,
        ..GpConfig::default()
    };
    let rows = scan.run(&points, &y, &config).unwrap();
    assert_eq!(rows.len(), 6);
    let best = best_row(&rows).unwrap();
    assert_eq!(best.length_scale, 0.5, "best row: {best:?}");

    // A misspecified kernel family still scores, just worse: Matérn-1/2 on
    // this smooth signal loses to the squared exponential at the same
    // hyperparameters.
    let rough = GridScan {
        family: KernelFamily::MaternHalf,
        length_scales: vec![0.5],
        variances: vec![1.0],
        noises: vec![1e-4],
    };
    let rough_rows = rough.run(&points, &y, &config).unwrap();
    assert!(rough_rows[0].log_likelihood.value < best.log_likelihood.value);
}

/// A GP model built over *clustered* (spatially reordered) points goes
/// through the explicit-tree policy and stays oracle-accurate.
#[test]
fn clustered_point_sets_use_the_explicit_tree_policy() {
    let mut rng = StdRng::seed_from_u64(0x6a5);
    let part = hodlr_gp::clustered_points_1d(&mut rng, 384, 6, 32);
    let kernel = SquaredExponential {
        variance: 1.0,
        length_scale: 0.05,
    };
    let y: Vec<f64> = (0..384)
        .map(|i| (part.points.point(i)[0] * 20.0).sin())
        .collect();
    let noise = 1e-2;
    let dense = hodlr_compress::MatrixEntrySource::to_dense(&hodlr_gp::covariance_source(
        &kernel,
        &part.points,
        noise,
    ));
    let oracle = dense_log_likelihood(&dense, &y).unwrap();
    let config = GpConfig {
        backend: Backend::Batched,
        tolerance: 1e-12,
        tree: Some(part.tree.clone()),
        ..GpConfig::default()
    };
    let model = GpModel::build(&kernel, &part.points, noise, &config).unwrap();
    let ll = model.log_likelihood(&y).unwrap();
    assert!(
        (ll.value - oracle.value).abs() < 1e-7,
        "{} vs {}",
        ll.value,
        oracle.value
    );
}
