//! Determinism and metering across thread counts.
//!
//! The threading model (README, "Threading model") promises that every
//! parallel path writes task-private output slots in a fixed order, so
//! construction, factorization and solves are **bitwise identical** at any
//! thread count, and that the `Device` counters — atomics fed by per-entry
//! flop counts that are pure functions of block shapes — total identically
//! whatever the pool size.  These tests run the full pipeline inside
//! explicit 1-, 2- and 8-thread pools and assert exactly that.

use hodlr_baselines::HodlrlibStyleSolver;
use hodlr_batch::{CounterSnapshot, Device};
use hodlr_compress::CompressionConfig;
use hodlr_core::{
    build_from_source, build_from_source_symmetric, GpuSolver, GpuSymmetricSolver, HodlrMatrix,
    Symmetry,
};
use hodlr_kernels::{GaussianKernel, ScalarKernelSource};
use hodlr_sparse::ExtendedSystem;
use hodlr_tree::{partition_points, uniform_cube_points};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 512;
const NRHS: usize = 3;

/// The deterministic test operator: a shifted Gaussian kernel matrix over a
/// seeded point cloud, compressed at 1e-10.
fn test_matrix() -> HodlrMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(42);
    let cloud = uniform_cube_points(&mut rng, N, 3);
    let part = partition_points(&cloud, 48).unwrap();
    let source =
        ScalarKernelSource::with_shift(GaussianKernel { length_scale: 0.8 }, &part.points, 2.0);
    build_from_source(&source, part.tree, &CompressionConfig::with_tol(1e-10)).unwrap()
}

fn rhs_block() -> Vec<Vec<f64>> {
    (0..NRHS)
        .map(|j| (0..N).map(|i| (0.1 * i as f64 + j as f64).cos()).collect())
        .collect()
}

/// Everything the pipeline produces at one thread count, bitwise-comparable.
struct PipelineOutput {
    /// Flattened storage of the constructed HODLR approximation.
    dense: Vec<f64>,
    /// Single-RHS batched solve.
    x_gpu: Vec<f64>,
    /// Blocked multi-RHS solve.
    x_block: Vec<Vec<f64>>,
    /// HODLRlib-style recursive solve (exercises `rayon::join`).
    x_hodlrlib: Vec<f64>,
    /// Device counters after upload + factorization + both solves.
    counters: CounterSnapshot,
}

fn run_pipeline(threads: usize) -> PipelineOutput {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool");
    pool.install(|| {
        assert_eq!(rayon::current_num_threads(), threads);
        let matrix = test_matrix();
        let rhs = rhs_block();

        let device = Device::new();
        let mut gpu = GpuSolver::new(&device, &matrix);
        gpu.factorize().expect("batched factorization");
        let x_gpu = gpu.solve(&rhs[0]).expect("batched solve");
        let x_block = gpu.solve_block(&rhs).expect("batched block solve");

        let lib = HodlrlibStyleSolver::factorize(&matrix).expect("hodlrlib factorization");
        let x_hodlrlib = lib.solve(&rhs[0]);

        PipelineOutput {
            dense: matrix.to_dense().data().to_vec(),
            x_gpu,
            x_block,
            x_hodlrlib,
            counters: device.counters(),
        }
    })
}

/// The headline guarantee: 1, 2 and 8 threads produce bitwise-identical
/// construction, factorization and solve results, and identical metering.
#[test]
fn pipeline_is_bitwise_deterministic_across_thread_counts() {
    let base = run_pipeline(1);
    for threads in [2, 8] {
        let other = run_pipeline(threads);
        assert_eq!(base.dense, other.dense, "{threads}-thread construction");
        assert_eq!(base.x_gpu, other.x_gpu, "{threads}-thread solve");
        assert_eq!(base.x_block, other.x_block, "{threads}-thread solve_block");
        assert_eq!(
            base.x_hodlrlib, other.x_hodlrlib,
            "{threads}-thread hodlrlib solve"
        );
        assert_eq!(
            base.counters, other.counters,
            "{threads}-thread device counters"
        );
    }
    // Sanity: the metering actually measured something.
    assert!(base.counters.kernel_launches > 0);
    assert!(base.counters.flops > 0);
}

/// The Gaussian kernel matrix of [`test_matrix`] is SPD, so the same cloud
/// also pins down the symmetric fast path: one shared-basis compression.
fn test_matrix_symmetric() -> HodlrMatrix<f64> {
    let mut rng = StdRng::seed_from_u64(42);
    let cloud = uniform_cube_points(&mut rng, N, 3);
    let part = partition_points(&cloud, 48).unwrap();
    let source =
        ScalarKernelSource::with_shift(GaussianKernel { length_scale: 0.8 }, &part.points, 2.0);
    build_from_source_symmetric(&source, part.tree, &CompressionConfig::with_tol(1e-10)).unwrap()
}

/// Everything the symmetric pipeline produces at one thread count.
struct SymmetricOutput {
    /// Serial Cholesky-path solve.
    x_serial: Vec<f64>,
    /// Serial blocked multi-RHS solve (flattened storage).
    x_serial_block: Vec<f64>,
    /// Serial product-form log-determinant.
    log_det_serial: (f64, f64),
    /// Batched Cholesky-path solve.
    x_gpu: Vec<f64>,
    /// Batched blocked multi-RHS solve (flattened storage).
    x_gpu_block: Vec<f64>,
    /// Batched product-form log-determinant.
    log_det_gpu: (f64, f64),
    /// Device counters after upload + symmetric factorization + solves.
    counters: CounterSnapshot,
}

fn run_symmetric_pipeline(threads: usize) -> SymmetricOutput {
    use hodlr_la::DenseMatrix;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool");
    pool.install(|| {
        assert_eq!(rayon::current_num_threads(), threads);
        let matrix = test_matrix_symmetric();
        assert!(matrix.shares_bases(), "symmetric build shares bases");
        let rhs = rhs_block();
        let block = DenseMatrix::from_fn(N, NRHS, |i, j| rhs[j][i]);

        let serial = matrix
            .factorize_symmetric(Symmetry::PositiveDefinite)
            .expect("serial symmetric factorization");
        let x_serial = serial.solve(&rhs[0]);
        let x_serial_block = serial.solve_matrix(&block);
        let log_det_serial = serial.log_det();

        let device = Device::new();
        let mut gpu = GpuSymmetricSolver::new(&device, &matrix, Symmetry::PositiveDefinite)
            .expect("solver construction");
        gpu.factorize().expect("batched symmetric factorization");
        let x_gpu = gpu.solve(&rhs[0]).expect("batched symmetric solve");
        let x_gpu_block = gpu.solve_matrix(&block).expect("batched block solve");
        let log_det_gpu = gpu.log_det().expect("batched log_det");

        SymmetricOutput {
            x_serial,
            x_serial_block: x_serial_block.data().to_vec(),
            log_det_serial,
            x_gpu,
            x_gpu_block: x_gpu_block.data().to_vec(),
            log_det_gpu,
            counters: device.counters(),
        }
    })
}

/// The symmetric fast path inherits the determinism contract: 1, 2 and 8
/// threads produce bitwise-identical Cholesky-path factorization, solve
/// and `log_det` results on both backends, with identical metering — and
/// the two backends agree bitwise with each other at every thread count.
#[test]
fn symmetric_pipeline_is_bitwise_deterministic_across_thread_counts() {
    let base = run_symmetric_pipeline(1);
    for threads in [2, 8] {
        let other = run_symmetric_pipeline(threads);
        assert_eq!(base.x_serial, other.x_serial, "{threads}-thread serial");
        assert_eq!(
            base.x_serial_block, other.x_serial_block,
            "{threads}-thread serial block"
        );
        assert_eq!(
            base.log_det_serial, other.log_det_serial,
            "{threads}-thread serial log_det"
        );
        assert_eq!(base.x_gpu, other.x_gpu, "{threads}-thread batched");
        assert_eq!(
            base.x_gpu_block, other.x_gpu_block,
            "{threads}-thread batched block"
        );
        assert_eq!(
            base.log_det_gpu, other.log_det_gpu,
            "{threads}-thread batched log_det"
        );
        assert_eq!(
            base.counters, other.counters,
            "{threads}-thread device counters"
        );
    }
    // Serial and batched symmetric paths agree bitwise by construction
    // (same blocked kernels, same iteration order).
    assert_eq!(base.x_serial, base.x_gpu);
    assert_eq!(base.x_serial_block, base.x_gpu_block);
    assert_eq!(
        base.log_det_serial.0.to_bits(),
        base.log_det_gpu.0.to_bits()
    );
    assert_eq!(
        base.log_det_serial.1.to_bits(),
        base.log_det_gpu.1.to_bits()
    );
    assert!(base.counters.flops > 0);
}

/// The block-sparse comparator's parallel Schur updates are computed on the
/// pool but applied in fixed order: parallel and sequential factorizations
/// of the same extended system solve to bitwise-equal vectors.
#[test]
fn block_sparse_parallel_matches_sequential_bitwise() {
    let matrix = test_matrix();
    let b: Vec<f64> = (0..N).map(|i| (0.05 * i as f64).sin()).collect();
    let ext = ExtendedSystem::new(&matrix);
    let x_seq = ext.factorize(false).expect("sequential").solve(&b);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .expect("pool");
    let x_par = pool.install(|| ext.factorize(true).expect("parallel").solve(&b));
    assert_eq!(x_seq, x_par);
}

/// Multi-RHS blocked solves agree column-for-column with per-RHS solves —
/// batching changes the launch count, not the arithmetic per column.
#[test]
fn solve_block_matches_per_rhs_solves() {
    let matrix = test_matrix();
    let rhs = rhs_block();
    let device = Device::new();
    let mut gpu = GpuSolver::new(&device, &matrix);
    gpu.factorize().expect("factorization");
    let block = gpu.solve_block(&rhs).unwrap();
    for (j, b) in rhs.iter().enumerate() {
        let single = gpu.solve(b).unwrap();
        let err: f64 = block[j]
            .iter()
            .zip(&single)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-12, "column {j}: max deviation {err}");
    }
}

/// A panic inside a parallel compression task propagates to the caller and
/// leaves the pool usable for the next factorization.
#[test]
fn panics_in_parallel_tasks_propagate_and_pool_survives() {
    use hodlr_compress::ClosureSource;
    use hodlr_tree::ClusterTree;
    let poisoned = ClosureSource::new(256, 256, |i, j| {
        assert!(i < 200 || j < 200, "poisoned block");
        let x = i as f64 / 256.0;
        let y = j as f64 / 256.0;
        let k = 1.0 / (1.0 + (x - y).abs() * 32.0);
        if i == j {
            k + 4.0
        } else {
            k
        }
    });
    let result = std::panic::catch_unwind(|| {
        build_from_source(
            &poisoned,
            ClusterTree::with_leaf_size(256, 32),
            &CompressionConfig::with_tol(1e-8),
        )
    });
    assert!(result.is_err(), "the poisoned entry must panic the build");
    // The pool survives and the next build succeeds.
    let matrix = test_matrix();
    assert_eq!(matrix.n(), N);
}

/// The dense kernel layer itself is bitwise deterministic across pool
/// sizes: the blocked `gemm` splits `C` into tiles whose boundaries depend
/// only on the problem dims, and the blocked LU / Cholesky / compact-WY QR
/// inherit that by routing their trailing updates through `gemm`.  This
/// pins the contract at the layer below the solver pipeline.
#[test]
fn dense_kernels_bitwise_deterministic_across_thread_counts() {
    use hodlr_la::blas::Op;
    use hodlr_la::cholesky::potrf_in_place;
    use hodlr_la::lu::getrf_in_place;
    use hodlr_la::qr::thin_qr;
    use hodlr_la::random::random_matrix;
    use hodlr_la::DenseMatrix;

    // Big enough to cross the blocked/parallel thresholds in every kernel.
    let (m, n, k) = (260, 200, 300);
    let run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| {
            let mut rng = StdRng::seed_from_u64(99);
            let a: DenseMatrix<f64> = random_matrix(&mut rng, m, k);
            let b: DenseMatrix<f64> = random_matrix(&mut rng, k, n);
            let mut c = DenseMatrix::<f64>::zeros(m, n);
            hodlr_la::gemm(
                1.0,
                a.as_ref(),
                Op::None,
                b.as_ref(),
                Op::None,
                0.0,
                c.as_mut(),
            );
            // A^T * B exercises the packed transpose path.
            let mut ct = DenseMatrix::<f64>::zeros(k, k);
            hodlr_la::gemm(
                1.0,
                a.as_ref(),
                Op::Trans,
                a.as_ref(),
                Op::None,
                0.0,
                ct.as_mut(),
            );
            let square: DenseMatrix<f64> = random_matrix(&mut rng, m, m);
            let mut lu = square.clone();
            let piv = getrf_in_place(lu.as_mut()).expect("nonsingular");
            // A^T A + m I is SPD: the blocked Cholesky must match bitwise
            // too (its trailing updates also route through gemm).
            let mut spd = ct.clone();
            for i in 0..k {
                spd[(i, i)] += m as f64;
            }
            potrf_in_place(spd.as_mut()).expect("SPD by construction");
            let (q, r) = thin_qr(&a);
            (
                c.into_data(),
                ct.into_data(),
                lu.into_data(),
                piv,
                spd.into_data(),
                q.into_data(),
                r.into_data(),
            )
        })
    };
    let base = run(1);
    for threads in [2, 8] {
        let other = run(threads);
        assert_eq!(base.0, other.0, "{threads}-thread gemm");
        assert_eq!(base.1, other.1, "{threads}-thread gemm (trans)");
        assert_eq!(base.2, other.2, "{threads}-thread LU factors");
        assert_eq!(base.3, other.3, "{threads}-thread LU pivots");
        assert_eq!(base.4, other.4, "{threads}-thread Cholesky factors");
        assert_eq!(base.5, other.5, "{threads}-thread QR Q factor");
        assert_eq!(base.6, other.6, "{threads}-thread QR R factor");
    }
}

/// Wall-clock speedup of the batched factorization at 1 vs. many threads.
/// Only meaningful on a multi-core runner, hence ignored by default; run
/// with `cargo test -p hodlr-tests -- --ignored threading_speedup`.
#[test]
#[ignore = "timing assertion; requires a multi-core runner"]
fn threading_speedup_on_multicore() {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    assert!(threads >= 2, "speedup needs a multi-core machine");
    let time_at = |t: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .unwrap();
        pool.install(|| {
            let mut rng = StdRng::seed_from_u64(7);
            let cloud = uniform_cube_points(&mut rng, 4096, 3);
            let part = partition_points(&cloud, 64).unwrap();
            let source = ScalarKernelSource::with_shift(
                GaussianKernel { length_scale: 0.8 },
                &part.points,
                2.0,
            );
            let start = std::time::Instant::now();
            let matrix =
                build_from_source(&source, part.tree, &CompressionConfig::with_tol(1e-8)).unwrap();
            let device = Device::new();
            let mut gpu = GpuSolver::new(&device, &matrix);
            gpu.factorize().expect("factorization");
            start.elapsed().as_secs_f64()
        })
    };
    let t1 = time_at(1);
    let tn = time_at(threads);
    assert!(
        tn < 0.8 * t1,
        "expected speedup over 1 thread: t1 = {t1:.3}s, t{threads} = {tn:.3}s"
    );
}

/// The scale-out path end to end — shuffled 3-D surface cloud, spatial
/// partitioning, streaming budgeted facade build, factorization, solve —
/// is bitwise identical in 1-, 2- and 8-thread pools, at both storage
/// precisions.
#[test]
fn surface_scale_pipeline_is_bitwise_deterministic_across_thread_counts() {
    use hodlr::prelude::*;
    use hodlr_bie::LaplaceSurfaceSource;

    let run = |threads: usize, precision: FactorPrecision| -> Vec<u64> {
        let cloud = hodlr_bie::fibonacci_sphere_cloud(400);
        let source = LaplaceSurfaceSource::new(&cloud, 32).unwrap();
        let tree = source.tree().clone();
        let hodlr = Hodlr::builder()
            .source(&source)
            .tree(tree)
            .tolerance(1e-8)
            .memory_budget(256 << 20)
            .factor_precision(precision)
            .threads(threads)
            .build()
            .unwrap();
        let f = hodlr.factorize().unwrap();
        let b: Vec<f64> = (0..400).map(|i| (0.21 * i as f64).sin() + 1.5).collect();
        let x = f.solve(&b).unwrap();
        let mut sig: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
        sig.push(hodlr.storage_bytes());
        sig.push(hodlr.build_peak_bytes());
        sig
    };
    for precision in [FactorPrecision::Working, FactorPrecision::CompactLower] {
        let sigs: Vec<Vec<u64>> = [1usize, 2, 8].map(|t| run(t, precision)).to_vec();
        assert_eq!(sigs[0], sigs[1], "{precision:?}: 1 vs 2 threads");
        assert_eq!(sigs[1], sigs[2], "{precision:?}: 2 vs 8 threads");
    }
}
