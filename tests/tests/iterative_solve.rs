//! Integration tests for the `hodlr-solver` subsystem: Krylov methods
//! cross-checked against the recursive oracle, blocked multi-RHS solves
//! against per-RHS loops (values and launch counts), mixed precision
//! against full double precision, and the paper's Table V(b) scenario
//! (loose HODLR preconditioner on the ill-conditioned Helmholtz system).

use hodlr_batch::Device;
use hodlr_bench::workloads::resolved_kappa;
use hodlr_bench::{helmholtz_hodlr, laplace_hodlr};
use hodlr_core::{solve_recursive, GpuSolver};
use hodlr_la::{Complex64, DenseMatrix, RealScalar};
use hodlr_solver::{
    iterative_refinement, mixed_precision_solve, BiCgStab, Gmres, GpuPreconditioner,
    RefinementOptions, SerialPreconditioner,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Preconditioned GMRES on the Laplace BIE agrees with the recursive
/// oracle of Theorem 1.
#[test]
fn gmres_matches_the_recursive_oracle_on_laplace() {
    let n = 1024;
    let (_bie, exact) = laplace_hodlr(n, 1e-11);
    let (_bie, rough) = laplace_hodlr(n, 1e-4);
    let b: Vec<f64> = (0..n).map(|i| (0.07 * i as f64).sin()).collect();

    let precond = SerialPreconditioner::from_matrix(&rough).unwrap();
    let out = Gmres::new()
        .tol(1e-10)
        .solve_preconditioned(&exact, &precond, &b)
        .unwrap()
        .expect_converged("laplace gmres");

    let b_mat = DenseMatrix::from_col_major(n, 1, b.clone());
    let oracle = solve_recursive(&exact, &b_mat).unwrap();
    let scale = oracle.data().iter().fold(0.0f64, |m, v| m.max(v.abs()));
    for (xi, oi) in out.x.iter().zip(oracle.data()) {
        assert!(
            (xi - oi).abs() < 1e-7 * scale.max(1.0),
            "{xi} vs oracle {oi}"
        );
    }
}

/// BiCGStab converges on the same Laplace system and agrees with the
/// oracle.
#[test]
fn bicgstab_converges_on_laplace() {
    let n = 1024;
    let (_bie, exact) = laplace_hodlr(n, 1e-11);
    let (_bie, rough) = laplace_hodlr(n, 1e-4);
    let b: Vec<f64> = (0..n).map(|i| (0.03 * i as f64).cos()).collect();

    let precond = SerialPreconditioner::from_matrix(&rough).unwrap();
    let out = BiCgStab::new()
        .tol(1e-10)
        .solve_preconditioned(&exact, &precond, &b)
        .unwrap()
        .expect_converged("laplace bicgstab");
    assert!(out.relative_residual < 1e-10);

    let b_mat = DenseMatrix::from_col_major(n, 1, b.clone());
    let oracle = solve_recursive(&exact, &b_mat).unwrap();
    for (xi, oi) in out.x.iter().zip(oracle.data()) {
        assert!((xi - oi).abs() < 1e-6, "{xi} vs oracle {oi}");
    }
}

/// The blocked multi-RHS solve returns, column for column, exactly what a
/// loop of single-RHS solves returns — on both factorization backends.
#[test]
fn solve_block_matches_per_rhs_solves_column_for_column() {
    let mut rng = StdRng::seed_from_u64(0xb10c);
    let matrix = hodlr_core::matrix::random_hodlr::<f64, _>(&mut rng, 256, 3, 3);
    let rhs: Vec<Vec<f64>> = (0..5)
        .map(|_| hodlr_la::random::random_vector(&mut rng, 256))
        .collect();

    // Serial backend.
    let serial = matrix.factorize_serial().unwrap();
    let block = serial.solve_block(&rhs);
    for (j, b) in rhs.iter().enumerate() {
        let single = serial.solve(b);
        assert_eq!(block[j], single, "serial column {j} differs");
    }

    // Batched backend on the virtual device.
    let device = Device::new();
    let mut gpu = GpuSolver::new(&device, &matrix);
    gpu.factorize().unwrap();
    let block = gpu.solve_block(&rhs).unwrap();
    for (j, b) in rhs.iter().enumerate() {
        let single = gpu.solve(b).unwrap();
        assert_eq!(block[j], single, "gpu column {j} differs");
    }
}

/// The blocked solve sweeps all right-hand sides through each level in one
/// batched launch: strictly fewer kernel launches than the equivalent
/// per-RHS loop, for the same answers (acceptance criterion).
#[test]
fn solve_block_issues_fewer_launches_than_a_per_rhs_loop() {
    let mut rng = StdRng::seed_from_u64(0xc0de);
    let matrix = hodlr_core::matrix::random_hodlr::<f64, _>(&mut rng, 512, 3, 2);
    let nrhs = 8;
    let rhs: Vec<Vec<f64>> = (0..nrhs)
        .map(|_| hodlr_la::random::random_vector(&mut rng, 512))
        .collect();

    let device = Device::new();
    let mut gpu = GpuSolver::new(&device, &matrix);
    gpu.factorize().unwrap();

    let before = device.counters();
    let block = gpu.solve_block(&rhs).unwrap();
    let blocked = device.counters().since(&before);

    let before = device.counters();
    let looped: Vec<Vec<f64>> = rhs.iter().map(|b| gpu.solve(b).unwrap()).collect();
    let per_rhs = device.counters().since(&before);

    assert_eq!(block, looped, "blocked and looped solves disagree");
    assert!(
        blocked.kernel_launches * (nrhs as u64) <= per_rhs.kernel_launches,
        "blocked path: {} launches, per-RHS loop: {} launches",
        blocked.kernel_launches,
        per_rhs.kernel_launches
    );
    // The per-RHS loop replays the launch sequence once per RHS.
    assert_eq!(
        per_rhs.kernel_launches,
        blocked.kernel_launches * nrhs as u64
    );
}

/// Mixed precision: factorize the HODLR approximation in f32, refine the
/// solve to full double-precision accuracy (acceptance criterion: 1e-12
/// relative residual).
#[test]
fn mixed_precision_refinement_reaches_double_precision() {
    let n = 1024;
    let (_bie, matrix) = laplace_hodlr(n, 1e-11);
    let b: Vec<f64> = (0..n).map(|i| (0.05 * i as f64).sin()).collect();
    let out = mixed_precision_solve(
        &matrix,
        &matrix,
        &b,
        RefinementOptions {
            tol: 1e-12,
            max_iters: 30,
        },
    )
    .unwrap();
    assert!(
        out.solution.converged,
        "stalled at {:.3e} after {} sweeps",
        out.solution.relative_residual, out.solution.iterations
    );
    assert!(out.solution.relative_residual <= 1e-12);
    assert!(
        out.solution.iterations <= 8,
        "f32 factorization should gain ~7 digits per sweep, took {}",
        out.solution.iterations
    );
    assert!(out.factorization_flops > 0 && out.refinement_flops > 0);
}

/// The Table V(b) acceptance scenario: N = 2048 Helmholtz combined-field
/// system, 1e-3 HODLR preconditioner, GMRES to 1e-8 relative residual in
/// at most 25 iterations.
#[test]
fn helmholtz_2048_converges_within_25_iterations() {
    let n = 2048;
    let kappa = resolved_kappa(n);
    let (_bie, exact) = helmholtz_hodlr(n, kappa, 1e-10);
    let (_bie, rough) = helmholtz_hodlr(n, kappa, 1e-3);

    let device = Device::new();
    let precond = GpuPreconditioner::from_matrix(&device, &rough).unwrap();
    let b: Vec<Complex64> = (0..n)
        .map(|i| Complex64::cis(kappa * (i as f64 / n as f64)))
        .collect();

    let out = Gmres::new()
        .tol(1e-8)
        .max_iters(100)
        .solve_preconditioned(&exact, &precond, &b)
        .unwrap()
        .expect_converged("helmholtz 2048 gmres");
    assert!(
        out.iterations <= 25,
        "needed {} iterations (residual history {:?})",
        out.iterations,
        out.residual_history
    );
    assert!(exact.relative_residual(&out.x, &b).to_f64() < 1e-7);
}

/// Complex-arithmetic BiCGStab and plain preconditioned refinement also
/// solve the Helmholtz system, at a smaller size.
#[test]
fn helmholtz_bicgstab_and_refinement_converge() {
    let n = 768;
    let kappa = resolved_kappa(n);
    let (_bie, exact) = helmholtz_hodlr(n, kappa, 1e-10);
    let (_bie, rough) = helmholtz_hodlr(n, kappa, 1e-4);
    let precond = SerialPreconditioner::from_matrix(&rough).unwrap();
    let b: Vec<Complex64> = (0..n)
        .map(|i| Complex64::new((0.04 * i as f64).cos(), (0.09 * i as f64).sin()))
        .collect();

    let out = BiCgStab::new()
        .tol(1e-9)
        .solve_preconditioned(&exact, &precond, &b)
        .unwrap()
        .expect_converged("helmholtz bicgstab");
    assert!(out.relative_residual < 1e-9);

    let refined = iterative_refinement(
        &exact,
        &precond,
        &b,
        RefinementOptions {
            tol: 1e-9,
            max_iters: 50,
        },
    )
    .unwrap();
    assert!(
        refined.converged,
        "refinement relres {}",
        refined.relative_residual
    );
}
