//! Cross-crate integration helpers (the actual tests live in `tests/tests`).

/// The compression tolerance used by most integration scenarios.
pub const DEFAULT_TOL: f64 = 1e-9;
