//! Laplace exterior Dirichlet problem (Section IV-B): discretize the
//! boundary integral equation (21) on the star contour, solve it with the
//! HODLR direct solver through the façade, and verify the reconstructed
//! exterior field against a manufactured exact solution.

use hodlr::prelude::*;
use hodlr_bench::laplace_hodlr;
use hodlr_bie::laplace::potential_from_sources;

fn main() {
    let n = hodlr_examples::arg_usize("--n", 4096);
    let tol = hodlr_examples::arg_f64("--tol", 1e-10);
    println!("Laplace exterior BIE on the star contour: N = {n}, compression tol = {tol:.1e}");

    let (bie, matrix) = laplace_hodlr(n, tol);
    println!("max off-diagonal rank: {}", matrix.max_rank());

    // Manufactured boundary data from interior log sources.
    let sources = vec![([0.2, 0.1], 1.0), ([-0.4, 0.0], -0.3), ([0.1, -0.25], 0.6)];
    let f = bie.dirichlet_data_from_sources(&sources);

    let hodlr = Hodlr::builder()
        .matrix(matrix)
        .backend(Backend::Batched)
        .build()
        .expect("adopting the BIE matrix");
    let sigma = hodlr
        .factorize()
        .expect("factorization")
        .solve(&f)
        .expect("solve");
    println!(
        "linear-system residual: {:.2e}",
        hodlr.relative_residual(&sigma, &f)
    );

    // Evaluate the exterior field and compare with the exact potential.
    for x in [[3.0, 1.0], [0.0, 5.0], [-4.0, -2.0]] {
        let u = bie.evaluate_exterior(x, &sigma);
        let exact = potential_from_sources(x, &sources);
        println!(
            "u({x:?}) = {u:+.8e}   exact {exact:+.8e}   error {:.2e}",
            (u - exact).abs()
        );
    }
}
