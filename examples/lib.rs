//! Shared helpers for the example binaries: tiny argument parsing so every
//! example can be scaled up from the command line.

/// Read an integer argument of the form `--n 4096`, falling back to a
/// default.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == name {
            if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    default
}

/// Read a float argument of the form `--tol 1e-8`, falling back to a
/// default.
pub fn arg_f64(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == name {
            if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    default
}

#[cfg(test)]
mod tests {
    #[test]
    fn defaults_are_returned_without_matching_arguments() {
        assert_eq!(super::arg_usize("--does-not-exist", 7), 7);
        assert_eq!(super::arg_f64("--does-not-exist", 0.5), 0.5);
    }
}
