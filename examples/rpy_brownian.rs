//! Brownian-dynamics style example (Section IV-A): solve mobility systems
//! with the Rotne-Prager-Yamakawa kernel over a cloud of particles, the
//! workload of Table III, and compare the façade's batched backend against
//! the HODLRlib-style baseline.

use hodlr::prelude::*;
use hodlr_baselines::HodlrlibStyleSolver;
use hodlr_bench::rpy_hodlr;
use std::time::Instant;

fn main() {
    let particles = hodlr_examples::arg_usize("--particles", 2048);
    let tol = hodlr_examples::arg_f64("--tol", 1e-10);
    let n = 3 * particles;
    println!("RPY mobility problem: {particles} particles, matrix size N = {n}, tol = {tol:.1e}");

    let hodlr = Hodlr::builder()
        .matrix(rpy_hodlr(n, tol))
        .backend(Backend::Batched)
        .build()
        .expect("adopting the RPY matrix");
    println!(
        "rank profile (level 1 -> leaves): {:?}",
        hodlr
            .matrix()
            .expect("built in working precision")
            .rank_profile()
    );

    // Force vector: unit force in x on every particle.
    let mut b = vec![0.0; hodlr.n()];
    for i in (0..hodlr.n()).step_by(3) {
        b[i] = 1.0;
    }

    let start = Instant::now();
    let factorization = hodlr.factorize().expect("factorization");
    let t_factor = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let x = factorization.solve(&b).expect("solve");
    let t_solve = start.elapsed().as_secs_f64();
    println!(
        "batched solver: factorization {t_factor:.3} s, solve {t_solve:.4} s, relres {:.2e}",
        hodlr.relative_residual(&x, &b)
    );

    let start = Instant::now();
    let lib = HodlrlibStyleSolver::factorize(hodlr.matrix().expect("built in working precision"))
        .expect("factorization");
    let t_factor_lib = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let x_lib = lib.solve(&b);
    let t_solve_lib = start.elapsed().as_secs_f64();
    println!(
        "HODLRlib-style: factorization {t_factor_lib:.3} s, solve {t_solve_lib:.4} s, relres {:.2e}",
        hodlr.relative_residual(&x_lib, &b)
    );
}
