//! Brownian-dynamics style example (Section IV-A): solve mobility systems
//! with the Rotne-Prager-Yamakawa kernel over a cloud of particles, the
//! workload of Table III, and compare the direct solve against the
//! HODLRlib-style baseline.

use hodlr_baselines::HodlrlibStyleSolver;
use hodlr_batch::Device;
use hodlr_bench::rpy_hodlr;
use hodlr_core::GpuSolver;
use std::time::Instant;

fn main() {
    let particles = hodlr_examples::arg_usize("--particles", 2048);
    let tol = hodlr_examples::arg_f64("--tol", 1e-10);
    let n = 3 * particles;
    println!("RPY mobility problem: {particles} particles, matrix size N = {n}, tol = {tol:.1e}");

    let matrix = rpy_hodlr(n, tol);
    println!(
        "rank profile (level 1 -> leaves): {:?}",
        matrix.rank_profile()
    );

    // Force vector: unit force in x on every particle.
    let mut b = vec![0.0; matrix.n()];
    for i in (0..matrix.n()).step_by(3) {
        b[i] = 1.0;
    }

    let device = Device::new();
    let mut gpu = GpuSolver::new(&device, &matrix);
    let start = Instant::now();
    gpu.factorize().expect("factorization");
    let t_factor = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let x = gpu.solve(&b);
    let t_solve = start.elapsed().as_secs_f64();
    println!(
        "batched solver: factorization {t_factor:.3} s, solve {t_solve:.4} s, relres {:.2e}",
        matrix.relative_residual(&x, &b)
    );

    let start = Instant::now();
    let lib = HodlrlibStyleSolver::factorize(&matrix).expect("factorization");
    let t_factor_lib = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let x_lib = lib.solve(&b);
    let t_solve_lib = start.elapsed().as_secs_f64();
    println!(
        "HODLRlib-style: factorization {t_factor_lib:.3} s, solve {t_solve_lib:.4} s, relres {:.2e}",
        matrix.relative_residual(&x_lib, &b)
    );
}
