//! Helmholtz scattering example (Section IV-C): build a low-accuracy HODLR
//! factorization of the combined-field operator and use it as a right
//! preconditioner for restarted GMRES — the "robust preconditioner" use
//! case of Table V(b), through the façade's [`IterativeSolver`] adapter.

use hodlr::prelude::*;
use hodlr_bench::helmholtz_hodlr;
use hodlr_bench::workloads::resolved_kappa;

fn main() {
    let n = hodlr_examples::arg_usize("--n", 2048);
    let kappa = hodlr_examples::arg_f64("--kappa", resolved_kappa(n));
    let tol = hodlr_examples::arg_f64("--tol", 1e-8);
    println!("Helmholtz combined-field BIE: N = {n}, kappa = eta = {kappa:.1}");

    // The "exact" operator is compressed tightly; the preconditioner loosely.
    let (_bie, exact) = helmholtz_hodlr(n, kappa, 1e-10);
    let (_bie2, rough_matrix) = helmholtz_hodlr(n, kappa, 1e-3);
    println!(
        "operator ranks: accurate {:?} / preconditioner {:?}",
        exact.max_rank(),
        rough_matrix.max_rank()
    );

    // The loose approximation becomes the preconditioner: adopt it into the
    // façade with the batched backend and bundle it with the accurate
    // operator behind one `Solve` implementation.
    let rough = Hodlr::builder()
        .matrix(rough_matrix)
        .backend(Backend::Batched)
        .build()
        .expect("adopting the preconditioner matrix");
    let solver = rough
        .iterative(KrylovMethod::Gmres { restart: 50 })
        .expect("preconditioner factorization")
        .with_operator(&exact)
        .expect("operator dimensions")
        .tol(tol)
        .max_iters(100);

    // Right-hand side: a plane wave sampled on the contour.
    let b: Vec<Complex64> = (0..n)
        .map(|i| Complex64::cis(kappa * (i as f64 / n as f64)))
        .collect();

    // `run` exposes the full iteration report; `solve` would return the
    // typed NonConvergence error instead of a flag.
    let out = solver.run(&b).expect("gmres dimensions");
    for (iter, res) in out.residual_history.iter().enumerate() {
        println!("iteration {iter}: relative residual {res:.3e}");
    }
    println!(
        "GMRES {} in {} iterations; final relative residual {:.3e}",
        if out.converged {
            "converged"
        } else {
            "did NOT converge"
        },
        out.iterations,
        out.relative_residual
    );
    // A loose (1e-3) preconditioner must still drive GMRES to the requested
    // tolerance in a couple dozen iterations.
    assert!(
        out.converged,
        "GMRES failed to reach {tol:.1e} (relative residual {:.3e})",
        out.relative_residual
    );
    let checked = exact.relative_residual(&out.x, &b);
    println!("recomputed relative residual: {checked:.3e}");
    assert!(
        checked < tol * 10.0,
        "recomputed residual {checked:.3e} inconsistent with the reported one"
    );

    // Metered preconditioner traffic on the handle's virtual device.
    let counters = rough.device().counters();
    println!(
        "device counters: {} kernel launches, {:.2} Gflop, {:.1} MiB peak device memory",
        counters.kernel_launches,
        counters.flops as f64 / 1e9,
        counters.peak_allocated_bytes as f64 / (1 << 20) as f64
    );
}
