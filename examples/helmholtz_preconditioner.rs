//! Helmholtz scattering example (Section IV-C): build a low-accuracy HODLR
//! factorization of the combined-field operator and use it as a
//! preconditioner for GMRES-free Richardson iteration, the "robust
//! preconditioner" use case of Table V(b).

use hodlr_batch::Device;
use hodlr_bench::workloads::resolved_kappa;
use hodlr_bench::helmholtz_hodlr;
use hodlr_core::GpuSolver;
use hodlr_la::{Complex64, RealScalar, Scalar};

fn main() {
    let n = hodlr_examples::arg_usize("--n", 2048);
    let kappa = hodlr_examples::arg_f64("--kappa", resolved_kappa(n));
    println!("Helmholtz combined-field BIE: N = {n}, kappa = eta = {kappa:.1}");

    // The "exact" operator is compressed tightly; the preconditioner loosely.
    let (_bie, exact) = helmholtz_hodlr(n, kappa, 1e-10);
    let (_bie2, rough) = helmholtz_hodlr(n, kappa, 1e-3);
    println!(
        "operator ranks: accurate {:?} / preconditioner {:?}",
        exact.max_rank(),
        rough.max_rank()
    );

    let device = Device::new();
    let mut precond = GpuSolver::new(&device, &rough);
    precond.factorize().expect("factorization");

    // Right-hand side: a plane wave sampled on the contour.
    let b: Vec<Complex64> = (0..n)
        .map(|i| Complex64::cis(kappa * (i as f64 / n as f64)))
        .collect();

    // Preconditioned Richardson: x_{k+1} = x_k + M^{-1} (b - A x_k).
    let mut x = vec![Complex64::new(0.0, 0.0); n];
    let b_norm: f64 = b.iter().map(|v| v.abs_sqr()).sum::<f64>().sqrt_real();
    for iter in 0..10 {
        let ax = exact.matvec(&x);
        let residual: Vec<Complex64> = b.iter().zip(&ax).map(|(&bi, &ai)| bi - ai).collect();
        let res_norm: f64 = residual.iter().map(|v| v.abs_sqr()).sum::<f64>().sqrt_real();
        println!("iteration {iter}: relative residual {:.3e}", res_norm / b_norm);
        if res_norm / b_norm < 1e-8 {
            break;
        }
        let correction = precond.solve(&residual);
        for (xi, ci) in x.iter_mut().zip(&correction) {
            *xi += *ci;
        }
    }
    println!("final relative residual: {:.3e}", exact.relative_residual(&x, &b));
}
