//! Quickstart: build a HODLR approximation of a kernel matrix, factorize it
//! on the virtual batched device, solve a linear system, and check the
//! residual.  This is the 60-second tour of the public API.

use hodlr_batch::Device;
use hodlr_compress::CompressionConfig;
use hodlr_core::{build_from_source, GpuSolver};
use hodlr_kernels::{GaussianKernel, ScalarKernelSource};
use hodlr_tree::{partition_points, uniform_cube_points};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = hodlr_examples::arg_usize("--n", 4096);
    let tol = hodlr_examples::arg_f64("--tol", 1e-8);

    // 1. A kernel matrix over random points in the unit cube, reordered by
    //    recursive bisection so off-diagonal blocks are low rank.
    let mut rng = StdRng::seed_from_u64(7);
    let cloud = uniform_cube_points(&mut rng, n, 3);
    let part = partition_points(&cloud, 64);
    let source =
        ScalarKernelSource::with_shift(GaussianKernel { length_scale: 1.0 }, &part.points, 1.0);

    // 2. Compress every sibling off-diagonal block at the requested
    //    tolerance (rook-pivoted ACA by default).
    let matrix = build_from_source(
        &source,
        part.tree.clone(),
        &CompressionConfig::with_tol(tol),
    );
    println!(
        "HODLR approximation: N = {}, levels = {}, max off-diagonal rank = {}, storage = {:.3} GiB",
        matrix.n(),
        matrix.levels(),
        matrix.max_rank(),
        matrix.memory_gib()
    );

    // 3. Upload to the virtual batched-BLAS device, factorize (Algorithm 3)
    //    and solve (Algorithm 4).
    let device = Device::new();
    let mut solver = GpuSolver::new(&device, &matrix);
    solver.factorize().expect("factorization");
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let x = solver.solve(&b);

    // 4. Verify.
    println!(
        "relative residual ||b - A x|| / ||b|| = {:.3e}",
        matrix.relative_residual(&x, &b)
    );
    let counters = device.counters();
    println!(
        "device counters: {} kernel launches, {:.2} GFlop executed, {:.1} MiB transferred",
        counters.kernel_launches,
        counters.flops as f64 / 1e9,
        (counters.h2d_bytes + counters.d2h_bytes) as f64 / (1 << 20) as f64
    );
}
