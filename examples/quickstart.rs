//! Quickstart: build a HODLR approximation of a kernel matrix with the
//! fluent builder, factorize it on both backends through the `Factorize` /
//! `Solve` traits, and check the residuals.  This is the 60-second tour of
//! the public API — everything comes from `hodlr::prelude`.

use hodlr::prelude::*;

/// `--n 4096`-style argument parsing.  Local and std-only on purpose:
/// this example demonstrates that `hodlr::prelude` is the only library
/// import an application needs (the other examples share
/// `hodlr_examples::arg_usize` / `arg_f64` instead).
fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n: usize = arg("--n", 4096);
    let tol: f64 = arg("--tol", 1e-8);

    // 1. A kernel matrix over random points in the unit cube, reordered by
    //    recursive bisection so off-diagonal blocks are low rank.
    let mut rng = StdRng::seed_from_u64(7);
    let cloud = uniform_cube_points(&mut rng, n, 3);
    let part = partition_points(&cloud, 64).expect("non-empty cloud");
    let source =
        ScalarKernelSource::with_shift(GaussianKernel { length_scale: 1.0 }, &part.points, 1.0);

    // 2. One fluent builder call: compression settings, tree, and backend.
    let hodlr = Hodlr::builder()
        .source(&source)
        .tree(part.tree.clone())
        .tolerance(tol)
        .method(CompressionMethod::AcaRook)
        .backend(Backend::Batched)
        .precision(Precision::Full)
        .build()
        .expect("HODLR construction");
    println!(
        "HODLR approximation: N = {}, levels = {}, max off-diagonal rank = {}, storage = {:.3} GiB",
        hodlr.n(),
        hodlr.levels(),
        hodlr.max_rank(),
        hodlr.memory_gib()
    );

    // 3. Factorize (Algorithm 3 on the virtual batched device) and solve
    //    (Algorithm 4) through the backend-agnostic traits.
    let factorization = hodlr.factorize().expect("factorization");
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let x = factorization.solve(&b).expect("solve");

    // 4. Verify, and compare against the serial backend (Algorithms 1-2):
    //    same matrix, same traits, different enum value.
    let residual = hodlr.relative_residual(&x, &b);
    println!("batched backend: relative residual ||b - A x|| / ||b|| = {residual:.3e}");
    assert!(residual < 1e-6, "batched residual {residual:.3e}");

    let serial = Hodlr::builder()
        .source(&source)
        .tree(part.tree.clone())
        .tolerance(tol)
        .backend(Backend::Serial)
        .build()
        .expect("HODLR construction (serial)");
    let x_serial = serial
        .factorize()
        .expect("serial factorization")
        .solve(&b)
        .expect("serial solve");
    let residual_serial = serial.relative_residual(&x_serial, &b);
    println!("serial backend:  relative residual ||b - A x|| / ||b|| = {residual_serial:.3e}");
    assert!(residual_serial < 1e-6);

    // 5. The batched work was metered on the handle's virtual device.
    let counters = hodlr.device().counters();
    println!(
        "device counters: {} kernel launches, {:.2} GFlop executed, {:.1} MiB transferred",
        counters.kernel_launches,
        counters.flops as f64 / 1e9,
        (counters.h2d_bytes + counters.d2h_bytes) as f64 / (1 << 20) as f64
    );
}
