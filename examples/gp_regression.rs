//! Gaussian-process hyperparameter selection on a HODLR covariance: build
//! the covariance of a 1-D GP lazily, evaluate the log-marginal likelihood
//! via HODLR `solve` + product-form `log_det` on the batched backend, and
//! pick kernel hyperparameters by grid scan — the workload that needs both
//! halves of the factorization and runs in `O(N log^2 N)` per candidate
//! instead of the dense `O(N^3)`.

use hodlr::prelude::*;
use hodlr_examples::arg_usize;
use hodlr_gp::{best_row, regular_grid_1d, GpConfig, GpModel, GridScan, KernelFamily};

fn main() {
    let n = arg_usize("--n", 1024);

    // Observations: a smooth signal with wiggle scale ~0.5 on [0, 4],
    // plus a deterministic pseudo-noise floor.
    let points = regular_grid_1d(n, 0.0, 4.0);
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let x = 4.0 * i as f64 / (n - 1) as f64;
            (2.0 * x).sin() + 0.01 * (997.0 * x).sin()
        })
        .collect();

    // Scan a 3 x 2 x 2 hyperparameter grid under a Matérn-5/2 prior.  Every
    // candidate compresses, factorizes and scores on the batched device.
    let scan = GridScan {
        family: KernelFamily::MaternFiveHalves,
        length_scales: vec![0.05, 0.5, 5.0],
        variances: vec![0.5, 1.0],
        noises: vec![1e-4, 1e-2],
    };
    let config = GpConfig {
        backend: Backend::Batched,
        tolerance: 1e-10,
        ..GpConfig::default()
    };
    let rows = scan.run(&points, &y, &config).expect("grid scan");

    println!(
        "{:<14} {:<10} {:<10} {:>16} {:>14} {:>14}",
        "length_scale", "variance", "noise", "log p(y)", "y'K^-1 y", "log|K|"
    );
    for row in &rows {
        println!(
            "{:<14} {:<10} {:<10.0e} {:>16.4} {:>14.4} {:>14.4}",
            row.length_scale,
            row.variance,
            row.noise,
            row.log_likelihood.value,
            row.log_likelihood.quadratic_form,
            row.log_likelihood.log_det
        );
    }

    let best = best_row(&rows).expect("non-empty scan");
    println!(
        "\nbest candidate: l = {}, sigma_f^2 = {}, sigma_n^2 = {:.0e} (log p(y) = {:.4})",
        best.length_scale, best.variance, best.noise, best.log_likelihood.value
    );
    assert_eq!(
        best.length_scale, 0.5,
        "the scan must recover the generating wiggle scale"
    );

    // Rebuild the winner and show the backend agreement: the serial and
    // batched log-determinants are bitwise identical.
    let kernel = scan.family.kernel(best.variance, best.length_scale);
    let batched = GpModel::build(&kernel, &points, best.noise, &config).expect("winner model");
    let serial_config = GpConfig {
        backend: Backend::Serial,
        ..config.clone()
    };
    let serial = GpModel::build(&kernel, &points, best.noise, &serial_config).expect("serial");
    let ll_b = batched.log_likelihood(&y).expect("batched likelihood");
    let ll_s = serial.log_likelihood(&y).expect("serial likelihood");
    assert_eq!(ll_b.log_det.to_bits(), ll_s.log_det.to_bits());
    println!(
        "serial and batched log|K| agree bitwise: {:.12e}",
        ll_b.log_det
    );
}
